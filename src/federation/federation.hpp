#pragma once
// Federated multi-facility brokering: route each flow to the best of N
// replicated facilities by live telemetry, admission-control the door with
// weighted fair-share quotas, fail in-flight flows over to a peer when a
// whole site goes dark, and shed load gracefully (optional steps first, then
// reject-with-retry-after) instead of letting any queue collapse.
//
// The broker is deliberately a peer OF the facilities, not a layer inside
// one: it holds raw pointers to each site's FlowService / TransferService /
// HealthMonitor (all driven by one shared sim::Engine so virtual clocks
// agree) and makes every decision from the same observable surface a real
// cross-facility broker would have — queue depths, breaker snapshots, health
// scores, site fault state — never from simulator internals.
//
// Failover contract (the robustness tentpole): when a site dies mid-flow the
// broker checkpoints the run's portable inter-step state (completed-step
// outputs + input), mirrors the failed site's transfer chunk manifests to the
// survivor so partially-landed bytes resume instead of restarting, and
// relaunches via FlowService::resume at the best surviving peer. The resumed
// attempt gets a fresh epoch, fresh backoff salt, and the peer's own breakers
// — none of the failed site's retry/backoff/breaker state crosses the
// boundary (federation_test.cpp pins this).
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "auth/auth.hpp"
#include "fault/schedule.hpp"
#include "federation/quota.hpp"
#include "flow/service.hpp"
#include "sim/engine.hpp"
#include "telemetry/health/monitor.hpp"
#include "transfer/service.hpp"
#include "util/json.hpp"

namespace pico::federation {

/// One facility as the broker sees it. `flows` and `engine` are required;
/// `transfer` (manifest mirroring) and `health` (score-based routing) are
/// optional and simply drop their routing/failover contribution when null.
/// All sites must share one engine — the broker asserts nothing but virtual
/// time only makes sense on a common clock.
struct Site {
  std::string name;
  sim::Engine* engine = nullptr;
  flow::FlowService* flows = nullptr;
  transfer::TransferService* transfer = nullptr;
  telemetry::health::HealthMonitor* health = nullptr;
  auth::Token token;      ///< credential the broker launches runs with
  double capacity = 1.0;  ///< relative size; normalizes queue-depth penalty
};

struct BrokerConfig {
  QuotaConfig quota;
  /// Global load fraction (quota inflight / max) at which the broker enters
  /// brownout: optional steps are stripped from new submissions before any
  /// admission is rejected — the shedding ladder drops quality before work.
  double brownout_enter_frac = 0.85;
  /// Base retry-after for rejected submissions; the broker spreads actual
  /// hints deterministically over [1x, 2x) to avoid a thundering herd.
  double reject_retry_after_s = 15.0;
  /// Max launches per flow (first attempt + failovers) before the broker
  /// gives up and fails the flow outright.
  size_t failover_max_attempts = 3;
  // ---- Routing-score weights (score starts at 100 per site) --------------
  double queue_penalty = 40.0;     ///< x site load fraction
  double breaker_penalty = 25.0;   ///< per def provider with an open breaker
  double health_weight = 0.3;      ///< x (100 - min provider health score)
  double brownout_penalty = 60.0;  ///< x site brownout severity
};

/// Synchronous verdict for one submission.
struct SubmitOutcome {
  bool admitted = false;
  std::string site;        ///< routed site (admitted only)
  flow::RunId run;         ///< initial run id at that site (admitted only)
  double retry_after_s = 0;  ///< back-pressure hint (rejected only)
  std::string reason;      ///< "quota" / "no-site" / start error (rejected)
};

struct BrokerStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t rejected = 0;
  uint64_t failovers = 0;        ///< relaunches at a peer (incl. resume)
  uint64_t resumed = 0;          ///< failovers that skipped >=1 done step
  uint64_t reconciled = 0;       ///< completions surfaced at partition heal
  uint64_t optional_dropped = 0; ///< steps shed by brownout stripping
  uint64_t parked = 0;           ///< flows that waited for any site to heal
  size_t inflight = 0;
  double recovery_s = 0;  ///< worst outage onset -> last stranded flow settled
};

class Broker {
 public:
  explicit Broker(BrokerConfig config);

  /// Register a facility. Order is the deterministic routing tie-break.
  void add_site(Site site);
  size_t sites() const { return sites_.size(); }

  /// Per-user fair-share weight (defaults to quota.default_weight).
  void set_user_weight(const std::string& user, double weight) {
    quotas_.set_weight(user, weight);
  }

  /// Submit one federated flow. Synchronously admission-checks, routes, and
  /// launches; `on_done(success)` fires in virtual time at final settle
  /// (after any failovers). Rejected submissions never invoke on_done — the
  /// caller owns the retry (resubmit after outcome.retry_after_s).
  SubmitOutcome submit(std::shared_ptr<const flow::FlowDefinition> def,
                       util::Json input, const std::string& user,
                       const std::string& label = "",
                       std::function<void(bool success)> on_done = nullptr);

  /// Site-level chaos entry point: wire a FaultInjector's site_hook (or a
  /// Facility's site fault handler) here. Outage begin cancels + fails over
  /// every in-flight flow at the site; partition begin defers that site's
  /// completions until heal; brownout begin derates routing and strips
  /// optional steps by `severity`.
  void apply_site_fault(fault::FaultKind kind, const std::string& site,
                        double severity, bool begin);

  /// Telemetry-routed score for `site_idx` (higher is better;
  /// -infinity = ineligible). Exposed for tests and the portal page.
  double route_score(size_t site_idx, const flow::FlowDefinition& def) const;

  BrokerStats stats() const;
  const FairShareQuotas& quotas() const { return quotas_; }
  util::Json report() const;

 private:
  struct SiteState {
    Site site;
    bool outage = false;
    bool partitioned = false;
    double brownout = 0;  ///< 0 = none, else severity in (0, 1]
    uint64_t launches = 0;
    uint64_t faults_seen = 0;
  };

  /// One federated flow across its whole life (initial launch + failovers).
  struct Ticket {
    std::string user;
    std::string label;
    std::shared_ptr<const flow::FlowDefinition> def;  ///< as launched
    util::Json input;   ///< retained for restart-from-zero fallback
    size_t site_idx = 0;
    flow::RunId run;
    size_t attempts = 1;
    bool done = false;
    bool success = false;
    bool stranded = false;           ///< cancelled by an outage, not settled
    bool reconcile_pending = false;  ///< settled behind a partition
    bool reconcile_success = false;
    bool parked = false;             ///< waiting for any eligible site
    flow::RunCheckpoint checkpoint;  ///< last captured inter-step state
    bool has_checkpoint = false;
    std::function<void(bool)> on_done;
  };

  sim::SimTime now() const;
  int pick_site(const flow::FlowDefinition& def) const;
  /// Launch (or resume) ticket `idx` at `site_idx`; registers the finished
  /// callback. Returns false when the start itself was refused.
  bool launch(size_t idx, size_t site_idx);
  void on_run_finished(size_t idx, const flow::RunInfo& info);
  void settle(size_t idx, bool success);
  /// Failure path: checkpoint, mirror manifests, relaunch at the best peer,
  /// or park / give up.
  void relaunch_or_fail(size_t idx);
  void drain_parked();
  void reconcile_site(size_t site_idx);
  /// Brownout shedding: definition with optional steps stripped (cached;
  /// returns the original when nothing is optional).
  std::shared_ptr<const flow::FlowDefinition> strip_optional(
      const std::shared_ptr<const flow::FlowDefinition>& def);

  BrokerConfig config_;
  FairShareQuotas quotas_;
  std::vector<SiteState> sites_;
  std::map<std::string, size_t> site_index_;
  double total_capacity_ = 0;
  std::deque<Ticket> tickets_;  ///< deque: stable refs for event captures
  std::vector<size_t> parked_;
  std::map<const flow::FlowDefinition*,
           std::shared_ptr<const flow::FlowDefinition>>
      stripped_;
  // Outage-recovery bookkeeping: one episode spans from the first stranding
  // outage until every stranded flow reaches final settle.
  sim::SimTime episode_onset_;
  size_t stranded_open_ = 0;
  double recovery_s_ = 0;
  uint64_t submitted_ = 0, completed_ = 0, failed_ = 0, rejected_ = 0,
           failovers_ = 0, resumed_ = 0, reconciled_ = 0, optional_dropped_ = 0,
           parked_total_ = 0;
};

}  // namespace pico::federation

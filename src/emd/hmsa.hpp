#pragma once
// HMSA interchange support. The paper: "Provisions are also incorporated to
// use other cross-platform formats such as the proposed ISO standard HMSA
// format". HMSA (Microscopy Society of America, Torpy et al. 2019) is a
// two-part container: an XML metadata document plus a flat binary blob the
// XML's dataset entries reference by offset. This module converts between
// EMD-lite files and an HMSA pair, preserving signals, shapes, dtypes and
// the canonical PicoProbe metadata blocks.
#include <string>
#include <vector>

#include "emd/file.hpp"

namespace pico::emd {

/// The two HMSA artifacts (conventionally <name>.xml and <name>.hmsa).
struct HmsaPair {
  std::string xml;
  std::vector<uint8_t> binary;
};

/// Convert an EMD-lite file (payloads loaded) to an HMSA pair.
util::Result<HmsaPair> to_hmsa(const File& file);

/// Reconstruct an EMD-lite file from an HMSA pair. Dataset checksums are
/// verified against the XML's per-array CRC-64 entries.
util::Result<File> from_hmsa(const HmsaPair& pair);

/// Convenience: write/read the <base>.xml / <base>.hmsa pair on disk.
util::Status save_hmsa(const File& file, const std::string& base_path);
util::Result<File> load_hmsa(const std::string& base_path);

}  // namespace pico::emd

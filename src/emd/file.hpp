#pragma once
// EMD-lite: a from-scratch hierarchical binary container standing in for the
// Electron Microscopy Dataset format (an HDF5 subset) the paper's flows carry.
//
// Layout on disk:
//   magic "EMDL" | u32 version | u64 header_len | header (JSON, UTF-8)
//   | payload blob
// The header describes the group tree: attributes (JSON values), child
// groups, and datasets (dtype, shape, payload offset/length, CRC-64). Dataset
// payloads live in the blob. This mirrors HDF5's self-describing design while
// staying a few hundred lines, and supports the paper's key access pattern:
// a single read that serves both metadata extraction and analysis, plus a
// cheap metadata-only scan (header only) for cataloging.
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/json.hpp"
#include "util/result.hpp"

namespace pico::emd {

/// An N-D dataset. Payload may be absent after a metadata-only read; shape
/// and dtype are always available.
class Dataset {
 public:
  Dataset() = default;
  Dataset(tensor::DType dtype, tensor::Shape shape, std::vector<uint8_t> raw);

  /// Build from a typed tensor (copies the element bytes).
  template <typename T>
  static Dataset from_tensor(const tensor::Tensor<T>& t) {
    const auto* p = reinterpret_cast<const uint8_t*>(t.data().data());
    return Dataset(tensor::dtype_of<T>(), t.shape(),
                   std::vector<uint8_t>(p, p + t.size() * sizeof(T)));
  }

  /// Reinterpret the payload as a typed tensor (copies). Fails on dtype
  /// mismatch or missing payload.
  template <typename T>
  util::Result<tensor::Tensor<T>> as() const {
    using R = util::Result<tensor::Tensor<T>>;
    if (dtype_ != tensor::dtype_of<T>()) {
      return R::err("dtype mismatch: dataset is " +
                        std::string(tensor::dtype_name(dtype_)),
                    "type");
    }
    if (!payload_loaded_) return R::err("payload not loaded", "state");
    auto bytes = raw();
    std::vector<T> data(element_count());
    std::memcpy(data.data(), bytes.data(), bytes.size());
    return R::ok(tensor::Tensor<T>(shape_, std::move(data)));
  }

  tensor::DType dtype() const { return dtype_; }
  const tensor::Shape& shape() const { return shape_; }
  size_t element_count() const { return tensor::shape_elements(shape_); }
  size_t nbytes() const {
    return element_count() * tensor::dtype_size(dtype_);
  }
  bool payload_loaded() const { return payload_loaded_; }
  /// Payload bytes: either owned storage or a zero-copy view into a mapped
  /// file (see attach_view). Valid only while this Dataset is alive.
  std::span<const uint8_t> raw() const {
    return owner_ ? view_ : std::span<const uint8_t>(raw_);
  }
  /// False when raw() aliases an external owner (mapped file) instead of
  /// dataset-owned storage.
  bool payload_owned() const { return owner_ == nullptr; }
  uint64_t crc() const { return crc_; }

  /// Rebuild from parsed header fields (loader use; payload attached later).
  static Dataset from_meta(tensor::DType dtype, tensor::Shape shape,
                           uint64_t crc);
  /// Attach a payload read from the blob section (loader use).
  void attach_payload(std::vector<uint8_t> raw);
  /// Attach a zero-copy payload view; `owner` keeps the bytes alive (e.g. a
  /// shared MappedFile) and is co-owned by every dataset of the file.
  void attach_view(std::span<const uint8_t> view,
                   std::shared_ptr<const void> owner);

 private:
  friend class File;
  tensor::DType dtype_ = tensor::DType::U8;
  tensor::Shape shape_;
  std::vector<uint8_t> raw_;
  std::span<const uint8_t> view_;
  std::shared_ptr<const void> owner_;  ///< non-null => raw() is view_
  bool payload_loaded_ = false;
  uint64_t crc_ = 0;
};

/// A group node: attributes + nested groups + datasets, as in HDF5.
struct Group {
  std::map<std::string, util::Json> attrs;
  std::map<std::string, Group> groups;
  std::map<std::string, Dataset> datasets;

  /// Get or create a nested group by "a/b/c" path.
  Group& ensure_group(const std::string& path);
  /// Lookup (const); nullptr when absent.
  const Group* find_group(const std::string& path) const;
  const Dataset* find_dataset(const std::string& path) const;
};

/// A complete EMD-lite file.
class File {
 public:
  Group root;

  /// Serialize to bytes (header + payload blob).
  std::vector<uint8_t> to_bytes() const;

  /// Parse. with_payload=false reads only the header (group tree, dataset
  /// shapes/dtypes/CRCs) — the cheap cataloging scan.
  static util::Result<File> from_bytes(const std::vector<uint8_t>& data,
                                       bool with_payload = true);

  util::Status save(const std::string& path) const;
  static util::Result<File> load(const std::string& path,
                                 bool with_payload = true);

  /// Zero-copy load: memory-maps the file and attaches dataset payloads as
  /// views into the mapping (all datasets co-own it; the mapping lives until
  /// the last one goes). Payload CRCs are still verified — that verify scan
  /// is the one traversal that faults the pages in — but nothing is copied
  /// until a caller asks for a typed tensor.
  static util::Result<File> load_mapped(const std::string& path,
                                        bool with_payload = true);

  /// Total payload bytes across all datasets (= transfer volume driver).
  uint64_t payload_bytes() const;

  static constexpr uint32_t kVersion = 1;
  static constexpr char kMagic[4] = {'E', 'M', 'D', 'L'};
};

}  // namespace pico::emd

#include "emd/hmsa.hpp"

#include "emd/schema.hpp"
#include "util/bytes.hpp"
#include "util/crc64.hpp"
#include "util/strings.hpp"
#include "util/xml.hpp"

namespace pico::emd {
namespace {

using util::XmlNode;

// JSON <-> XML bridging for attribute blocks: scalars become child elements
// with text; nested objects become nested elements; arrays become repeated
// <Item> children. Enough to round-trip the canonical metadata blocks.
void json_to_xml(const util::Json& j, XmlNode* node) {
  switch (j.type()) {
    case util::Json::Type::Object:
      for (const auto& [k, v] : j.as_object()) {
        XmlNode& c = node->add_child(k);
        json_to_xml(v, &c);
      }
      break;
    case util::Json::Type::Array:
      for (const auto& v : j.as_array()) {
        XmlNode& c = node->add_child("Item");
        json_to_xml(v, &c);
      }
      break;
    case util::Json::Type::Null:
      node->attrs["nil"] = "true";
      break;
    case util::Json::Type::Bool:
      node->attrs["type"] = "bool";
      node->text = j.as_bool() ? "true" : "false";
      break;
    case util::Json::Type::Int:
      node->attrs["type"] = "int";
      node->text = std::to_string(j.as_int());
      break;
    case util::Json::Type::Double:
      node->attrs["type"] = "float";
      node->text = util::format("%.17g", j.as_double());
      break;
    case util::Json::Type::String:
      node->text = j.as_string();
      break;
  }
}

util::Json xml_to_json(const XmlNode& node) {
  if (node.attr("nil") == "true") return util::Json();
  if (!node.children.empty()) {
    // Repeated <Item> children -> array; otherwise object.
    bool all_items = true;
    for (const auto& c : node.children) {
      if (c.name != "Item") {
        all_items = false;
        break;
      }
    }
    if (all_items) {
      util::Json arr = util::Json::array();
      for (const auto& c : node.children) arr.push_back(xml_to_json(c));
      return arr;
    }
    util::Json obj = util::Json::object();
    for (const auto& c : node.children) obj[c.name] = xml_to_json(c);
    return obj;
  }
  const std::string type = node.attr("type");
  if (type == "bool") return util::Json(node.text == "true");
  if (type == "int") return util::Json(std::stoll(node.text));
  if (type == "float") return util::Json(std::stod(node.text));
  return util::Json(node.text);
}

}  // namespace

util::Result<HmsaPair> to_hmsa(const File& file) {
  using R = util::Result<HmsaPair>;
  HmsaPair pair;

  XmlNode root;
  root.name = "MSAHyperDimensionalDataFile";
  root.attrs["Version"] = "1.0";

  // Header: title-ish root attributes.
  XmlNode& header = root.ensure_child("Header");
  for (const auto& [k, v] : file.root.attrs) {
    XmlNode& node = header.add_child(k);
    json_to_xml(v, &node);
  }

  // Conditions: the canonical metadata groups (microscope/sample/user).
  XmlNode& conditions = root.ensure_child("Conditions");
  for (const char* group_name :
       {Paths::kMicroscope, Paths::kSample, Paths::kUser}) {
    const Group* group = file.root.find_group(group_name);
    if (!group) continue;
    XmlNode& gnode = conditions.add_child(group_name);
    for (const auto& [k, v] : group->attrs) {
      XmlNode& node = gnode.add_child(k);
      json_to_xml(v, &node);
    }
  }

  // Data: every signal dataset, payload appended to the blob.
  XmlNode& data = root.ensure_child("Data");
  const Group* signals = file.root.find_group(Paths::kData);
  if (signals) {
    for (const auto& [name, group] : signals->groups) {
      auto ds_it = group.datasets.find("data");
      if (ds_it == group.datasets.end()) continue;
      const Dataset& ds = ds_it->second;
      if (!ds.payload_loaded()) {
        return R::err("dataset " + name + " payload not loaded", "state");
      }
      XmlNode& array = data.add_child("Array");
      array.attrs["Name"] = name;
      array.attrs["Type"] = std::string(tensor::dtype_name(ds.dtype()));
      array.attrs["Offset"] = std::to_string(pair.binary.size());
      array.attrs["Bytes"] = std::to_string(ds.nbytes());
      array.attrs["Checksum"] = util::to_hex_u64(ds.crc());

      XmlNode& dims = array.ensure_child("Dimensions");
      for (size_t d : ds.shape()) {
        dims.add_child("Dim", std::to_string(d));
      }
      XmlNode& meta = array.ensure_child("SignalAttributes");
      for (const auto& [k, v] : group.attrs) {
        XmlNode& node = meta.add_child(k);
        json_to_xml(v, &node);
      }
      pair.binary.insert(pair.binary.end(), ds.raw().begin(), ds.raw().end());
    }
  }

  pair.xml = util::xml_serialize(root);
  return R::ok(std::move(pair));
}

util::Result<File> from_hmsa(const HmsaPair& pair) {
  using R = util::Result<File>;
  auto doc = util::xml_parse(pair.xml);
  if (!doc) return R::err("HMSA XML: " + doc.error().message, "parse");
  const XmlNode& root = doc.value();
  if (root.name != "MSAHyperDimensionalDataFile") {
    return R::err("not an HMSA document (root " + root.name + ")", "parse");
  }

  File file;
  if (const XmlNode* header = root.child("Header")) {
    for (const auto& c : header->children) {
      file.root.attrs[c.name] = xml_to_json(c);
    }
  }
  if (const XmlNode* conditions = root.child("Conditions")) {
    for (const auto& gnode : conditions->children) {
      Group& group = file.root.ensure_group(gnode.name);
      for (const auto& c : gnode.children) {
        group.attrs[c.name] = xml_to_json(c);
      }
    }
  }

  if (const XmlNode* data = root.child("Data")) {
    for (const XmlNode* array : data->children_named("Array")) {
      std::string name = array->attr("Name");
      auto dtype = tensor::dtype_from_name(array->attr("Type"));
      if (!dtype) return R::err("array " + name + ": " + dtype.error().message, "parse");
      size_t offset = 0, nbytes = 0;
      try {
        offset = static_cast<size_t>(std::stoull(array->attr("Offset", "0")));
        nbytes = static_cast<size_t>(std::stoull(array->attr("Bytes", "0")));
      } catch (const std::exception&) {
        return R::err("array " + name + ": bad offset/bytes", "parse");
      }
      if (offset + nbytes > pair.binary.size()) {
        return R::err("array " + name + ": payload out of range", "corrupt");
      }

      tensor::Shape shape;
      if (const XmlNode* dims = array->child("Dimensions")) {
        for (const XmlNode* dim : dims->children_named("Dim")) {
          try {
            shape.push_back(static_cast<size_t>(std::stoull(dim->text)));
          } catch (const std::exception&) {
            return R::err("array " + name + ": bad dimension", "parse");
          }
        }
      }
      size_t expected = tensor::shape_elements(shape) *
                        tensor::dtype_size(dtype.value());
      if (expected != nbytes) {
        return R::err("array " + name + ": shape/bytes mismatch", "parse");
      }

      std::vector<uint8_t> payload(
          pair.binary.begin() + static_cast<ptrdiff_t>(offset),
          pair.binary.begin() + static_cast<ptrdiff_t>(offset + nbytes));
      Dataset ds(dtype.value(), shape, std::move(payload));

      // Checksum verification against the XML entry.
      const std::string want_hex = array->attr("Checksum");
      if (!want_hex.empty() &&
          want_hex != util::to_hex_u64(ds.crc())) {
        return R::err("array " + name + ": checksum mismatch", "corrupt");
      }

      Group& sig = file.root.ensure_group(std::string(Paths::kData) + "/" + name);
      if (const XmlNode* meta = array->child("SignalAttributes")) {
        for (const auto& c : meta->children) {
          sig.attrs[c.name] = xml_to_json(c);
        }
      }
      sig.datasets.emplace("data", std::move(ds));
    }
  }
  return R::ok(std::move(file));
}

util::Status save_hmsa(const File& file, const std::string& base_path) {
  auto pair = to_hmsa(file);
  if (!pair) return util::Status::err(pair.error());
  if (auto st = util::write_file(base_path + ".xml", pair.value().xml); !st) {
    return st;
  }
  return util::write_file(base_path + ".hmsa", pair.value().binary);
}

util::Result<File> load_hmsa(const std::string& base_path) {
  using R = util::Result<File>;
  auto xml = util::read_file(base_path + ".xml");
  if (!xml) return R::err(xml.error());
  auto binary = util::read_file(base_path + ".hmsa");
  if (!binary) return R::err(binary.error());
  HmsaPair pair;
  pair.xml.assign(xml.value().begin(), xml.value().end());
  pair.binary = std::move(binary).value();
  return from_hmsa(pair);
}

}  // namespace pico::emd

#include "emd/file.hpp"

#include <cstring>

#include "util/bytes.hpp"
#include "util/crc64.hpp"
#include "util/mmap.hpp"
#include "util/strings.hpp"

namespace pico::emd {
namespace {

using util::Json;

// ---- header (de)serialization ------------------------------------------

// Dataset metadata entry in the JSON header.
Json dataset_meta(const Dataset& d, uint64_t offset, uint64_t crc) {
  Json shape = Json::array();
  for (size_t s : d.shape()) shape.push_back(static_cast<int64_t>(s));
  return Json::object({
      {"dtype", std::string(tensor::dtype_name(d.dtype()))},
      {"shape", shape},
      {"offset", static_cast<int64_t>(offset)},
      {"nbytes", static_cast<int64_t>(d.nbytes())},
      {"crc64", util::to_hex_u64(crc)},
  });
}

Json group_to_json(const Group& g, std::vector<uint8_t>& blob) {
  Json attrs = Json::object();
  for (const auto& [k, v] : g.attrs) attrs[k] = v;

  Json datasets = Json::object();
  for (const auto& [name, ds] : g.datasets) {
    const uint64_t offset = blob.size();
    auto raw = ds.raw();
    blob.resize(offset + raw.size());
    // Fused land+checksum: one traversal of the payload instead of an
    // insert pass plus a crc64 scan.
    const uint64_t crc =
        util::crc64_copy(blob.data() + offset, raw.data(), raw.size());
    datasets[name] = dataset_meta(ds, offset, crc);
  }

  Json groups = Json::object();
  for (const auto& [name, child] : g.groups) {
    groups[name] = group_to_json(child, blob);
  }

  return Json::object({
      {"attrs", attrs},
      {"datasets", datasets},
      {"groups", groups},
  });
}

// `owner` selects the payload mode: empty -> copy out of the blob (heap
// load); non-empty -> attach zero-copy views that co-own `owner` (mapped
// load). CRC verification reads from raw() either way, so a mapped load's
// verify pass is the single traversal that touches the payload bytes.
util::Status group_from_json(const Json& j, const uint8_t* blob,
                             size_t blob_size, bool with_payload,
                             const std::shared_ptr<const void>& owner,
                             Group* out) {
  for (const auto& [k, v] : j.at("attrs").as_object()) out->attrs[k] = v;

  for (const auto& [name, meta] : j.at("datasets").as_object()) {
    auto dt = tensor::dtype_from_name(meta.at("dtype").as_string());
    if (!dt) return util::Status::err("dataset " + name + ": " + dt.error().message, "parse");
    tensor::Shape shape;
    for (const auto& dim : meta.at("shape").as_array()) {
      int64_t v = dim.as_int(-1);
      if (v < 0) return util::Status::err("dataset " + name + ": bad shape", "parse");
      shape.push_back(static_cast<size_t>(v));
    }
    // Stored CRC travels with the metadata so even header-only reads can
    // validate payload integrity later.
    uint64_t crc = 0;
    {
      const std::string& hex = meta.at("crc64").as_string();
      for (char c : hex) {
        crc <<= 4;
        if (c >= '0' && c <= '9') crc |= static_cast<uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f') crc |= static_cast<uint64_t>(c - 'a' + 10);
        else return util::Status::err("dataset " + name + ": bad crc", "parse");
      }
    }
    Dataset ds = Dataset::from_meta(dt.value(), std::move(shape), crc);
    uint64_t offset = static_cast<uint64_t>(meta.at("offset").as_int());
    uint64_t nbytes = static_cast<uint64_t>(meta.at("nbytes").as_int());
    if (nbytes != ds.nbytes()) {
      return util::Status::err("dataset " + name + ": nbytes/shape mismatch",
                               "parse");
    }
    if (with_payload) {
      if (offset + nbytes > blob_size) {
        return util::Status::err("dataset " + name + ": payload out of range",
                                 "parse");
      }
      if (owner) {
        ds.attach_view({blob + offset, nbytes}, owner);
      } else {
        ds.attach_payload(
            std::vector<uint8_t>(blob + offset, blob + offset + nbytes));
      }
      auto raw = ds.raw();
      if (util::crc64(raw.data(), raw.size()) != ds.crc()) {
        return util::Status::err("dataset " + name + ": CRC mismatch",
                                 "corrupt");
      }
    }
    out->datasets.emplace(name, std::move(ds));
  }

  for (const auto& [name, child] : j.at("groups").as_object()) {
    Group g;
    auto st = group_from_json(child, blob, blob_size, with_payload, owner, &g);
    if (!st) return st;
    out->groups.emplace(name, std::move(g));
  }
  return util::Status::ok();
}

}  // namespace

Dataset::Dataset(tensor::DType dtype, tensor::Shape shape,
                 std::vector<uint8_t> raw)
    : dtype_(dtype), shape_(std::move(shape)), raw_(std::move(raw)) {
  payload_loaded_ = true;
  crc_ = util::crc64(raw_);
}

Dataset Dataset::from_meta(tensor::DType dtype, tensor::Shape shape,
                           uint64_t crc) {
  Dataset ds;
  ds.dtype_ = dtype;
  ds.shape_ = std::move(shape);
  ds.crc_ = crc;
  return ds;
}

void Dataset::attach_payload(std::vector<uint8_t> raw) {
  raw_ = std::move(raw);
  view_ = {};
  owner_.reset();
  payload_loaded_ = true;
}

void Dataset::attach_view(std::span<const uint8_t> view,
                          std::shared_ptr<const void> owner) {
  raw_.clear();
  view_ = view;
  owner_ = std::move(owner);
  payload_loaded_ = true;
}

Group& Group::ensure_group(const std::string& path) {
  Group* cur = this;
  for (const auto& part : util::split(path, '/')) {
    if (part.empty()) continue;
    cur = &cur->groups[part];
  }
  return *cur;
}

const Group* Group::find_group(const std::string& path) const {
  const Group* cur = this;
  for (const auto& part : util::split(path, '/')) {
    if (part.empty()) continue;
    auto it = cur->groups.find(part);
    if (it == cur->groups.end()) return nullptr;
    cur = &it->second;
  }
  return cur;
}

const Dataset* Group::find_dataset(const std::string& path) const {
  auto parts = util::split(path, '/');
  if (parts.empty()) return nullptr;
  std::string leaf = parts.back();
  parts.pop_back();
  const Group* g = this;
  for (const auto& part : parts) {
    if (part.empty()) continue;
    auto it = g->groups.find(part);
    if (it == g->groups.end()) return nullptr;
    g = &it->second;
  }
  auto it = g->datasets.find(leaf);
  return it == g->datasets.end() ? nullptr : &it->second;
}

std::vector<uint8_t> File::to_bytes() const {
  std::vector<uint8_t> blob;
  Json header = group_to_json(root, blob);
  std::string header_text = header.dump();

  std::vector<uint8_t> out;
  out.reserve(16 + header_text.size() + blob.size());
  util::ByteWriter w(&out);
  w.bytes(kMagic, 4);
  w.u32(kVersion);
  w.u64(header_text.size());
  w.bytes(header_text.data(), header_text.size());
  w.bytes(blob.data(), blob.size());
  return out;
}

namespace {

util::Result<File> parse_span(const uint8_t* data, size_t size,
                              bool with_payload,
                              const std::shared_ptr<const void>& owner) {
  using R = util::Result<File>;
  util::ByteReader r(data, size);
  const uint8_t* magic = nullptr;
  if (!r.view(&magic, 4) || std::memcmp(magic, File::kMagic, 4) != 0) {
    return R::err("not an EMD-lite file (bad magic)", "parse");
  }
  uint32_t version = 0;
  uint64_t header_len = 0;
  if (!r.u32(&version) || !r.u64(&header_len)) {
    return R::err("truncated EMD-lite header", "parse");
  }
  if (version != File::kVersion) {
    return R::err("unsupported EMD-lite version " + std::to_string(version),
                  "parse");
  }
  const uint8_t* header_bytes = nullptr;
  if (!r.view(&header_bytes, header_len)) {
    return R::err("truncated EMD-lite header body", "parse");
  }
  auto header = Json::parse(std::string_view(
      reinterpret_cast<const char*>(header_bytes), header_len));
  if (!header) return R::err("EMD-lite header: " + header.error().message, "parse");

  const uint8_t* blob = data + r.position();
  size_t blob_size = size - r.position();

  File f;
  auto st = group_from_json(header.value(), blob, blob_size, with_payload,
                            owner, &f.root);
  if (!st) return R::err(st.error());
  return R::ok(std::move(f));
}

}  // namespace

util::Result<File> File::from_bytes(const std::vector<uint8_t>& data,
                                    bool with_payload) {
  return parse_span(data.data(), data.size(), with_payload, nullptr);
}

util::Status File::save(const std::string& path) const {
  return util::write_file(path, to_bytes());
}

util::Result<File> File::load(const std::string& path, bool with_payload) {
  auto data = util::read_file(path);
  if (!data) return util::Result<File>::err(data.error());
  return from_bytes(data.value(), with_payload);
}

util::Result<File> File::load_mapped(const std::string& path,
                                     bool with_payload) {
  auto mf = util::MappedFile::open(path);
  if (!mf) return util::Result<File>::err(mf.error());
  auto owner =
      std::make_shared<util::MappedFile>(std::move(mf).value());
  auto bytes = owner->bytes();
  return parse_span(bytes.data(), bytes.size(), with_payload, owner);
}

namespace {
uint64_t payload_bytes_rec(const Group& g) {
  uint64_t n = 0;
  for (const auto& [name, ds] : g.datasets) n += ds.nbytes();
  for (const auto& [name, child] : g.groups) n += payload_bytes_rec(child);
  return n;
}
}  // namespace

uint64_t File::payload_bytes() const { return payload_bytes_rec(root); }

}  // namespace pico::emd

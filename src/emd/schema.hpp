#pragma once
// EMD-lite conventions used by the PicoProbe flows: canonical group paths and
// builders for the instrument metadata block. The fields mirror what the
// paper extracts with HyperSpy: acquisition date/time, microscope details
// (stage and detector positions, beam energy, magnification), and software
// versioning.
#include <string>

#include "emd/file.hpp"
#include "util/json.hpp"

namespace pico::emd {

/// Canonical group paths inside a PicoProbe EMD-lite file.
struct Paths {
  static constexpr const char* kData = "data";              // data/<signal>/data
  static constexpr const char* kMicroscope = "microscope";  // instrument block
  static constexpr const char* kSample = "sample";
  static constexpr const char* kUser = "user";
};

/// Instrument settings recorded at acquisition time.
struct MicroscopeSettings {
  std::string instrument = "Dynamic PicoProbe";
  double beam_energy_kv = 300.0;        ///< 30-300 kV monochromated probe
  double magnification = 1.2e6;
  double probe_size_pm = 50.0;          ///< ~50 pm aberration-corrected probe
  double energy_resolution_mev = 30.0;  ///< spectroscopy resolution < 30 meV
  double stage_x_um = 0, stage_y_um = 0, stage_z_um = 0;
  double stage_tilt_alpha_deg = 0, stage_tilt_beta_deg = 0;
  std::string detector = "XPAD hyperspectral x-ray array";
  double detector_solid_angle_sr = 4.5;
  std::string environment = "high-vacuum";  ///< or cryogenic/liquid/gaseous
  std::string software = "picoflow";
  std::string software_version = "1.0.0";

  util::Json to_json() const;
  static MicroscopeSettings from_json(const util::Json& j);
};

/// Populate the canonical metadata groups of `file`.
/// `acquired_iso8601` is the sample collection timestamp.
void write_standard_metadata(File& file, const MicroscopeSettings& scope,
                             const std::string& acquired_iso8601,
                             const std::string& sample_description,
                             const std::string& operator_name);

/// Signal kinds a data group can declare.
enum class SignalKind { Hyperspectral, Spatiotemporal };

std::string signal_kind_name(SignalKind k);

/// Add a signal dataset under data/<name>/ with its kind attribute and axis
/// labels (e.g. {"height","width","energy"} or {"time","height","width"}).
void add_signal(File& file, const std::string& name, SignalKind kind,
                Dataset dataset, const std::vector<std::string>& axes,
                const util::Json& extra_attrs = util::Json::object());

/// Locate the first signal group in the file; returns its name or error.
util::Result<std::string> first_signal_name(const File& file);

/// Read a signal's kind attribute.
util::Result<SignalKind> signal_kind(const File& file,
                                     const std::string& name);

}  // namespace pico::emd

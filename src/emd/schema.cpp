#include "emd/schema.hpp"

namespace pico::emd {

using util::Json;

Json MicroscopeSettings::to_json() const {
  return Json::object({
      {"instrument", instrument},
      {"beam_energy_kv", beam_energy_kv},
      {"magnification", magnification},
      {"probe_size_pm", probe_size_pm},
      {"energy_resolution_mev", energy_resolution_mev},
      {"stage",
       Json::object({
           {"x_um", stage_x_um},
           {"y_um", stage_y_um},
           {"z_um", stage_z_um},
           {"tilt_alpha_deg", stage_tilt_alpha_deg},
           {"tilt_beta_deg", stage_tilt_beta_deg},
       })},
      {"detector", detector},
      {"detector_solid_angle_sr", detector_solid_angle_sr},
      {"environment", environment},
      {"software", software},
      {"software_version", software_version},
  });
}

MicroscopeSettings MicroscopeSettings::from_json(const Json& j) {
  MicroscopeSettings s;
  s.instrument = j.at("instrument").as_string(s.instrument);
  s.beam_energy_kv = j.at("beam_energy_kv").as_double(s.beam_energy_kv);
  s.magnification = j.at("magnification").as_double(s.magnification);
  s.probe_size_pm = j.at("probe_size_pm").as_double(s.probe_size_pm);
  s.energy_resolution_mev =
      j.at("energy_resolution_mev").as_double(s.energy_resolution_mev);
  const Json& stage = j.at("stage");
  s.stage_x_um = stage.at("x_um").as_double();
  s.stage_y_um = stage.at("y_um").as_double();
  s.stage_z_um = stage.at("z_um").as_double();
  s.stage_tilt_alpha_deg = stage.at("tilt_alpha_deg").as_double();
  s.stage_tilt_beta_deg = stage.at("tilt_beta_deg").as_double();
  s.detector = j.at("detector").as_string(s.detector);
  s.detector_solid_angle_sr =
      j.at("detector_solid_angle_sr").as_double(s.detector_solid_angle_sr);
  s.environment = j.at("environment").as_string(s.environment);
  s.software = j.at("software").as_string(s.software);
  s.software_version = j.at("software_version").as_string(s.software_version);
  return s;
}

void write_standard_metadata(File& file, const MicroscopeSettings& scope,
                             const std::string& acquired_iso8601,
                             const std::string& sample_description,
                             const std::string& operator_name) {
  file.root.attrs["format"] = "EMD-lite";
  file.root.attrs["acquired"] = acquired_iso8601;

  Group& mic = file.root.ensure_group(Paths::kMicroscope);
  mic.attrs["settings"] = scope.to_json();

  Group& sample = file.root.ensure_group(Paths::kSample);
  sample.attrs["description"] = sample_description;

  Group& user = file.root.ensure_group(Paths::kUser);
  user.attrs["operator"] = operator_name;
}

std::string signal_kind_name(SignalKind k) {
  switch (k) {
    case SignalKind::Hyperspectral: return "hyperspectral";
    case SignalKind::Spatiotemporal: return "spatiotemporal";
  }
  return "?";
}

void add_signal(File& file, const std::string& name, SignalKind kind,
                Dataset dataset, const std::vector<std::string>& axes,
                const util::Json& extra_attrs) {
  Group& data = file.root.ensure_group(Paths::kData);
  Group& sig = data.groups[name];
  sig.attrs["signal_kind"] = signal_kind_name(kind);
  Json axes_json = Json::array();
  for (const auto& a : axes) axes_json.push_back(a);
  sig.attrs["axes"] = axes_json;
  for (const auto& [k, v] : extra_attrs.as_object()) sig.attrs[k] = v;
  sig.datasets.emplace("data", std::move(dataset));
}

util::Result<std::string> first_signal_name(const File& file) {
  using R = util::Result<std::string>;
  const Group* data = file.root.find_group(Paths::kData);
  if (!data || data->groups.empty()) {
    return R::err("file has no data/<signal> group", "not_found");
  }
  return R::ok(data->groups.begin()->first);
}

util::Result<SignalKind> signal_kind(const File& file,
                                     const std::string& name) {
  using R = util::Result<SignalKind>;
  const Group* data = file.root.find_group(Paths::kData);
  if (!data) return R::err("no data group", "not_found");
  auto it = data->groups.find(name);
  if (it == data->groups.end()) return R::err("no signal " + name, "not_found");
  auto kind_it = it->second.attrs.find("signal_kind");
  if (kind_it == it->second.attrs.end()) {
    return R::err("signal " + name + " missing signal_kind", "parse");
  }
  const std::string& kind = kind_it->second.as_string();
  if (kind == "hyperspectral") return R::ok(SignalKind::Hyperspectral);
  if (kind == "spatiotemporal") return R::ok(SignalKind::Spatiotemporal);
  return R::err("unknown signal kind: " + kind, "parse");
}

}  // namespace pico::emd

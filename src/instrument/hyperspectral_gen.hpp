#pragma once
// Synthetic hyperspectral acquisition. Models the Fig. 2 sample: a matrix
// film (e.g. polyamide: C/N/O) with embedded heavy-metal particles (Au, Pb),
// producing an [H, W, E] cube of X-ray counts. Each material's spectrum is a
// sum of Gaussian peaks at its elements' characteristic lines over a falling
// bremsstrahlung continuum; per-voxel counts are Poisson-sampled.
#include <map>
#include <string>
#include <vector>

#include "emd/file.hpp"
#include "emd/schema.hpp"
#include "instrument/xray_lines.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace pico::instrument {

/// Element symbol -> relative abundance (weights need not sum to 1).
using Composition = std::map<std::string, double>;

/// A disk-shaped inclusion of a different material in the film.
struct ParticleRegion {
  double cx, cy, radius;  ///< pixels
  Composition composition;
};

struct HyperspectralConfig {
  size_t height = 64;
  size_t width = 64;
  size_t channels = 256;
  double energy_min_kev = 0.0;
  double energy_max_kev = 20.0;
  double peak_sigma_kev = 0.06;     ///< detector energy resolution (Gaussian)
  double dose = 40.0;               ///< expected counts per pixel (scales SNR)
  double continuum_fraction = 0.15; ///< bremsstrahlung share of the dose
  Composition background;           ///< film material
  std::vector<ParticleRegion> particles;
  uint64_t seed = 1234;

  /// Polyamide film treated to capture heavy metals (paper Fig. 2 sample).
  static HyperspectralConfig fig2_sample();
};

struct HyperspectralSample {
  tensor::Tensor<double> cube;       ///< [H, W, E] X-ray counts
  std::vector<double> energy_axis;   ///< channel -> keV (bin centers)
  std::vector<std::string> true_elements;  ///< every element present
};

/// Generate a sample cube from the configuration.
HyperspectralSample generate_hyperspectral(const HyperspectralConfig& config);

/// Package a generated sample as a PicoProbe EMD-lite file (data + canonical
/// microscope/sample/user metadata). `acquired_iso8601` stamps the record.
emd::File to_emd(const HyperspectralSample& sample,
                 const HyperspectralConfig& config,
                 const emd::MicroscopeSettings& scope,
                 const std::string& acquired_iso8601,
                 const std::string& sample_description,
                 const std::string& operator_name);

}  // namespace pico::instrument

#pragma once
// Deterministic frame cutter for direct detector→compute streaming: slices a
// staged acquisition file of `total_bytes` into fixed-size frames and stamps
// each with a CRC-64 derived from the file's content checksum — the same
// idiom the chunked transfer path uses for chunk CRCs, so a frame spilled to
// the store and re-fetched verifies against the identical stamp.
#include <cstdint>

namespace pico::instrument {

struct FrameSpec {
  int64_t index = 0;  ///< frame sequence number within the acquisition
  int64_t bytes = 0;  ///< payload size (last frame may be short)
  uint64_t crc64 = 0;
};

class FrameSource {
 public:
  FrameSource(int64_t total_bytes, int64_t frame_bytes, uint64_t content_crc);

  int64_t frame_count() const { return count_; }
  int64_t total_bytes() const { return total_bytes_; }
  int64_t frame_bytes() const { return frame_bytes_; }
  uint64_t content_crc() const { return content_crc_; }

  /// Frame `i` in [0, frame_count()).
  FrameSpec frame(int64_t i) const;

  /// Byte offset where frame `i` starts.
  int64_t offset(int64_t i) const { return i * frame_bytes_; }

  /// Total payload bytes across frames [first, last], clamped to the file.
  int64_t bytes_in_range(int64_t first, int64_t last) const;

 private:
  int64_t total_bytes_ = 0;
  int64_t frame_bytes_ = 0;
  int64_t count_ = 0;
  uint64_t content_crc_ = 0;
};

}  // namespace pico::instrument

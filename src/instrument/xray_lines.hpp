#pragma once
// Characteristic X-ray emission line library. The XPAD hyperspectral detector
// in the paper records energy-dispersive spectra; the synthetic generator
// places Gaussian peaks at these line energies and the analysis pipeline
// inverts the process to identify elemental composition (Fig. 2C metadata).
#include <string>
#include <vector>

#include "util/result.hpp"

namespace pico::instrument {

struct XRayLine {
  std::string name;      ///< "Ka", "Kb", "La", "Ma"
  double energy_kev;     ///< line energy
  double relative_weight;  ///< intensity relative to the element's strongest line
};

struct Element {
  std::string symbol;
  int atomic_number;
  std::vector<XRayLine> lines;
};

/// The built-in library: light matrix elements through heavy metals, covering
/// the polyamide-film + heavy-metal-capture samples in the paper's Fig. 2.
class XRayLineLibrary {
 public:
  static const XRayLineLibrary& standard();

  util::Result<const Element*> element(const std::string& symbol) const;
  const std::vector<Element>& elements() const { return elements_; }

  /// All lines (element, line) whose energy lies within [lo, hi] keV.
  std::vector<std::pair<const Element*, const XRayLine*>> lines_in_range(
      double lo_kev, double hi_kev) const;

 private:
  std::vector<Element> elements_;
};

}  // namespace pico::instrument

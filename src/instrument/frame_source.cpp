#include "instrument/frame_source.hpp"

#include <algorithm>
#include <cassert>

#include "util/crc64.hpp"
#include "util/strings.hpp"

namespace pico::instrument {

FrameSource::FrameSource(int64_t total_bytes, int64_t frame_bytes,
                         uint64_t content_crc)
    : total_bytes_(total_bytes),
      frame_bytes_(frame_bytes),
      content_crc_(content_crc) {
  assert(total_bytes_ >= 0);
  assert(frame_bytes_ >= 1);
  count_ = (total_bytes_ + frame_bytes_ - 1) / frame_bytes_;
}

FrameSpec FrameSource::frame(int64_t i) const {
  assert(i >= 0 && i < count_);
  FrameSpec f;
  f.index = i;
  f.bytes = std::min(frame_bytes_, total_bytes_ - i * frame_bytes_);
  // Same derivation as transfer chunk CRCs: content checksum + index + size.
  f.crc64 = util::crc64(util::format(
      "%016llx:%lld:%lld", static_cast<unsigned long long>(content_crc_),
      static_cast<long long>(i), static_cast<long long>(f.bytes)));
  return f;
}

int64_t FrameSource::bytes_in_range(int64_t first, int64_t last) const {
  first = std::max<int64_t>(first, 0);
  last = std::min(last, count_ - 1);
  if (first > last) return 0;
  int64_t end = std::min(total_bytes_, (last + 1) * frame_bytes_);
  return end - first * frame_bytes_;
}

}  // namespace pico::instrument

#include "instrument/xray_lines.hpp"

namespace pico::instrument {

const XRayLineLibrary& XRayLineLibrary::standard() {
  static const XRayLineLibrary* kLibrary = [] {
    auto* lib = new XRayLineLibrary();
    // Energies in keV from standard EDS references (Ka/Kb/La/Ma as relevant
    // below 20 keV, the XPAD acquisition window we simulate).
    lib->elements_ = {
        {"C", 6, {{"Ka", 0.277, 1.0}}},
        {"N", 7, {{"Ka", 0.392, 1.0}}},
        {"O", 8, {{"Ka", 0.525, 1.0}}},
        {"Na", 11, {{"Ka", 1.041, 1.0}}},
        {"Al", 13, {{"Ka", 1.486, 1.0}}},
        {"Si", 14, {{"Ka", 1.740, 1.0}}},
        {"P", 15, {{"Ka", 2.013, 1.0}}},
        {"S", 16, {{"Ka", 2.307, 1.0}}},
        {"Cl", 17, {{"Ka", 2.621, 1.0}}},
        {"K", 19, {{"Ka", 3.312, 1.0}}},
        {"Ca", 20, {{"Ka", 3.690, 1.0}, {"Kb", 4.012, 0.13}}},
        {"Ti", 22, {{"Ka", 4.508, 1.0}, {"Kb", 4.931, 0.15}}},
        {"Cr", 24, {{"Ka", 5.411, 1.0}, {"Kb", 5.946, 0.15}}},
        {"Mn", 25, {{"Ka", 5.894, 1.0}, {"Kb", 6.489, 0.15}}},
        {"Fe", 26, {{"Ka", 6.398, 1.0}, {"Kb", 7.057, 0.15}}},
        {"Ni", 28, {{"Ka", 7.471, 1.0}, {"Kb", 8.264, 0.15}}},
        {"Cu", 29, {{"Ka", 8.040, 1.0}, {"Kb", 8.904, 0.15}}},
        {"Zn", 30, {{"Ka", 8.630, 1.0}, {"Kb", 9.570, 0.15}}},
        {"Pt", 78, {{"Ma", 2.048, 0.8}, {"La", 9.441, 1.0}, {"Lb", 11.070, 0.7}}},
        {"Au", 79, {{"Ma", 2.123, 0.8}, {"La", 9.711, 1.0}, {"Lb", 11.442, 0.7}}},
        {"Pb", 82, {{"Ma", 2.342, 0.8}, {"La", 10.549, 1.0}, {"Lb", 12.611, 0.7}}},
        {"U", 92, {{"Ma", 3.165, 0.9}, {"La", 13.613, 1.0}}},
    };
    return lib;
  }();
  return *kLibrary;
}

util::Result<const Element*> XRayLineLibrary::element(
    const std::string& symbol) const {
  for (const auto& e : elements_) {
    if (e.symbol == symbol) {
      return util::Result<const Element*>::ok(&e);
    }
  }
  return util::Result<const Element*>::err("unknown element: " + symbol,
                                           "not_found");
}

std::vector<std::pair<const Element*, const XRayLine*>>
XRayLineLibrary::lines_in_range(double lo_kev, double hi_kev) const {
  std::vector<std::pair<const Element*, const XRayLine*>> out;
  for (const auto& e : elements_) {
    for (const auto& l : e.lines) {
      if (l.energy_kev >= lo_kev && l.energy_kev <= hi_kev) {
        out.emplace_back(&e, &l);
      }
    }
  }
  return out;
}

}  // namespace pico::instrument

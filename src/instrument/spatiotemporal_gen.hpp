#pragma once
// Synthetic spatiotemporal acquisition: gold nanoparticles random-walking on
// a carbon background (the paper's 600-frame Fig. 3 sequence), emitted as an
// [T, H, W] fp64 stack plus per-frame ground-truth bounding boxes that the
// detection pipeline is evaluated against (mAP50-95).
#include <vector>

#include "emd/file.hpp"
#include "emd/schema.hpp"
#include "tensor/tensor.hpp"
#include "util/geometry.hpp"
#include "util/rng.hpp"

namespace pico::instrument {

struct SpatiotemporalConfig {
  size_t frames = 60;
  size_t height = 128;
  size_t width = 128;
  size_t particle_count = 8;
  double radius_min = 3.0, radius_max = 7.0;   ///< nanoparticle radii, pixels
  double step_sigma = 1.2;        ///< Brownian step per frame, pixels
  double particle_intensity = 4.0;  ///< peak signal above background
  double background_level = 1.0;
  double noise_sigma = 0.18;      ///< additive Gaussian detector noise
  double psf_sigma_frac = 0.45;   ///< blob softness as a fraction of radius
  double merge_prob = 0.0;        ///< chance per frame a particle pair sticks
  uint64_t seed = 777;

  /// The Fig. 3 scenario: 600 frames of drifting gold nanoparticles.
  static SpatiotemporalConfig fig3_sample();
};

struct SpatiotemporalSample {
  tensor::Tensor<double> stack;  ///< [T, H, W]
  /// Ground truth: boxes[t] lists visible particles in frame t, clipped to
  /// the frame; particles that drift fully outside are omitted.
  std::vector<std::vector<util::Box>> boxes;
  /// Stable particle identity per box (parallel to `boxes`), for tracker
  /// evaluation.
  std::vector<std::vector<int>> ids;
};

SpatiotemporalSample generate_spatiotemporal(const SpatiotemporalConfig& cfg);

/// Package as a PicoProbe EMD-lite file.
emd::File to_emd(const SpatiotemporalSample& sample,
                 const SpatiotemporalConfig& cfg,
                 const emd::MicroscopeSettings& scope,
                 const std::string& acquired_iso8601,
                 const std::string& sample_description,
                 const std::string& operator_name);

}  // namespace pico::instrument

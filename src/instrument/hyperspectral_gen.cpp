#include "instrument/hyperspectral_gen.hpp"

#include <cmath>
#include <set>

namespace pico::instrument {
namespace {

/// Expected spectrum (per unit dose) for a composition: characteristic peaks
/// plus continuum, normalized to sum to 1 over the channels.
std::vector<double> material_template(const HyperspectralConfig& cfg,
                                      const Composition& comp,
                                      const std::vector<double>& energy_axis) {
  const auto& lib = XRayLineLibrary::standard();
  std::vector<double> spec(cfg.channels, 0.0);

  double total_weight = 0;
  for (const auto& [sym, w] : comp) total_weight += w;
  if (total_weight <= 0) total_weight = 1;

  const double inv_two_sigma2 =
      1.0 / (2.0 * cfg.peak_sigma_kev * cfg.peak_sigma_kev);

  for (const auto& [sym, w] : comp) {
    auto el = lib.element(sym);
    if (!el) continue;  // unknown symbols contribute nothing
    for (const auto& line : el.value()->lines) {
      double amp = (w / total_weight) * line.relative_weight;
      for (size_t k = 0; k < cfg.channels; ++k) {
        double d = energy_axis[k] - line.energy_kev;
        spec[k] += amp * std::exp(-d * d * inv_two_sigma2);
      }
    }
  }

  // Bremsstrahlung continuum: falls roughly as (E0 - E)/E (Kramers), here a
  // simple decaying profile over the window, excluding the zero channel.
  double continuum_total = 0;
  std::vector<double> continuum(cfg.channels, 0.0);
  for (size_t k = 0; k < cfg.channels; ++k) {
    double e = energy_axis[k];
    if (e <= 0.05) continue;
    continuum[k] = (cfg.energy_max_kev - e) / (e + 0.5);
    continuum_total += continuum[k];
  }

  double peak_total = 0;
  for (double v : spec) peak_total += v;

  std::vector<double> out(cfg.channels, 0.0);
  for (size_t k = 0; k < cfg.channels; ++k) {
    double peak_part =
        peak_total > 0 ? spec[k] / peak_total * (1.0 - cfg.continuum_fraction)
                       : 0.0;
    double cont_part = continuum_total > 0
                           ? continuum[k] / continuum_total * cfg.continuum_fraction
                           : 0.0;
    out[k] = peak_part + cont_part;
  }
  return out;
}

}  // namespace

HyperspectralConfig HyperspectralConfig::fig2_sample() {
  HyperspectralConfig cfg;
  cfg.height = 128;
  cfg.width = 128;
  cfg.channels = 512;
  cfg.dose = 60.0;
  // Polyamide organic film: carbon-dominated with nitrogen/oxygen.
  cfg.background = {{"C", 0.70}, {"N", 0.15}, {"O", 0.15}};
  // Captured heavy metals: gold and lead particles of varying size.
  cfg.particles = {
      {32, 40, 9, {{"Au", 0.8}, {"C", 0.2}}},
      {84, 30, 6, {{"Au", 0.7}, {"C", 0.3}}},
      {64, 86, 11, {{"Pb", 0.75}, {"C", 0.25}}},
      {100, 100, 5, {{"Pb", 0.6}, {"C", 0.4}}},
      {20, 104, 7, {{"Au", 0.5}, {"Pb", 0.3}, {"C", 0.2}}},
  };
  cfg.seed = 20230407;
  return cfg;
}

HyperspectralSample generate_hyperspectral(const HyperspectralConfig& cfg) {
  HyperspectralSample out;
  out.energy_axis.resize(cfg.channels);
  for (size_t k = 0; k < cfg.channels; ++k) {
    out.energy_axis[k] =
        cfg.energy_min_kev + (cfg.energy_max_kev - cfg.energy_min_kev) *
                                 (static_cast<double>(k) + 0.5) /
                                 static_cast<double>(cfg.channels);
  }

  // Template per material: index 0 = background, i+1 = particle i.
  std::vector<std::vector<double>> templates;
  templates.push_back(material_template(cfg, cfg.background, out.energy_axis));
  for (const auto& p : cfg.particles) {
    templates.push_back(material_template(cfg, p.composition, out.energy_axis));
  }

  std::set<std::string> elements;
  for (const auto& [sym, w] : cfg.background) elements.insert(sym);
  for (const auto& p : cfg.particles) {
    for (const auto& [sym, w] : p.composition) elements.insert(sym);
  }
  out.true_elements.assign(elements.begin(), elements.end());

  util::Rng rng(cfg.seed);
  out.cube = tensor::Tensor<double>(tensor::Shape{cfg.height, cfg.width, cfg.channels});

  for (size_t i = 0; i < cfg.height; ++i) {
    for (size_t j = 0; j < cfg.width; ++j) {
      // Innermost particle wins (later entries overlay earlier ones).
      size_t material = 0;
      for (size_t p = 0; p < cfg.particles.size(); ++p) {
        double dx = static_cast<double>(j) - cfg.particles[p].cx;
        double dy = static_cast<double>(i) - cfg.particles[p].cy;
        if (dx * dx + dy * dy <= cfg.particles[p].radius * cfg.particles[p].radius) {
          material = p + 1;
        }
      }
      const auto& tmpl = templates[material];
      // Heavier particles scatter more: boost dose slightly inside particles.
      double dose = cfg.dose * (material == 0 ? 1.0 : 1.6);
      double* voxel = &out.cube(i, j, 0);
      for (size_t k = 0; k < cfg.channels; ++k) {
        double lambda = tmpl[k] * dose;
        voxel[k] = lambda > 0 ? static_cast<double>(rng.poisson(lambda)) : 0.0;
      }
    }
  }
  return out;
}

emd::File to_emd(const HyperspectralSample& sample,
                 const HyperspectralConfig& cfg,
                 const emd::MicroscopeSettings& scope,
                 const std::string& acquired_iso8601,
                 const std::string& sample_description,
                 const std::string& operator_name) {
  emd::File file;
  emd::write_standard_metadata(file, scope, acquired_iso8601,
                               sample_description, operator_name);

  util::Json extra = util::Json::object({
      {"energy_min_kev", cfg.energy_min_kev},
      {"energy_max_kev", cfg.energy_max_kev},
      {"dose", cfg.dose},
  });
  emd::add_signal(file, "hyperspectral",
                  emd::SignalKind::Hyperspectral,
                  emd::Dataset::from_tensor(sample.cube),
                  {"height", "width", "energy"}, extra);
  return file;
}

}  // namespace pico::instrument

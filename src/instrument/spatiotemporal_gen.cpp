#include "instrument/spatiotemporal_gen.hpp"

#include <cmath>

namespace pico::instrument {

SpatiotemporalConfig SpatiotemporalConfig::fig3_sample() {
  SpatiotemporalConfig cfg;
  cfg.frames = 600;
  cfg.height = 160;
  cfg.width = 160;
  cfg.particle_count = 10;
  cfg.seed = 20230408;
  return cfg;
}

SpatiotemporalSample generate_spatiotemporal(const SpatiotemporalConfig& cfg) {
  util::Rng rng(cfg.seed);

  struct Particle {
    double x, y, r;
  };
  std::vector<Particle> particles(cfg.particle_count);
  for (auto& p : particles) {
    p.x = rng.uniform(cfg.radius_max, static_cast<double>(cfg.width) - cfg.radius_max);
    p.y = rng.uniform(cfg.radius_max, static_cast<double>(cfg.height) - cfg.radius_max);
    p.r = rng.uniform(cfg.radius_min, cfg.radius_max);
  }

  SpatiotemporalSample out;
  out.stack = tensor::Tensor<double>(
      tensor::Shape{cfg.frames, cfg.height, cfg.width});
  out.boxes.resize(cfg.frames);
  out.ids.resize(cfg.frames);

  const double w = static_cast<double>(cfg.width);
  const double h = static_cast<double>(cfg.height);

  for (size_t t = 0; t < cfg.frames; ++t) {
    // Background: flat level + detector noise.
    double* frame = &out.stack(t, 0, 0);
    for (size_t i = 0; i < cfg.height * cfg.width; ++i) {
      frame[i] = cfg.background_level + rng.normal(0.0, cfg.noise_sigma);
    }

    // Render particles as soft disks (Gaussian-edged blobs) and record truth.
    for (size_t pi = 0; pi < particles.size(); ++pi) {
      auto& p = particles[pi];
      double sigma = std::max(0.8, p.r * cfg.psf_sigma_frac);
      int x_lo = static_cast<int>(std::floor(p.x - p.r - 3 * sigma));
      int x_hi = static_cast<int>(std::ceil(p.x + p.r + 3 * sigma));
      int y_lo = static_cast<int>(std::floor(p.y - p.r - 3 * sigma));
      int y_hi = static_cast<int>(std::ceil(p.y + p.r + 3 * sigma));
      for (int yy = std::max(0, y_lo); yy <= std::min<int>(cfg.height - 1, y_hi); ++yy) {
        for (int xx = std::max(0, x_lo); xx <= std::min<int>(cfg.width - 1, x_hi); ++xx) {
          double dx = xx - p.x, dy = yy - p.y;
          double d = std::sqrt(dx * dx + dy * dy);
          // Plateau inside the radius, Gaussian falloff at the rim.
          double v = d <= p.r
                         ? 1.0
                         : std::exp(-(d - p.r) * (d - p.r) / (2 * sigma * sigma));
          out.stack(t, static_cast<size_t>(yy), static_cast<size_t>(xx)) +=
              cfg.particle_intensity * v;
        }
      }

      // Ground-truth convention: the *visible* extent of the particle — the
      // half-maximum radius of its soft-edged profile — matching how a human
      // annotator (the paper used Roboflow) draws boxes around what is
      // visible rather than the physical core. Half maximum of the Gaussian
      // rim sits at r + sigma*sqrt(2 ln 2).
      double r_vis = p.r + sigma * 1.1774;
      util::Box raw{p.x - r_vis, p.y - r_vis, 2 * r_vis, 2 * r_vis};
      util::Box clipped = util::clip(raw, w, h);
      // Keep the particle in truth only while a meaningful part is visible.
      if (clipped.area() >= 0.25 * raw.area() && clipped.area() > 0) {
        out.boxes[t].push_back(clipped);
        out.ids[t].push_back(static_cast<int>(pi));
      }
    }

    // Brownian drift with reflecting boundaries (keeps most particles in
    // frame across long sequences, like the carbon-substrate videos).
    for (auto& p : particles) {
      p.x += rng.normal(0.0, cfg.step_sigma);
      p.y += rng.normal(0.0, cfg.step_sigma);
      if (p.x < -p.r) p.x = -p.r;
      if (p.x > w + p.r) p.x = w + p.r;
      if (p.y < -p.r) p.y = -p.r;
      if (p.y > h + p.r) p.y = h + p.r;
    }
  }
  return out;
}

emd::File to_emd(const SpatiotemporalSample& sample,
                 const SpatiotemporalConfig& cfg,
                 const emd::MicroscopeSettings& scope,
                 const std::string& acquired_iso8601,
                 const std::string& sample_description,
                 const std::string& operator_name) {
  emd::File file;
  emd::write_standard_metadata(file, scope, acquired_iso8601,
                               sample_description, operator_name);
  util::Json extra = util::Json::object({
      {"frame_count", static_cast<int64_t>(cfg.frames)},
      {"particle_kind", "gold-nanoparticle"},
      {"substrate", "carbon"},
  });
  emd::add_signal(file, "spatiotemporal", emd::SignalKind::Spatiotemporal,
                  emd::Dataset::from_tensor(sample.stack),
                  {"time", "height", "width"}, extra);
  return file;
}

}  // namespace pico::instrument

#include "util/xml.hpp"

#include <cctype>

namespace pico::util {

const XmlNode* XmlNode::child(const std::string& want) const {
  for (const auto& c : children) {
    if (c.name == want) return &c;
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::children_named(
    const std::string& want) const {
  std::vector<const XmlNode*> out;
  for (const auto& c : children) {
    if (c.name == want) out.push_back(&c);
  }
  return out;
}

std::string XmlNode::attr(const std::string& key,
                          const std::string& fallback) const {
  auto it = attrs.find(key);
  return it == attrs.end() ? fallback : it->second;
}

std::string XmlNode::child_text(const std::string& want,
                                const std::string& fallback) const {
  const XmlNode* c = child(want);
  return c ? c->text : fallback;
}

XmlNode& XmlNode::ensure_child(const std::string& want) {
  for (auto& c : children) {
    if (c.name == want) return c;
  }
  children.push_back(XmlNode{want, {}, "", {}});
  return children.back();
}

XmlNode& XmlNode::add_child(const std::string& want, const std::string& body) {
  children.push_back(XmlNode{want, {}, body, {}});
  return children.back();
}

std::string xml_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

namespace {

void serialize_node(const XmlNode& node, std::string& out, int depth) {
  out.append(static_cast<size_t>(depth * 2), ' ');
  out.push_back('<');
  out += node.name;
  for (const auto& [k, v] : node.attrs) {
    out += " " + k + "=\"" + xml_escape(v) + "\"";
  }
  if (node.text.empty() && node.children.empty()) {
    out += "/>\n";
    return;
  }
  out.push_back('>');
  if (!node.text.empty()) out += xml_escape(node.text);
  if (!node.children.empty()) {
    out.push_back('\n');
    for (const auto& c : node.children) serialize_node(c, out, depth + 1);
    out.append(static_cast<size_t>(depth * 2), ' ');
  }
  out += "</" + node.name + ">\n";
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<XmlNode> parse() {
    skip_prolog_and_ws();
    auto root = parse_element();
    if (!root) return root;
    skip_ws_and_comments();
    if (pos_ != text_.size()) {
      return fail("trailing content after root element");
    }
    return root;
  }

 private:
  Result<XmlNode> fail(const std::string& what) {
    return Result<XmlNode>::err(
        what + " at offset " + std::to_string(pos_), "parse");
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }
  bool consume(char c) {
    if (!eof() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool consume_str(std::string_view s) {
    if (text_.substr(pos_, s.size()) == s) {
      pos_ += s.size();
      return true;
    }
    return false;
  }
  void skip_ws() {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) ++pos_;
  }
  bool skip_comment() {
    if (!consume_str("<!--")) return false;
    size_t end = text_.find("-->", pos_);
    pos_ = end == std::string_view::npos ? text_.size() : end + 3;
    return true;
  }
  void skip_ws_and_comments() {
    while (true) {
      skip_ws();
      if (!skip_comment()) break;
    }
  }
  void skip_prolog_and_ws() {
    skip_ws();
    if (consume_str("<?")) {
      size_t end = text_.find("?>", pos_);
      pos_ = end == std::string_view::npos ? text_.size() : end + 2;
    }
    skip_ws_and_comments();
  }

  static bool name_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == ':' || c == '.';
  }

  std::string parse_name() {
    std::string out;
    while (!eof() && name_char(peek())) out.push_back(text_[pos_++]);
    return out;
  }

  std::string decode_entities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (size_t i = 0; i < raw.size();) {
      if (raw[i] == '&') {
        auto try_entity = [&](std::string_view name, char repl) {
          if (raw.substr(i, name.size()) == name) {
            out.push_back(repl);
            i += name.size();
            return true;
          }
          return false;
        };
        if (try_entity("&amp;", '&') || try_entity("&lt;", '<') ||
            try_entity("&gt;", '>') || try_entity("&quot;", '"') ||
            try_entity("&apos;", '\'')) {
          continue;
        }
      }
      out.push_back(raw[i++]);
    }
    return out;
  }

  Result<XmlNode> parse_element() {
    if (!consume('<')) return fail("expected '<'");
    XmlNode node;
    node.name = parse_name();
    if (node.name.empty()) return fail("expected element name");

    // Attributes.
    while (true) {
      skip_ws();
      if (eof()) return fail("unterminated start tag");
      if (consume_str("/>")) return Result<XmlNode>::ok(std::move(node));
      if (consume('>')) break;
      std::string key = parse_name();
      if (key.empty()) return fail("expected attribute name");
      skip_ws();
      if (!consume('=')) return fail("expected '=' after attribute name");
      skip_ws();
      char quote = eof() ? 0 : peek();
      if (quote != '"' && quote != '\'') return fail("expected quoted value");
      ++pos_;
      size_t start = pos_;
      while (!eof() && peek() != quote) ++pos_;
      if (eof()) return fail("unterminated attribute value");
      node.attrs[key] = decode_entities(text_.substr(start, pos_ - start));
      ++pos_;
    }

    // Content: text, children, comments, until the matching end tag.
    while (true) {
      if (eof()) return fail("unterminated element <" + node.name + ">");
      if (text_[pos_] == '<') {
        if (skip_comment()) continue;
        if (text_.substr(pos_, 2) == "</") {
          pos_ += 2;
          std::string end_name = parse_name();
          skip_ws();
          if (!consume('>')) return fail("malformed end tag");
          if (end_name != node.name) {
            return fail("mismatched end tag </" + end_name + ">");
          }
          return Result<XmlNode>::ok(std::move(node));
        }
        auto childnode = parse_element();
        if (!childnode) return childnode;
        node.children.push_back(std::move(childnode).value());
      } else {
        size_t start = pos_;
        while (!eof() && peek() != '<') ++pos_;
        std::string chunk = decode_entities(text_.substr(start, pos_ - start));
        // Trim pure-whitespace runs between children; keep meaningful text.
        bool all_ws = true;
        for (char c : chunk) {
          if (!std::isspace(static_cast<unsigned char>(c))) {
            all_ws = false;
            break;
          }
        }
        if (!all_ws) node.text += chunk;
      }
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

std::string xml_serialize(const XmlNode& root) {
  std::string out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  serialize_node(root, out, 0);
  return out;
}

Result<XmlNode> xml_parse(std::string_view text) {
  return Parser(text).parse();
}

}  // namespace pico::util

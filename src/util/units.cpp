#include "util/units.hpp"

#include <cctype>
#include <cstdlib>
#include <string>

#include "util/strings.hpp"

namespace pico::util {
namespace {

// Splits "1.5 GB" into value and unit token (lowercased, spaces stripped).
bool split_value_unit(std::string_view text, double* value, std::string* unit) {
  std::string s(trim(text));
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str()) return false;
  *value = v;
  std::string u(trim(std::string_view(end)));
  *unit = to_lower(u);
  return true;
}

}  // namespace

Result<int64_t> parse_bytes(std::string_view text) {
  double v;
  std::string unit;
  if (!split_value_unit(text, &v, &unit)) {
    return Result<int64_t>::err("cannot parse size: " + std::string(text),
                                "parse");
  }
  double mult = 1;
  if (unit.empty() || unit == "b") mult = 1;
  else if (unit == "kb") mult = static_cast<double>(kKB);
  else if (unit == "mb") mult = static_cast<double>(kMB);
  else if (unit == "gb") mult = static_cast<double>(kGB);
  else if (unit == "tb") mult = static_cast<double>(kTB);
  else if (unit == "pb") mult = static_cast<double>(kPB);
  else {
    return Result<int64_t>::err("unknown size unit: " + unit, "parse");
  }
  return Result<int64_t>::ok(static_cast<int64_t>(v * mult));
}

Result<double> parse_rate_bps(std::string_view text) {
  double v;
  std::string unit;
  if (!split_value_unit(text, &v, &unit)) {
    return Result<double>::err("cannot parse rate: " + std::string(text),
                               "parse");
  }
  if (unit == "bps") return Result<double>::ok(v);
  if (unit == "kbps") return Result<double>::ok(v * kKbps);
  if (unit == "mbps") return Result<double>::ok(v * kMbps);
  if (unit == "gbps") return Result<double>::ok(v * kGbps);
  if (unit == "b/s") return Result<double>::ok(v * 8);
  if (unit == "kb/s") return Result<double>::ok(v * 8e3);
  if (unit == "mb/s") return Result<double>::ok(v * 8e6);
  if (unit == "gb/s") return Result<double>::ok(v * 8e9);
  if (unit == "tb/s") return Result<double>::ok(v * 8e12);
  return Result<double>::err("unknown rate unit: " + unit, "parse");
}

}  // namespace pico::util

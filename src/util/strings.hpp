#pragma once
// Small string helpers shared across modules.
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pico::util {

/// Split `s` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Split on any whitespace run, dropping empty fields.
std::vector<std::string> split_ws(std::string_view s);

/// Strip leading/trailing whitespace.
std::string_view trim(std::string_view s);

/// ASCII lowercase copy.
std::string to_lower(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Join items with `sep`.
std::string join(const std::vector<std::string>& items, std::string_view sep);

/// Lowercase hex of a byte span.
std::string to_hex(const uint8_t* data, size_t n);
std::string to_hex_u64(uint64_t v);

/// printf-style formatting into std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Human-readable byte count ("91.0 MB", "1.17 GB"). Decimal units (SI),
/// matching how the paper reports file sizes.
std::string human_bytes(double bytes);

/// Replace all occurrences of `from` with `to`.
std::string replace_all(std::string s, std::string_view from,
                        std::string_view to);

/// Escape text for embedding in HTML.
std::string html_escape(std::string_view s);

}  // namespace pico::util

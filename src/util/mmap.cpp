#include "util/mmap.hpp"

#include <utility>

#include "util/bytes.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define PICO_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace pico::util {

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    unmap();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mapped_ = std::exchange(other.mapped_, false);
    fallback_ = std::move(other.fallback_);
    if (!mapped_) data_ = fallback_.data();
  }
  return *this;
}

void MappedFile::unmap() {
#if defined(PICO_HAVE_MMAP)
  if (mapped_ && data_ != nullptr) {
    ::munmap(data_, size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  fallback_.clear();
}

MappedFile::~MappedFile() { unmap(); }

Result<MappedFile> MappedFile::open(const std::string& path) {
#if defined(PICO_HAVE_MMAP)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Result<MappedFile>::err("cannot open " + path, "io");
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Result<MappedFile>::err("cannot stat " + path, "io");
  }
  MappedFile mf;
  mf.size_ = static_cast<size_t>(st.st_size);
  if (mf.size_ == 0) {
    // mmap(0) is EINVAL; an empty file maps to an empty span.
    ::close(fd);
    mf.mapped_ = true;
    return Result<MappedFile>::ok(std::move(mf));
  }
  void* p = ::mmap(nullptr, mf.size_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (p == MAP_FAILED) {
    return Result<MappedFile>::err("mmap failed for " + path, "io");
  }
  mf.data_ = p;
  mf.mapped_ = true;
  return Result<MappedFile>::ok(std::move(mf));
#else
  auto bytes = read_file(path);
  if (!bytes) {
    return Result<MappedFile>::err(bytes.error().message, "io");
  }
  MappedFile mf;
  mf.fallback_ = std::move(bytes).value();
  mf.data_ = mf.fallback_.data();
  mf.size_ = mf.fallback_.size();
  return Result<MappedFile>::ok(std::move(mf));
#endif
}

}  // namespace pico::util

#pragma once
// Deterministic, seedable pseudo-random number generation (xoshiro256**).
// Every stochastic component of the facility simulation draws from an Rng so
// that campaigns are exactly reproducible from a seed — a requirement for the
// determinism tests and for calibrating against the paper's Table 1.
#include <cstddef>
#include <cstdint>
#include <vector>

namespace pico::util {

/// xoshiro256** 1.0 (Blackman & Vigna). Fast, high-quality, 256-bit state.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit value.
  uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t uniform_int(int64_t lo, int64_t hi);

  /// Standard normal via Box–Muller (cached second value).
  double normal();
  double normal(double mean, double stddev);

  /// Log-normal: exp(normal(mu, sigma)). Used for heavy-tailed service times.
  double lognormal(double mu, double sigma);

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate);

  /// Poisson-distributed count. Knuth's method for small lambda, normal
  /// approximation (clamped at 0) for large lambda.
  int64_t poisson(double lambda);

  /// Bernoulli trial.
  bool chance(double p);

  /// Pick an index in [0, weights.size()) proportionally to weights.
  size_t weighted_index(const std::vector<double>& weights);

  /// Derive an independent child generator (for per-actor streams).
  Rng fork();

 private:
  uint64_t state_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace pico::util

#pragma once
// CRC-64 (ECMA-182 polynomial) used as the integrity checksum for EMD-lite
// dataset payloads and simulated Globus transfers ("checksum verification").
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace pico::util {

/// One-shot CRC-64/ECMA of a byte buffer (slicing-by-8 fast path).
uint64_t crc64(const void* data, size_t n);
uint64_t crc64(std::string_view s);
uint64_t crc64(const std::vector<uint8_t>& v);

/// Byte-at-a-time reference implementation. Same polynomial semantics as
/// crc64(); kept so tests and bench_dataplane can cross-check the slicing
/// rewrite against the value baked into existing EMD files.
uint64_t crc64_bytewise(const void* data, size_t n);

/// Fused copy + checksum: copies n bytes from src to dst (which must not
/// overlap) and returns crc64(src, n), touching the source exactly once.
/// The data plane uses this wherever bytes were previously landed with
/// memcpy and then re-scanned for their checksum.
uint64_t crc64_copy(void* dst, const void* src, size_t n);

/// Incremental CRC-64 for streaming (chunked transfer) use.
class Crc64 {
 public:
  void update(const void* data, size_t n);
  /// update(src, n) fused with a copy to dst (see crc64_copy).
  void update_copy(void* dst, const void* src, size_t n);
  uint64_t value() const { return ~state_; }
  void reset() { state_ = ~0ull; }

 private:
  uint64_t state_ = ~0ull;
};

}  // namespace pico::util

#include "util/arena.hpp"

#include <algorithm>
#include <cstdint>

namespace pico::util {

namespace {

size_t align_up(size_t n, size_t align) {
  return (n + align - 1) & ~(align - 1);
}

}  // namespace

void* Arena::allocate(size_t n, size_t align) {
  // operator new[] only guarantees 16-byte alignment; align the absolute
  // address (base + used), not the offset, so every allocation lands on the
  // requested boundary regardless of where the slab itself starts.
  for (; cursor_ < blocks_.size(); ++cursor_) {
    Block& b = blocks_[cursor_];
    const uintptr_t base = reinterpret_cast<uintptr_t>(b.data.get());
    const size_t start = align_up(base + b.used, align) - base;
    if (start + n <= b.size) {
      b.used = start + n;
      allocated_ += n;
      return b.data.get() + start;
    }
  }
  const size_t slab = std::max(block_bytes_, align_up(n, align) + align);
  Block b;
  b.data = std::make_unique<uint8_t[]>(slab);
  b.size = slab;
  blocks_.push_back(std::move(b));
  cursor_ = blocks_.size() - 1;
  Block& nb = blocks_.back();
  const uintptr_t base = reinterpret_cast<uintptr_t>(nb.data.get());
  const size_t start = align_up(base, align) - base;
  nb.used = start + n;
  allocated_ += n;
  return nb.data.get() + start;
}

void Arena::reset() {
  for (Block& b : blocks_) b.used = 0;
  cursor_ = 0;
  allocated_ = 0;
}

size_t Arena::reserved_bytes() const {
  size_t total = 0;
  for (const Block& b : blocks_) total += b.size;
  return total;
}

BufferPool::Lease& BufferPool::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    release();
    pool_ = other.pool_;
    buf_ = std::move(other.buf_);
    size_ = other.size_;
    other.pool_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void BufferPool::Lease::release() {
  if (pool_ != nullptr) {
    pool_->give_back(std::move(buf_));
    pool_ = nullptr;
    size_ = 0;
  }
}

size_t BufferPool::size_class(size_t n) {
  size_t c = 4096;
  while (c < n) c <<= 1;
  return c;
}

BufferPool::Lease BufferPool::acquire(size_t n) {
  const size_t cls = size_class(n);
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.acquired;
  auto it = free_.find(cls);
  if (it != free_.end() && !it->second.empty()) {
    std::vector<uint8_t> buf = std::move(it->second.back());
    it->second.pop_back();
    stats_.cached_bytes -= buf.size();
    ++stats_.reused;
    return Lease(this, std::move(buf), n);
  }
  ++stats_.allocated;
  return Lease(this, std::vector<uint8_t>(cls), n);
}

void BufferPool::give_back(std::vector<uint8_t> buf) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& list = free_[buf.size()];
  if (list.size() >= max_cached_per_class_) {
    ++stats_.dropped;
    return;  // buf freed on scope exit
  }
  stats_.cached_bytes += buf.size();
  list.push_back(std::move(buf));
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

BufferPool& shared_buffer_pool() {
  static BufferPool* kPool = new BufferPool();
  return *kPool;
}

}  // namespace pico::util

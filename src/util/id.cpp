#include "util/id.hpp"

#include "util/strings.hpp"

namespace pico::util {
namespace {

uint64_t mix(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ull;
  x ^= x >> 33;
  return x;
}

}  // namespace

IdGen::IdGen(uint64_t seed) : stream_(mix(seed)) {}

std::string IdGen::next(const std::string& prefix) {
  uint64_t tag = mix(stream_ ^ ++counter_);
  return format("%s-%08llx-%llu", prefix.c_str(),
                static_cast<unsigned long long>(tag & 0xFFFFFFFFull),
                static_cast<unsigned long long>(counter_));
}

uint64_t IdGen::next_numeric() { return mix(stream_ ^ ++counter_); }

}  // namespace pico::util

#pragma once
// Fixed-size thread pool. Used by the real-time (non-simulated) paths: the
// live directory watcher example and the parallel data plane (fp64->uint8
// conversion, axis reductions, blur, block compression, per-frame detection
// fan-out), mirroring how the paper's compute functions exploit a whole
// Polaris node.
//
// Determinism contract: every parallel kernel built on this pool must be
// bit-identical to its sequential twin for ANY pool width. parallel_chunks
// partitions work into [begin, end) ranges whose boundaries depend only on
// (n, grain) — never on thread_count() — so a caller that fixes its grain by
// problem size gets identical chunking (and, for reductions combined in chunk
// order, identical floating-point association) whether the pool has 1 thread
// or 64.
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace pico::util {

/// Cumulative profiling counters for one pool, snapshotted for telemetry.
/// Counting is a handful of relaxed atomic bumps per *chunk* (not per index),
/// so the overhead is invisible next to chunk bodies of kReduceGrain work.
struct PoolStats {
  uint64_t tasks_submitted = 0;   ///< submit() calls
  uint64_t batches = 0;           ///< parallel_chunks invocations
  uint64_t chunks_executed = 0;   ///< chunks drained, all threads
  uint64_t caller_chunks = 0;     ///< chunks drained inline by the caller
  uint64_t chunk_time_ns = 0;     ///< wall time inside chunk bodies, summed
  uint64_t max_queue_depth = 0;   ///< peak pending-task backlog observed
  double utilization(double wall_seconds, size_t threads) const {
    double capacity = wall_seconds * static_cast<double>(threads) * 1e9;
    return capacity <= 0 ? 0.0
                         : static_cast<double>(chunk_time_ns) / capacity;
  }
};

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; returns a future for its completion.
  std::future<void> submit(std::function<void()> task);

  /// Run body(begin, end) over a partition of [0, n) into ceil(n/grain)
  /// chunks and wait for completion. One dispatched task per chunk (not per
  /// index); the calling thread drains chunks too, so nested calls from a
  /// worker cannot deadlock — they just execute inline. Chunk boundaries are
  /// a pure function of (n, grain).
  void parallel_chunks(size_t n, size_t grain,
                       const std::function<void(size_t, size_t)>& body);

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  /// Convenience index-wise API on top of parallel_chunks; grain adapts to
  /// the pool width, so use it only for kernels whose output is positionally
  /// determined (disjoint writes), not for reductions.
  void parallel_for(size_t n, const std::function<void(size_t)>& fn);

  /// Deterministic parallel reduction: partials[c] = chunk_fn(begin_c, end_c)
  /// per fixed-size chunk, combined IN CHUNK ORDER on the calling thread.
  /// Chunk boundaries depend only on (n, grain): results are bit-identical
  /// for any pool width. Pass a grain fixed by problem size (kReduceGrain
  /// unless the caller knows better), never one derived from thread_count().
  template <typename T, typename ChunkFn, typename CombineFn>
  T parallel_reduce(size_t n, size_t grain, T identity, ChunkFn&& chunk_fn,
                    CombineFn&& combine) {
    if (n == 0) return identity;
    if (grain == 0) grain = 1;
    const size_t chunks = (n + grain - 1) / grain;
    std::vector<T> partials(chunks, identity);
    parallel_chunks(chunks, 1, [&](size_t cb, size_t ce) {
      for (size_t c = cb; c < ce; ++c) {
        size_t b = c * grain;
        size_t e = std::min(n, b + grain);
        partials[c] = chunk_fn(b, e);
      }
    });
    T acc = identity;
    for (T& p : partials) acc = combine(std::move(acc), p);
    return acc;
  }

  size_t thread_count() const { return workers_.size(); }

  /// Consistent-enough snapshot of the profiling counters (relaxed loads; the
  /// usual consumer reads after a batch completes, where all bumps are
  /// ordered by the batch's completion synchronization).
  PoolStats stats() const;

  /// Default reduction grain: 64Ki elements (~512 KiB of f64) keeps chunk
  /// bookkeeping negligible while giving hundreds of chunks on the paper's
  /// stack sizes. A problem-size constant, NOT thread-derived, on purpose.
  static constexpr size_t kReduceGrain = 64 * 1024;

 private:
  void worker_loop();
  void note_queue_depth(size_t depth);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;

  std::atomic<uint64_t> tasks_submitted_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> chunks_executed_{0};
  std::atomic<uint64_t> caller_chunks_{0};
  std::atomic<uint64_t> chunk_time_ns_{0};
  std::atomic<uint64_t> max_queue_depth_{0};
};

/// Process-wide data-plane pool (lazily constructed at hardware width). The
/// analysis functions and block codecs share it the way the paper's compute
/// functions share their one Polaris node.
ThreadPool& shared_pool();

}  // namespace pico::util

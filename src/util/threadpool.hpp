#pragma once
// Fixed-size thread pool. Used by the real-time (non-simulated) paths: the
// live directory watcher example and parallel data-plane analysis (per-frame
// detection fan-out), mirroring how the paper's compute functions exploit a
// whole Polaris node.
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace pico::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; returns a future for its completion.
  std::future<void> submit(std::function<void()> task);

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  void parallel_for(size_t n, const std::function<void(size_t)>& fn);

  size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace pico::util

#pragma once
// Read-only memory-mapped file for zero-copy EMD loads: the kernel pages
// bytes in on demand and the single traversal that touches them is the
// CRC-verify pass, instead of read()-into-vector + copy-per-dataset +
// CRC scan. Falls back to a heap read on platforms without mmap (mapped()
// reports which path was taken; the bytes() contract is identical).
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/result.hpp"

namespace pico::util {

class MappedFile {
 public:
  static Result<MappedFile> open(const std::string& path);

  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  std::span<const uint8_t> bytes() const {
    return {static_cast<const uint8_t*>(data_), size_};
  }
  size_t size() const { return size_; }
  /// True when the bytes live in an actual mapping (false: heap fallback).
  bool mapped() const { return mapped_; }

 private:
  void unmap();

  void* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
  std::vector<uint8_t> fallback_;  ///< owns the bytes when !mapped_
};

}  // namespace pico::util

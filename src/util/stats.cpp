#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/strings.hpp"

namespace pico::util {

void SampleStats::add(double x) {
  samples_.push_back(x);
  sorted_valid_ = false;
}

void SampleStats::add_all(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_valid_ = false;
}

void SampleStats::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double SampleStats::min() const {
  ensure_sorted();
  return sorted_.empty() ? 0.0 : sorted_.front();
}

double SampleStats::max() const {
  ensure_sorted();
  return sorted_.empty() ? 0.0 : sorted_.back();
}

double SampleStats::sum() const {
  double s = 0;
  for (double x : samples_) s += x;
  return s;
}

double SampleStats::mean() const {
  return samples_.empty() ? 0.0 : sum() / static_cast<double>(samples_.size());
}

double SampleStats::stddev() const {
  if (samples_.size() < 2) return 0.0;
  double m = mean();
  double acc = 0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double SampleStats::median() const { return percentile(50.0); }

double SampleStats::percentile(double p) const {
  ensure_sorted();
  if (sorted_.empty()) return 0.0;
  if (sorted_.size() == 1) return sorted_[0];
  p = std::clamp(p, 0.0, 100.0);
  double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, sorted_.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

Quantiles Quantiles::from(const SampleStats& s) {
  Quantiles q;
  q.p50 = s.percentile(50);
  q.p90 = s.percentile(90);
  q.p99 = s.percentile(99);
  q.count = s.count();
  return q;
}

std::string Quantiles::to_string() const {
  return format("p50=%.3f p90=%.3f p99=%.3f (n=%zu)", p50, p90, p99, count);
}

BoxStats BoxStats::from(const SampleStats& s) {
  BoxStats b;
  b.min = s.min();
  b.q1 = s.percentile(25);
  b.median = s.median();
  b.q3 = s.percentile(75);
  b.max = s.max();
  b.count = s.count();
  return b;
}

std::string BoxStats::to_string() const {
  return format("%.1f/%.1f/%.1f/%.1f/%.1f (n=%zu)", min, q1, median, q3, max,
                count);
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) x = lo_;
  double frac = (x - lo_) / (hi_ - lo_);
  size_t i = static_cast<size_t>(frac * static_cast<double>(counts_.size()));
  if (i >= counts_.size()) i = counts_.size() - 1;
  ++counts_[i];
}

double Histogram::bin_lo(size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(size_t i) const { return bin_lo(i + 1); }

std::string Histogram::render(size_t width) const {
  size_t peak = 0;
  for (size_t c : counts_) peak = std::max(peak, c);
  std::string out;
  for (size_t i = 0; i < counts_.size(); ++i) {
    size_t bar = peak == 0 ? 0 : counts_[i] * width / peak;
    out += format("[%8.1f, %8.1f) %6zu |", bin_lo(i), bin_hi(i), counts_[i]);
    out.append(bar, '#');
    out.push_back('\n');
  }
  return out;
}

}  // namespace pico::util

#include "util/threadpool.hpp"

#include <algorithm>
#include <atomic>

namespace pico::util {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> pt(std::move(task));
  auto fut = pt.get_future();
  {
    std::lock_guard lock(mu_);
    tasks_.push(std::move(pt));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  std::atomic<size_t> next{0};
  size_t lanes = std::min(n, thread_count());
  std::vector<std::future<void>> futs;
  futs.reserve(lanes);
  for (size_t lane = 0; lane < lanes; ++lane) {
    futs.push_back(submit([&] {
      while (true) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        fn(i);
      }
    }));
  }
  for (auto& f : futs) f.get();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace pico::util

#include "util/threadpool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>

namespace pico::util {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  auto promise = std::make_shared<std::promise<void>>();
  auto fut = promise->get_future();
  tasks_submitted_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard lock(mu_);
    tasks_.push([promise, task = std::move(task)]() mutable {
      try {
        task();
        promise->set_value();
      } catch (...) {
        promise->set_exception(std::current_exception());
      }
    });
    note_queue_depth(tasks_.size());
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::note_queue_depth(size_t depth) {
  uint64_t d = static_cast<uint64_t>(depth);
  uint64_t cur = max_queue_depth_.load(std::memory_order_relaxed);
  while (cur < d && !max_queue_depth_.compare_exchange_weak(
                        cur, d, std::memory_order_relaxed)) {
  }
}

PoolStats ThreadPool::stats() const {
  PoolStats s;
  s.tasks_submitted = tasks_submitted_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.chunks_executed = chunks_executed_.load(std::memory_order_relaxed);
  s.caller_chunks = caller_chunks_.load(std::memory_order_relaxed);
  s.chunk_time_ns = chunk_time_ns_.load(std::memory_order_relaxed);
  s.max_queue_depth = max_queue_depth_.load(std::memory_order_relaxed);
  return s;
}

namespace {

/// Shared state for one parallel_chunks call. Workers claim chunk ids with a
/// single atomic increment (no mutex, no per-chunk heap task); the last chunk
/// to finish wakes the caller.
struct Batch {
  size_t chunks = 0;
  size_t n = 0;
  size_t grain = 0;
  const std::function<void(size_t, size_t)>* body = nullptr;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  std::mutex mu;
  std::condition_variable cv;
  std::exception_ptr error;  // first failure wins
  // Pool profiling counters (owned by the ThreadPool, outlive the batch).
  std::atomic<uint64_t>* chunks_executed = nullptr;
  std::atomic<uint64_t>* caller_chunks = nullptr;
  std::atomic<uint64_t>* chunk_time_ns = nullptr;

  /// Claim-and-run until the chunk counter is exhausted.
  void drain(bool is_caller = false) {
    while (true) {
      size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      size_t begin = c * grain;
      size_t end = std::min(n, begin + grain);
      auto t0 = std::chrono::steady_clock::now();
      try {
        (*body)(begin, end);
      } catch (...) {
        std::lock_guard lock(mu);
        if (!error) error = std::current_exception();
      }
      auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
      chunk_time_ns->fetch_add(static_cast<uint64_t>(elapsed),
                               std::memory_order_relaxed);
      chunks_executed->fetch_add(1, std::memory_order_relaxed);
      if (is_caller) caller_chunks->fetch_add(1, std::memory_order_relaxed);
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == chunks) {
        std::lock_guard lock(mu);
        cv.notify_all();
      }
    }
  }
};

}  // namespace

void ThreadPool::parallel_chunks(
    size_t n, size_t grain, const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const size_t chunks = (n + grain - 1) / grain;
  batches_.fetch_add(1, std::memory_order_relaxed);
  if (chunks == 1) {
    auto t0 = std::chrono::steady_clock::now();
    body(0, n);
    auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    chunk_time_ns_.fetch_add(static_cast<uint64_t>(elapsed),
                             std::memory_order_relaxed);
    chunks_executed_.fetch_add(1, std::memory_order_relaxed);
    caller_chunks_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  auto batch = std::make_shared<Batch>();
  batch->chunks = chunks;
  batch->n = n;
  batch->grain = grain;
  batch->body = &body;
  batch->chunks_executed = &chunks_executed_;
  batch->caller_chunks = &caller_chunks_;
  batch->chunk_time_ns = &chunk_time_ns_;

  // One helper task per idle-able worker (bounded by chunk count, minus the
  // calling thread which participates below). All enqueued under one lock.
  size_t helpers = std::min(thread_count(), chunks - 1);
  {
    std::lock_guard lock(mu_);
    for (size_t i = 0; i < helpers; ++i) {
      tasks_.push([batch] { batch->drain(); });
    }
    note_queue_depth(tasks_.size());
  }
  cv_.notify_all();

  // The caller drains too: full progress even when every worker is busy
  // (e.g. nested parallelism from inside a worker runs inline).
  batch->drain(/*is_caller=*/true);

  {
    std::unique_lock lock(batch->mu);
    batch->cv.wait(lock, [&] {
      return batch->done.load(std::memory_order_acquire) == chunks;
    });
  }
  // Late helpers that wake after completion claim an out-of-range chunk and
  // exit touching only `batch` (kept alive by their shared_ptr) — `body` is
  // never dereferenced once all chunks are done, so returning here is safe.
  if (batch->error) std::rethrow_exception(batch->error);
}

void ThreadPool::parallel_for(size_t n, const std::function<void(size_t)>& fn) {
  // ~4 chunks per worker balances stragglers against dispatch overhead. The
  // index-wise API makes no cross-index accumulation, so a thread-dependent
  // grain cannot affect results.
  size_t grain = std::max<size_t>(1, n / (4 * thread_count()));
  parallel_chunks(n, grain, [&fn](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) fn(i);
  });
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

ThreadPool& shared_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace pico::util

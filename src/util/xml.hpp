#pragma once
// Minimal XML document model + parser/serializer: elements, attributes,
// text content, comments (skipped). Enough for the HMSA interchange format
// (an XML metadata file + binary blob pair) the paper lists as a supported
// alternative to EMD. Not a general XML implementation: no namespaces,
// DTDs, CDATA, or processing-instruction handling beyond the prolog.
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/result.hpp"

namespace pico::util {

struct XmlNode {
  std::string name;
  std::map<std::string, std::string> attrs;
  std::string text;  ///< concatenated character data directly inside this node
  std::vector<XmlNode> children;

  /// First child with the given element name; nullptr when absent.
  const XmlNode* child(const std::string& name) const;
  /// All children with the given element name.
  std::vector<const XmlNode*> children_named(const std::string& name) const;
  /// Attribute value or fallback.
  std::string attr(const std::string& key, const std::string& fallback = "") const;
  /// Text of a named child, or fallback.
  std::string child_text(const std::string& name,
                         const std::string& fallback = "") const;

  /// Get-or-create a child element (builder convenience).
  XmlNode& ensure_child(const std::string& name);
  /// Append a child with text content (builder convenience).
  XmlNode& add_child(const std::string& name, const std::string& text = "");
};

/// Serialize with a standard prolog and 2-space indentation.
std::string xml_serialize(const XmlNode& root);

/// Parse a document; returns the root element. Errors carry byte offsets.
Result<XmlNode> xml_parse(std::string_view text);

/// Escape character data / attribute values.
std::string xml_escape(std::string_view s);

}  // namespace pico::util

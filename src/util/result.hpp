#pragma once
// Result<T>: a lightweight expected-like type (std::expected is C++23; this
// project targets C++20). Carries either a value or an error message.
#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace pico::util {

/// Error payload for Result. A message plus an optional machine-readable code.
struct Error {
  std::string message;
  std::string code;  ///< e.g. "not_found", "io", "parse", "denied"

  static Error make(std::string msg, std::string code = "error") {
    return Error{std::move(msg), std::move(code)};
  }
};

/// Either a T or an Error. Use ok()/error() factories; check before access.
template <typename T>
class Result {
 public:
  static Result ok(T value) {
    Result r;
    r.value_ = std::move(value);
    return r;
  }
  static Result err(std::string message, std::string code = "error") {
    Result r;
    r.error_ = Error{std::move(message), std::move(code)};
    return r;
  }
  static Result err(Error e) {
    Result r;
    r.error_ = std::move(e);
    return r;
  }

  bool has_value() const { return value_.has_value(); }
  explicit operator bool() const { return has_value(); }

  /// Value access. Precondition: has_value().
  T& value() & {
    assert(has_value());
    return *value_;
  }
  const T& value() const& {
    assert(has_value());
    return *value_;
  }
  T&& value() && {
    assert(has_value());
    return std::move(*value_);
  }
  T value_or(T fallback) const {
    return has_value() ? *value_ : std::move(fallback);
  }

  /// Error access. Precondition: !has_value().
  const Error& error() const {
    assert(!has_value());
    return *error_;
  }

 private:
  Result() = default;
  std::optional<T> value_;
  std::optional<Error> error_;
};

/// Result specialization for operations with no payload.
class Status {
 public:
  static Status ok() { return Status{}; }
  static Status err(std::string message, std::string code = "error") {
    Status s;
    s.error_ = Error{std::move(message), std::move(code)};
    return s;
  }
  static Status err(Error e) {
    Status s;
    s.error_ = std::move(e);
    return s;
  }

  bool is_ok() const { return !error_.has_value(); }
  explicit operator bool() const { return is_ok(); }
  const Error& error() const {
    assert(!is_ok());
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

}  // namespace pico::util

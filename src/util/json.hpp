#pragma once
// A small, dependency-free JSON value type with full parse/serialize support.
// Used throughout PicoFlow for experiment metadata (DataCite-style records),
// flow action parameters, compute function arguments/results, and search
// documents — the same roles JSON plays in the paper's Globus-based stack.
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "util/result.hpp"

namespace pico::util {

class Json;

using JsonArray = std::vector<Json>;
// std::map keeps keys ordered, which makes serialized output deterministic —
// important for checksum-stable metadata records and golden tests.
using JsonObject = std::map<std::string, Json>;

/// JSON value: null, bool, number (double or int64), string, array, object.
/// Integers are preserved exactly (separate i64 alternative) so dataset byte
/// counts survive round-trips.
class Json {
 public:
  enum class Type { Null, Bool, Int, Double, String, Array, Object };

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(int v) : value_(static_cast<int64_t>(v)) {}
  Json(unsigned v) : value_(static_cast<int64_t>(v)) {}
  Json(long v) : value_(static_cast<int64_t>(v)) {}
  Json(long long v) : value_(static_cast<int64_t>(v)) {}
  Json(unsigned long v) : value_(static_cast<int64_t>(v)) {}
  Json(unsigned long long v) : value_(static_cast<int64_t>(v)) {}
  Json(double v) : value_(v) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(std::string_view s) : value_(std::string(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  /// Build an object from key/value pairs: Json::object({{"a", 1}, ...}).
  static Json object(std::initializer_list<std::pair<const std::string, Json>> init = {}) {
    return Json(JsonObject(init));
  }
  /// Build an array from values: Json::array({1, "two", 3.0}).
  static Json array(std::initializer_list<Json> init = {}) {
    return Json(JsonArray(init));
  }

  Type type() const {
    switch (value_.index()) {
      case 0: return Type::Null;
      case 1: return Type::Bool;
      case 2: return Type::Int;
      case 3: return Type::Double;
      case 4: return Type::String;
      case 5: return Type::Array;
      default: return Type::Object;
    }
  }

  bool is_null() const { return type() == Type::Null; }
  bool is_bool() const { return type() == Type::Bool; }
  bool is_int() const { return type() == Type::Int; }
  bool is_double() const { return type() == Type::Double; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type() == Type::String; }
  bool is_array() const { return type() == Type::Array; }
  bool is_object() const { return type() == Type::Object; }

  /// Typed accessors; defaults returned on type mismatch keep call sites terse.
  bool as_bool(bool fallback = false) const;
  int64_t as_int(int64_t fallback = 0) const;
  double as_double(double fallback = 0.0) const;
  const std::string& as_string() const;  ///< empty string on mismatch
  std::string as_string(const std::string& fallback) const;

  /// Array/object access; return static empties on mismatch.
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;
  JsonArray& mutable_array();    ///< converts to array if not one
  JsonObject& mutable_object();  ///< converts to object if not one

  /// Object field lookup; returns null Json if absent or not an object.
  const Json& at(const std::string& key) const;
  bool contains(const std::string& key) const;
  /// Path lookup: at_path("a.b.c") walks nested objects.
  const Json& at_path(std::string_view dotted_path) const;

  /// Object field write access (creates object/keys as needed).
  Json& operator[](const std::string& key);
  /// Array element access (no bounds growth).
  const Json& operator[](size_t i) const;

  size_t size() const;  ///< array/object element count, else 0

  /// Append to array (converts to array if needed).
  void push_back(Json v);

  bool operator==(const Json& other) const { return value_ == other.value_; }

  /// Serialize. indent < 0 gives compact single-line output.
  std::string dump(int indent = -1) const;

  /// Parse a complete JSON document. Trailing garbage is an error.
  static Result<Json> parse(std::string_view text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;
  std::variant<std::nullptr_t, bool, int64_t, double, std::string, JsonArray,
               JsonObject>
      value_;
};

}  // namespace pico::util

#pragma once
// Byte, rate and time unit constants + parsing. Decimal (SI) units, matching
// how the paper reports sizes (MB) and link speeds (Gbps).
#include <cstdint>
#include <string_view>

#include "util/result.hpp"

namespace pico::util {

inline constexpr int64_t kKB = 1000;
inline constexpr int64_t kMB = 1000 * kKB;
inline constexpr int64_t kGB = 1000 * kMB;
inline constexpr int64_t kTB = 1000 * kGB;
inline constexpr int64_t kPB = 1000 * kTB;

/// Bits-per-second helpers for link capacities.
inline constexpr double kKbps = 1e3;
inline constexpr double kMbps = 1e6;
inline constexpr double kGbps = 1e9;

/// Convert a bits-per-second rate to bytes-per-second.
inline constexpr double bps_to_Bps(double bps) { return bps / 8.0; }

/// Parse sizes like "91MB", "1.2 GB", "64KB", "123" (bytes).
Result<int64_t> parse_bytes(std::string_view text);

/// Parse rates like "1Gbps", "200 Gbps", "65GB/s" into bits per second.
Result<double> parse_rate_bps(std::string_view text);

}  // namespace pico::util

#include "util/log.hpp"

#include <cstdarg>
#include <cstdio>
#include <mutex>

namespace pico::util {
namespace {

struct GlobalLogState {
  std::mutex mu;
  LogLevel level = LogLevel::Warn;  // quiet by default; benches/examples raise it
  std::function<void(LogLevel, std::string_view, std::string_view)> sink;
  std::function<std::string()> clock;
};

GlobalLogState& state() {
  static GlobalLogState s;
  return s;
}

}  // namespace

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

void LogConfig::set_level(LogLevel level) {
  std::lock_guard lock(state().mu);
  state().level = level;
}

LogLevel LogConfig::level() {
  std::lock_guard lock(state().mu);
  return state().level;
}

void LogConfig::set_sink(
    std::function<void(LogLevel, std::string_view, std::string_view)> sink) {
  std::lock_guard lock(state().mu);
  state().sink = std::move(sink);
}

void LogConfig::set_clock(std::function<std::string()> clock) {
  std::lock_guard lock(state().mu);
  state().clock = std::move(clock);
}

void Logger::emit(LogLevel level, const char* fmt, va_list args) const {
  std::string msg;
  {
    va_list copy;
    va_copy(copy, args);
    int n = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (n > 0) {
      msg.resize(static_cast<size_t>(n));
      std::vsnprintf(msg.data(), msg.size() + 1, fmt, args);
    }
  }
  std::function<void(LogLevel, std::string_view, std::string_view)> sink;
  std::string stamp;
  {
    std::lock_guard lock(state().mu);
    sink = state().sink;
    if (state().clock) stamp = state().clock();
  }
  if (sink) {
    sink(level, component_, msg);
  } else {
    std::fprintf(stderr, "[%s]%s%s [%s] %s\n",
                 std::string(log_level_name(level)).c_str(),
                 stamp.empty() ? "" : " ", stamp.c_str(), component_.c_str(),
                 msg.c_str());
  }
}

#define PICO_LOG_IMPL(method, level_enum)                      \
  void Logger::method(const char* fmt, ...) const {           \
    if (LogConfig::level() > level_enum) return;               \
    va_list args;                                              \
    va_start(args, fmt);                                       \
    emit(level_enum, fmt, args);                               \
    va_end(args);                                              \
  }

PICO_LOG_IMPL(trace, LogLevel::Trace)
PICO_LOG_IMPL(debug, LogLevel::Debug)
PICO_LOG_IMPL(info, LogLevel::Info)
PICO_LOG_IMPL(warn, LogLevel::Warn)
PICO_LOG_IMPL(error, LogLevel::Error)

#undef PICO_LOG_IMPL

}  // namespace pico::util

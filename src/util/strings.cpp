#include "util/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace pico::util {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i) out += sep;
    out += items[i];
  }
  return out;
}

std::string to_hex(const uint8_t* data, size_t n) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(n * 2);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(kDigits[data[i] >> 4]);
    out.push_back(kDigits[data[i] & 0xF]);
  }
  return out;
}

std::string to_hex_u64(uint64_t v) {
  uint8_t bytes[8];
  for (int i = 7; i >= 0; --i) {
    bytes[i] = static_cast<uint8_t>(v & 0xFF);
    v >>= 8;
  }
  return to_hex(bytes, 8);
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

std::string human_bytes(double bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  int unit = 0;
  while (bytes >= 1000.0 && unit < 5) {
    bytes /= 1000.0;
    ++unit;
  }
  return format(unit == 0 ? "%.0f %s" : "%.2f %s", bytes, kUnits[unit]);
}

std::string replace_all(std::string s, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return s;
  size_t pos = 0;
  while ((pos = s.find(from, pos)) != std::string::npos) {
    s.replace(pos, from.size(), to);
    pos += to.size();
  }
  return s;
}

std::string html_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&#39;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace pico::util

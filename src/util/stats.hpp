#pragma once
// Descriptive statistics used by the campaign reporter (Table 1, Fig. 4):
// min / mean / max / median / percentiles / quartile box stats.
#include <cstddef>
#include <string>
#include <vector>

namespace pico::util {

/// Accumulates samples and answers order statistics. Samples are kept (the
/// campaign scales are small: tens to thousands of flows), so exact
/// percentiles are available.
class SampleStats {
 public:
  void add(double x);
  void add_all(const std::vector<double>& xs);

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double min() const;
  double max() const;
  double mean() const;
  double sum() const;
  double stddev() const;  ///< sample standard deviation (n-1)
  double median() const;
  /// Exact percentile via linear interpolation, p in [0, 100].
  double percentile(double p) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;
  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Tail-quantile triple shared by the campaign reporter and the telemetry
/// histograms: one vocabulary (p50/p90/p99) whether the source is an exact
/// sample set or a bucketed estimate.
struct Quantiles {
  double p50 = 0, p90 = 0, p99 = 0;
  size_t count = 0;
  static Quantiles from(const SampleStats& s);
  std::string to_string() const;  ///< "p50=.. p90=.. p99=.. (n=..)"
};

/// Five-number summary for box plots (Fig. 4 style).
struct BoxStats {
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0;
  size_t count = 0;
  static BoxStats from(const SampleStats& s);
  std::string to_string() const;  ///< "min/q1/med/q3/max (n=..)"
};

/// Fixed-width histogram for distribution summaries in bench output.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t bins);
  void add(double x);
  size_t bin_count() const { return counts_.size(); }
  size_t count_in_bin(size_t i) const { return counts_.at(i); }
  double bin_lo(size_t i) const;
  double bin_hi(size_t i) const;
  size_t total() const { return total_; }
  /// Render as ASCII bars, `width` characters at the widest bin.
  std::string render(size_t width = 40) const;

 private:
  double lo_, hi_;
  std::vector<size_t> counts_;
  size_t total_ = 0;
};

}  // namespace pico::util

#include "util/rng.hpp"

#include <cassert>
#include <cmath>

namespace pico::util {
namespace {

inline uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64: seeds the xoshiro state from a single 64-bit value.
uint64_t splitmix64(uint64_t& x) {
  uint64_t z = (x += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

uint64_t Rng::next_u64() {
  const uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

int64_t Rng::uniform_int(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(next_u64());  // full range
  // Rejection sampling to remove modulo bias.
  uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return lo + static_cast<int64_t>(v % span);
}

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1, u2;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  u2 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double rate) {
  assert(rate > 0);
  double u;
  do {
    u = uniform();
  } while (u <= 1e-300);
  return -std::log(u) / rate;
}

int64_t Rng::poisson(double lambda) {
  assert(lambda >= 0);
  if (lambda <= 0) return 0;
  if (lambda < 30.0) {
    double l = std::exp(-lambda);
    int64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > l);
    return k - 1;
  }
  // Normal approximation with continuity correction, clamped at zero.
  double v = normal(lambda, std::sqrt(lambda));
  return v < 0.0 ? 0 : static_cast<int64_t>(v + 0.5);
}

bool Rng::chance(double p) { return uniform() < p; }

size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) total += w;
  if (total <= 0 || weights.empty()) return 0;
  double target = uniform() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace pico::util

#pragma once
// Opaque identifier generation for tasks, flows, documents. IDs are derived
// from a deterministic per-process counter plus a seedable stream so that
// simulated campaigns produce stable IDs run-to-run.
#include <cstdint>
#include <string>

namespace pico::util {

/// Deterministic ID factory: "<prefix>-<8 hex chars>-<counter>".
class IdGen {
 public:
  explicit IdGen(uint64_t seed = 0xA11CE5ull);
  std::string next(const std::string& prefix);
  uint64_t next_numeric();

 private:
  uint64_t stream_;
  uint64_t counter_ = 0;
};

}  // namespace pico::util

#pragma once
// Time formatting for simulation timestamps. The campaign reports render
// virtual times as ISO-8601 strings anchored at a configurable epoch so the
// search index and portal can facet experiments "by time and date" exactly as
// the paper's DGPF deployment does.
#include <cstdint>
#include <string>

namespace pico::util {

/// Seconds→"HH:MM:SS.mmm" (durations).
std::string format_duration(double seconds);

/// Unix epoch seconds → "YYYY-MM-DDTHH:MM:SSZ" (UTC, ISO-8601).
std::string format_iso8601(int64_t unix_seconds);

/// Parse "YYYY-MM-DDTHH:MM:SSZ" (or without Z) into Unix seconds.
/// Returns false on malformed input.
bool parse_iso8601(const std::string& text, int64_t* unix_seconds);

/// Extract the date prefix "YYYY-MM-DD" from an ISO-8601 string.
std::string iso_date_prefix(const std::string& iso);

}  // namespace pico::util

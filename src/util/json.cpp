#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace pico::util {
namespace {

const Json& null_json() {
  static const Json kNull;
  return kNull;
}
const std::string& empty_string() {
  static const std::string kEmpty;
  return kEmpty;
}
const JsonArray& empty_array() {
  static const JsonArray kEmpty;
  return kEmpty;
}
const JsonObject& empty_object() {
  static const JsonObject kEmpty;
  return kEmpty;
}

void escape_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
}

// Recursive-descent parser over a string_view with position tracking.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> parse_document() {
    skip_ws();
    auto v = parse_value();
    if (!v) return v;
    skip_ws();
    if (pos_ != text_.size()) {
      return Result<Json>::err(
          "trailing characters at offset " + std::to_string(pos_), "parse");
    }
    return v;
  }

 private:
  Result<Json> fail(const std::string& what) {
    return Result<Json>::err(what + " at offset " + std::to_string(pos_),
                             "parse");
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  bool consume(char c) {
    if (!eof() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Result<Json> parse_value() {
    if (eof()) return fail("unexpected end of input");
    char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        auto s = parse_string();
        if (!s) return Result<Json>::err(s.error());
        return Result<Json>::ok(Json(std::move(s).value()));
      }
      case 't':
        if (consume_literal("true")) return Result<Json>::ok(Json(true));
        return fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Result<Json>::ok(Json(false));
        return fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Result<Json>::ok(Json(nullptr));
        return fail("invalid literal");
      default:
        return parse_number();
    }
  }

  Result<std::string> parse_string() {
    if (!consume('"')) {
      return Result<std::string>::err(
          "expected string at offset " + std::to_string(pos_), "parse");
    }
    std::string out;
    while (true) {
      if (eof()) {
        return Result<std::string>::err("unterminated string", "parse");
      }
      char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (eof()) {
          return Result<std::string>::err("unterminated escape", "parse");
        }
        char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return Result<std::string>::err("bad \\u escape", "parse");
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return Result<std::string>::err("bad \\u escape", "parse");
            }
            // UTF-8 encode the BMP code point (surrogate pairs are passed
            // through as two 3-byte sequences, adequate for metadata text).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Result<std::string>::err("bad escape character", "parse");
        }
      } else {
        out.push_back(c);
      }
    }
    return Result<std::string>::ok(std::move(out));
  }

  Result<Json> parse_number() {
    size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    bool is_double = false;
    while (!eof()) {
      char c = peek();
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        if (c == '.' || c == 'e' || c == 'E') is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return fail("expected value");
    std::string tok(text_.substr(start, pos_ - start));
    errno = 0;
    if (!is_double) {
      char* end = nullptr;
      long long v = std::strtoll(tok.c_str(), &end, 10);
      if (errno == 0 && end == tok.c_str() + tok.size()) {
        return Result<Json>::ok(Json(static_cast<int64_t>(v)));
      }
      // fall through to double on overflow
    }
    char* end = nullptr;
    double d = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) {
      pos_ = start;
      return fail("malformed number");
    }
    return Result<Json>::ok(Json(d));
  }

  Result<Json> parse_array() {
    consume('[');
    JsonArray out;
    skip_ws();
    if (consume(']')) return Result<Json>::ok(Json(std::move(out)));
    while (true) {
      skip_ws();
      auto v = parse_value();
      if (!v) return v;
      out.push_back(std::move(v).value());
      skip_ws();
      if (consume(']')) break;
      if (!consume(',')) return fail("expected ',' or ']'");
    }
    return Result<Json>::ok(Json(std::move(out)));
  }

  Result<Json> parse_object() {
    consume('{');
    JsonObject out;
    skip_ws();
    if (consume('}')) return Result<Json>::ok(Json(std::move(out)));
    while (true) {
      skip_ws();
      auto key = parse_string();
      if (!key) return Result<Json>::err(key.error());
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      skip_ws();
      auto v = parse_value();
      if (!v) return v;
      out[std::move(key).value()] = std::move(v).value();
      skip_ws();
      if (consume('}')) break;
      if (!consume(',')) return fail("expected ',' or '}'");
    }
    return Result<Json>::ok(Json(std::move(out)));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

bool Json::as_bool(bool fallback) const {
  if (auto* b = std::get_if<bool>(&value_)) return *b;
  return fallback;
}

int64_t Json::as_int(int64_t fallback) const {
  if (auto* i = std::get_if<int64_t>(&value_)) return *i;
  if (auto* d = std::get_if<double>(&value_)) return static_cast<int64_t>(*d);
  return fallback;
}

double Json::as_double(double fallback) const {
  if (auto* d = std::get_if<double>(&value_)) return *d;
  if (auto* i = std::get_if<int64_t>(&value_)) return static_cast<double>(*i);
  return fallback;
}

const std::string& Json::as_string() const {
  if (auto* s = std::get_if<std::string>(&value_)) return *s;
  return empty_string();
}

std::string Json::as_string(const std::string& fallback) const {
  if (auto* s = std::get_if<std::string>(&value_)) return *s;
  return fallback;
}

const JsonArray& Json::as_array() const {
  if (auto* a = std::get_if<JsonArray>(&value_)) return *a;
  return empty_array();
}

const JsonObject& Json::as_object() const {
  if (auto* o = std::get_if<JsonObject>(&value_)) return *o;
  return empty_object();
}

JsonArray& Json::mutable_array() {
  if (!std::holds_alternative<JsonArray>(value_)) value_ = JsonArray{};
  return std::get<JsonArray>(value_);
}

JsonObject& Json::mutable_object() {
  if (!std::holds_alternative<JsonObject>(value_)) value_ = JsonObject{};
  return std::get<JsonObject>(value_);
}

const Json& Json::at(const std::string& key) const {
  if (auto* o = std::get_if<JsonObject>(&value_)) {
    auto it = o->find(key);
    if (it != o->end()) return it->second;
  }
  return null_json();
}

bool Json::contains(const std::string& key) const {
  if (auto* o = std::get_if<JsonObject>(&value_)) return o->count(key) > 0;
  return false;
}

const Json& Json::at_path(std::string_view dotted_path) const {
  const Json* cur = this;
  size_t start = 0;
  while (start <= dotted_path.size()) {
    size_t pos = dotted_path.find('.', start);
    std::string key(dotted_path.substr(
        start, pos == std::string_view::npos ? std::string_view::npos
                                             : pos - start));
    cur = &cur->at(key);
    if (pos == std::string_view::npos) break;
    start = pos + 1;
  }
  return *cur;
}

Json& Json::operator[](const std::string& key) {
  return mutable_object()[key];
}

const Json& Json::operator[](size_t i) const {
  const auto& a = as_array();
  if (i < a.size()) return a[i];
  return null_json();
}

size_t Json::size() const {
  if (auto* a = std::get_if<JsonArray>(&value_)) return a->size();
  if (auto* o = std::get_if<JsonObject>(&value_)) return o->size();
  return 0;
}

void Json::push_back(Json v) { mutable_array().push_back(std::move(v)); }

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent >= 0) {
      out.push_back('\n');
      out.append(static_cast<size_t>(indent * d), ' ');
    }
  };
  switch (type()) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += std::get<bool>(value_) ? "true" : "false"; break;
    case Type::Int: out += std::to_string(std::get<int64_t>(value_)); break;
    case Type::Double: {
      double d = std::get<double>(value_);
      if (std::isnan(d) || std::isinf(d)) {
        out += "null";  // JSON has no NaN/Inf; degrade gracefully
      } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", d);
        out += buf;
      }
      break;
    }
    case Type::String: escape_string(out, std::get<std::string>(value_)); break;
    case Type::Array: {
      const auto& a = std::get<JsonArray>(value_);
      if (a.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (size_t i = 0; i < a.size(); ++i) {
        if (i) out.push_back(',');
        newline(depth + 1);
        a[i].dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out.push_back(']');
      break;
    }
    case Type::Object: {
      const auto& o = std::get<JsonObject>(value_);
      if (o.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      bool first = true;
      for (const auto& [k, v] : o) {
        if (!first) out.push_back(',');
        first = false;
        newline(depth + 1);
        escape_string(out, k);
        out.push_back(':');
        if (indent >= 0) out.push_back(' ');
        v.dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out.push_back('}');
      break;
    }
  }
}

Result<Json> Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace pico::util

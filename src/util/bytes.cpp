#include "util/bytes.hpp"

#include <cstdio>
#include <filesystem>

namespace pico::util {

void ByteWriter::varint(uint64_t v) {
  while (v >= 0x80) {
    out_->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out_->push_back(static_cast<uint8_t>(v));
}

void ByteWriter::svarint(int64_t v) {
  varint((static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63));
}

void ByteWriter::str(std::string_view s) {
  varint(s.size());
  bytes(s.data(), s.size());
}

void ByteWriter::bytes(const void* data, size_t n) {
  const auto* b = static_cast<const uint8_t*>(data);
  out_->insert(out_->end(), b, b + n);
}

void ByteWriter::patch_u64(size_t offset, uint64_t v) {
  if (offset + 8 > out_->size()) return;
  std::memcpy(out_->data() + offset, &v, 8);
}

bool ByteReader::varint(uint64_t* v) {
  uint64_t result = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= size_ || shift > 63) return false;
    uint8_t b = data_[pos_++];
    result |= static_cast<uint64_t>(b & 0x7F) << shift;
    if (!(b & 0x80)) break;
    shift += 7;
  }
  *v = result;
  return true;
}

bool ByteReader::svarint(int64_t* v) {
  uint64_t raw;
  if (!varint(&raw)) return false;
  *v = static_cast<int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
  return true;
}

bool ByteReader::str(std::string* s) {
  uint64_t n;
  if (!varint(&n)) return false;
  if (size_ - pos_ < n) return false;
  s->assign(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return true;
}

bool ByteReader::bytes(std::vector<uint8_t>* out, size_t n) {
  if (size_ - pos_ < n) return false;
  out->assign(data_ + pos_, data_ + pos_ + n);
  pos_ += n;
  return true;
}

bool ByteReader::view(const uint8_t** p, size_t n) {
  if (size_ - pos_ < n) return false;
  *p = data_ + pos_;
  pos_ += n;
  return true;
}

bool ByteReader::skip(size_t n) {
  if (size_ - pos_ < n) return false;
  pos_ += n;
  return true;
}

bool ByteReader::seek(size_t abs_offset) {
  if (abs_offset > size_) return false;
  pos_ = abs_offset;
  return true;
}

Result<std::vector<uint8_t>> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    return Result<std::vector<uint8_t>>::err("cannot open " + path, "io");
  }
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> data(size > 0 ? static_cast<size_t>(size) : 0);
  if (!data.empty() && std::fread(data.data(), 1, data.size(), f) != data.size()) {
    std::fclose(f);
    return Result<std::vector<uint8_t>>::err("short read on " + path, "io");
  }
  std::fclose(f);
  return Result<std::vector<uint8_t>>::ok(std::move(data));
}

Status write_file(const std::string& path, const void* data, size_t n) {
  std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return Status::err("cannot open " + path + " for write", "io");
  if (n > 0 && std::fwrite(data, 1, n, f) != n) {
    std::fclose(f);
    return Status::err("short write on " + path, "io");
  }
  std::fclose(f);
  return Status::ok();
}

Status write_file(const std::string& path, const std::vector<uint8_t>& data) {
  return write_file(path, data.data(), data.size());
}

Status write_file(const std::string& path, std::string_view text) {
  return write_file(path, text.data(), text.size());
}

}  // namespace pico::util

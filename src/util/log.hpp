#pragma once
// Leveled logger. Components log through a named Logger; the global sink can
// be silenced (tests), redirected, or stamped with simulation time.
#include <functional>
#include <string>
#include <string_view>

namespace pico::util {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

std::string_view log_level_name(LogLevel level);

/// Global log configuration.
struct LogConfig {
  /// Messages below this level are dropped.
  static void set_level(LogLevel level);
  static LogLevel level();
  /// Replace the sink (default writes to stderr). Pass nullptr to restore.
  static void set_sink(std::function<void(LogLevel, std::string_view component,
                                          std::string_view message)>
                           sink);
  /// Optional clock rendered in front of each message (e.g. sim time).
  static void set_clock(std::function<std::string()> clock);
};

/// Named logging facade: Logger("transfer").info("task %s done", id).
class Logger {
 public:
  explicit Logger(std::string component) : component_(std::move(component)) {}

  void trace(const char* fmt, ...) const __attribute__((format(printf, 2, 3)));
  void debug(const char* fmt, ...) const __attribute__((format(printf, 2, 3)));
  void info(const char* fmt, ...) const __attribute__((format(printf, 2, 3)));
  void warn(const char* fmt, ...) const __attribute__((format(printf, 2, 3)));
  void error(const char* fmt, ...) const __attribute__((format(printf, 2, 3)));

  const std::string& component() const { return component_; }

 private:
  void emit(LogLevel level, const char* fmt, va_list args) const;
  std::string component_;
};

}  // namespace pico::util

#include "util/crc64.hpp"

#include <array>

namespace pico::util {
namespace {

// ECMA-182 polynomial, reflected form.
constexpr uint64_t kPoly = 0xC96C5795D7870F42ull;

std::array<uint64_t, 256> build_table() {
  std::array<uint64_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint64_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint64_t, 256>& table() {
  static const auto kTable = build_table();
  return kTable;
}

}  // namespace

void Crc64::update(const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  const auto& t = table();
  uint64_t crc = state_;
  for (size_t i = 0; i < n; ++i) {
    crc = t[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  state_ = crc;
}

uint64_t crc64(const void* data, size_t n) {
  Crc64 c;
  c.update(data, n);
  return c.value();
}

uint64_t crc64(std::string_view s) { return crc64(s.data(), s.size()); }

uint64_t crc64(const std::vector<uint8_t>& v) {
  return crc64(v.data(), v.size());
}

}  // namespace pico::util

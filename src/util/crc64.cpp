#include "util/crc64.hpp"

#include <array>
#include <cstring>

namespace pico::util {
namespace {

// ECMA-182 polynomial, reflected form (CRC-64/XZ parameters: init ~0,
// reflected in/out, xorout ~0; check("123456789") = 0x995DC9BBDF1939FA).
constexpr uint64_t kPoly = 0xC96C5795D7870F42ull;

// Slicing-by-8: table[0] is the classic byte-at-a-time table; table[j][b]
// advances a byte seen j positions earlier through j extra zero bytes, so
// eight table lookups retire eight input bytes per iteration.
using Tables = std::array<std::array<uint64_t, 256>, 8>;

Tables build_tables() {
  Tables t{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint64_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    t[0][i] = crc;
  }
  for (size_t j = 1; j < 8; ++j) {
    for (uint32_t i = 0; i < 256; ++i) {
      uint64_t crc = t[j - 1][i];
      t[j][i] = t[0][crc & 0xFF] ^ (crc >> 8);
    }
  }
  return t;
}

const Tables& tables() {
  static const auto kTables = build_tables();
  return kTables;
}

inline uint64_t load_le64(const uint8_t* p) {
  // Bytewise assembly is endian-portable; compilers lower it to one load on
  // little-endian targets.
  return static_cast<uint64_t>(p[0]) | (static_cast<uint64_t>(p[1]) << 8) |
         (static_cast<uint64_t>(p[2]) << 16) |
         (static_cast<uint64_t>(p[3]) << 24) |
         (static_cast<uint64_t>(p[4]) << 32) |
         (static_cast<uint64_t>(p[5]) << 40) |
         (static_cast<uint64_t>(p[6]) << 48) |
         (static_cast<uint64_t>(p[7]) << 56);
}

}  // namespace

void Crc64::update(const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  const auto& t = tables();
  uint64_t crc = state_;
  while (n >= 8) {
    uint64_t x = crc ^ load_le64(p);
    crc = t[7][x & 0xFF] ^ t[6][(x >> 8) & 0xFF] ^ t[5][(x >> 16) & 0xFF] ^
          t[4][(x >> 24) & 0xFF] ^ t[3][(x >> 32) & 0xFF] ^
          t[2][(x >> 40) & 0xFF] ^ t[1][(x >> 48) & 0xFF] ^ t[0][x >> 56];
    p += 8;
    n -= 8;
  }
  for (size_t i = 0; i < n; ++i) {
    crc = t[0][(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  state_ = crc;
}

void Crc64::update_copy(void* dst, const void* src, size_t n) {
  const auto* p = static_cast<const uint8_t*>(src);
  auto* q = static_cast<uint8_t*>(dst);
  const auto& t = tables();
  uint64_t crc = state_;
  while (n >= 8) {
    const uint64_t word = load_le64(p);
    std::memcpy(q, p, 8);  // single 8-byte store on LE targets
    const uint64_t x = crc ^ word;
    crc = t[7][x & 0xFF] ^ t[6][(x >> 8) & 0xFF] ^ t[5][(x >> 16) & 0xFF] ^
          t[4][(x >> 24) & 0xFF] ^ t[3][(x >> 32) & 0xFF] ^
          t[2][(x >> 40) & 0xFF] ^ t[1][(x >> 48) & 0xFF] ^ t[0][x >> 56];
    p += 8;
    q += 8;
    n -= 8;
  }
  for (size_t i = 0; i < n; ++i) {
    q[i] = p[i];
    crc = t[0][(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  state_ = crc;
}

uint64_t crc64_copy(void* dst, const void* src, size_t n) {
  Crc64 c;
  c.update_copy(dst, src, n);
  return c.value();
}

uint64_t crc64(const void* data, size_t n) {
  Crc64 c;
  c.update(data, n);
  return c.value();
}

uint64_t crc64(std::string_view s) { return crc64(s.data(), s.size()); }

uint64_t crc64(const std::vector<uint8_t>& v) {
  return crc64(v.data(), v.size());
}

uint64_t crc64_bytewise(const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  const auto& t = tables();
  uint64_t crc = ~0ull;
  for (size_t i = 0; i < n; ++i) {
    crc = t[0][(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace pico::util

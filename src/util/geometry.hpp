#pragma once
// Axis-aligned boxes shared by the instrument simulator (ground-truth
// nanoparticle positions) and the vision pipeline (detections, IoU matching,
// mAP evaluation).
#include <algorithm>
#include <cmath>

namespace pico::util {

/// Axis-aligned box: top-left origin (x, y), extent (w, h), pixel units.
struct Box {
  double x = 0, y = 0, w = 0, h = 0;

  double area() const { return std::max(0.0, w) * std::max(0.0, h); }
  double cx() const { return x + w / 2; }
  double cy() const { return y + h / 2; }
  double x2() const { return x + w; }
  double y2() const { return y + h; }

  bool contains(double px, double py) const {
    return px >= x && px < x2() && py >= y && py < y2();
  }

  friend bool operator==(const Box& a, const Box& b) {
    return a.x == b.x && a.y == b.y && a.w == b.w && a.h == b.h;
  }
};

/// Intersection-over-union of two boxes, in [0, 1].
inline double iou(const Box& a, const Box& b) {
  double ix = std::max(a.x, b.x);
  double iy = std::max(a.y, b.y);
  double ix2 = std::min(a.x2(), b.x2());
  double iy2 = std::min(a.y2(), b.y2());
  double iw = std::max(0.0, ix2 - ix);
  double ih = std::max(0.0, iy2 - iy);
  double inter = iw * ih;
  double uni = a.area() + b.area() - inter;
  return uni <= 0 ? 0.0 : inter / uni;
}

/// Clip a box to the [0,0,width,height] viewport.
inline Box clip(const Box& b, double width, double height) {
  double x1 = std::clamp(b.x, 0.0, width);
  double y1 = std::clamp(b.y, 0.0, height);
  double x2 = std::clamp(b.x2(), 0.0, width);
  double y2 = std::clamp(b.y2(), 0.0, height);
  return Box{x1, y1, x2 - x1, y2 - y1};
}

}  // namespace pico::util

#pragma once
// Arena + buffer pool backing the zero-copy chunk path.
//
// Arena is a bump allocator for short-lived scratch (codec transpose
// buffers, per-block compression staging): allocations are O(1) pointer
// bumps, individually un-freeable, and all reclaimed at once by reset(),
// which retains the underlying blocks so steady-state use never touches
// malloc. Not thread-safe — one arena per thread (thread_local) or per
// single-threaded pipeline stage.
//
// BufferPool recycles whole chunk/frame buffers between uses through
// size-class free lists. acquire(n) returns a move-only RAII Lease whose
// destructor gives the buffer back; wrap a Lease in a shared_ptr when
// several frames alias one payload. Thread-safe. Ownership contract: the
// Lease (or its shared_ptr wrapper) is the single owner — consumers hold
// spans into it and must not outlive it, which the FrameChannel/transfer
// call graphs guarantee by construction (frames are dropped before their
// channel, landings complete before the service resets).
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

namespace pico::util {

class Arena {
 public:
  /// block_bytes: granularity of the backing slabs (default 1 MiB).
  explicit Arena(size_t block_bytes = 1 << 20) : block_bytes_(block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Cache-line-aligned by default. Requests larger than the slab size get
  /// a dedicated slab. Never returns nullptr (n == 0 yields a valid,
  /// unusable pointer).
  void* allocate(size_t n, size_t align = 64);

  uint8_t* allocate_bytes(size_t n) {
    return static_cast<uint8_t*>(allocate(n, 64));
  }
  std::span<uint8_t> allocate_span(size_t n) {
    return {allocate_bytes(n), n};
  }

  /// Drops every allocation but keeps the slabs for reuse.
  void reset();

  size_t allocated_bytes() const { return allocated_; }  ///< since reset()
  size_t reserved_bytes() const;                         ///< slab capacity
  size_t block_count() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<uint8_t[]> data;
    size_t size = 0;
    size_t used = 0;
  };

  std::vector<Block> blocks_;
  size_t block_bytes_;
  size_t cursor_ = 0;  ///< index of the block currently being bumped
  size_t allocated_ = 0;
};

class BufferPool {
 public:
  struct Stats {
    uint64_t acquired = 0;   ///< total acquire() calls
    uint64_t reused = 0;     ///< served from a free list (no malloc)
    uint64_t allocated = 0;  ///< served by a fresh allocation
    uint64_t dropped = 0;    ///< returns discarded (free list full)
    size_t cached_bytes = 0; ///< bytes parked across all free lists
  };

  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept { *this = std::move(other); }
    Lease& operator=(Lease&& other) noexcept;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    uint8_t* data() { return buf_.data(); }
    const uint8_t* data() const { return buf_.data(); }
    size_t size() const { return size_; }  ///< requested size, not capacity
    bool valid() const { return pool_ != nullptr; }
    std::span<uint8_t> span() { return {buf_.data(), size_}; }
    std::span<const uint8_t> span() const { return {buf_.data(), size_}; }

   private:
    friend class BufferPool;
    Lease(BufferPool* pool, std::vector<uint8_t> buf, size_t size)
        : pool_(pool), buf_(std::move(buf)), size_(size) {}
    void release();

    BufferPool* pool_ = nullptr;
    std::vector<uint8_t> buf_;
    size_t size_ = 0;
  };

  /// max_cached_per_class: free-list depth before returns are dropped.
  explicit BufferPool(size_t max_cached_per_class = 8)
      : max_cached_per_class_(max_cached_per_class) {}

  /// A buffer of at least n bytes (capacity is the next power-of-two size
  /// class, min 4 KiB); contents are unspecified — callers overwrite.
  Lease acquire(size_t n);

  Stats stats() const;

  /// Size class acquire(n) draws from (exposed for tests).
  static size_t size_class(size_t n);

 private:
  friend class Lease;
  void give_back(std::vector<uint8_t> buf);

  mutable std::mutex mu_;
  std::map<size_t, std::vector<std::vector<uint8_t>>> free_;
  size_t max_cached_per_class_;
  Stats stats_;
};

/// Shared process-wide pool for chunk/frame payloads (lazily constructed,
/// never destroyed — mirrors util::shared_pool()).
BufferPool& shared_buffer_pool();

}  // namespace pico::util

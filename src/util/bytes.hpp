#pragma once
// Binary (de)serialization helpers: little-endian fixed-width primitives,
// LEB128-style varints, and length-prefixed strings. Shared by the EMD-lite
// file format, compression codec framing, and checkpoint journals.
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"

namespace pico::util {

/// Append-only little-endian byte sink.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<uint8_t>* out) : out_(out) {}

  void u8(uint8_t v) { out_->push_back(v); }
  void u16(uint16_t v) { fixed(&v, 2); }
  void u32(uint32_t v) { fixed(&v, 4); }
  void u64(uint64_t v) { fixed(&v, 8); }
  void i64(int64_t v) { fixed(&v, 8); }
  void f32(float v) { fixed(&v, 4); }
  void f64(double v) { fixed(&v, 8); }

  /// Unsigned LEB128 varint.
  void varint(uint64_t v);
  /// Zig-zag signed varint.
  void svarint(int64_t v);

  /// varint length + raw bytes.
  void str(std::string_view s);
  void bytes(const void* data, size_t n);

  size_t size() const { return out_->size(); }
  /// Direct write at an absolute offset (for patching length/offset fields).
  void patch_u64(size_t offset, uint64_t v);

 private:
  void fixed(const void* p, size_t n) {
    const auto* b = static_cast<const uint8_t*>(p);
    out_->insert(out_->end(), b, b + n);
  }
  std::vector<uint8_t>* out_;
};

/// Bounds-checked little-endian byte source. All reads return false / error
/// results on truncation instead of reading out of bounds.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t n) : data_(data), size_(n) {}
  explicit ByteReader(const std::vector<uint8_t>& v)
      : ByteReader(v.data(), v.size()) {}

  bool u8(uint8_t* v) { return fixed(v, 1); }
  bool u16(uint16_t* v) { return fixed(v, 2); }
  bool u32(uint32_t* v) { return fixed(v, 4); }
  bool u64(uint64_t* v) { return fixed(v, 8); }
  bool i64(int64_t* v) { return fixed(v, 8); }
  bool f32(float* v) { return fixed(v, 4); }
  bool f64(double* v) { return fixed(v, 8); }
  bool varint(uint64_t* v);
  bool svarint(int64_t* v);
  bool str(std::string* s);
  /// Read exactly n bytes into out (resized).
  bool bytes(std::vector<uint8_t>* out, size_t n);
  /// View n bytes without copying; advances the cursor.
  bool view(const uint8_t** p, size_t n);
  bool skip(size_t n);
  bool seek(size_t abs_offset);

  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }
  bool exhausted() const { return pos_ >= size_; }

 private:
  bool fixed(void* p, size_t n) {
    if (size_ - pos_ < n) return false;
    std::memcpy(p, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Whole-file helpers (real filesystem).
Result<std::vector<uint8_t>> read_file(const std::string& path);
Status write_file(const std::string& path, const void* data, size_t n);
Status write_file(const std::string& path, const std::vector<uint8_t>& data);
Status write_file(const std::string& path, std::string_view text);

}  // namespace pico::util

#include "util/timefmt.hpp"

#include <cmath>
#include <cstdio>

#include "util/strings.hpp"

namespace pico::util {
namespace {

constexpr int64_t kSecPerDay = 86400;

bool is_leap(int64_t y) {
  return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
}

int days_in_month(int64_t y, int m) {
  static const int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (m == 2 && is_leap(y)) return 29;
  return kDays[m - 1];
}

// Civil-from-days (Howard Hinnant's algorithm), avoids timezone machinery.
void civil_from_days(int64_t z, int64_t* y, int* m, int* d) {
  z += 719468;
  int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  int64_t doe = z - era * 146097;
  int64_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  int64_t yy = yoe + era * 400;
  int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  int64_t mp = (5 * doy + 2) / 153;
  int64_t dd = doy - (153 * mp + 2) / 5 + 1;
  int64_t mm = mp < 10 ? mp + 3 : mp - 9;
  *y = yy + (mm <= 2 ? 1 : 0);
  *m = static_cast<int>(mm);
  *d = static_cast<int>(dd);
}

int64_t days_from_civil(int64_t y, int m, int d) {
  y -= m <= 2;
  int64_t era = (y >= 0 ? y : y - 399) / 400;
  int64_t yoe = y - era * 400;
  int64_t doy = (153 * (m > 2 ? m - 3 : m + 9) + 2) / 5 + d - 1;
  int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + doe - 719468;
}

}  // namespace

std::string format_duration(double seconds) {
  bool neg = seconds < 0;
  if (neg) seconds = -seconds;
  int64_t total_ms = static_cast<int64_t>(std::llround(seconds * 1000.0));
  int64_t ms = total_ms % 1000;
  int64_t s = (total_ms / 1000) % 60;
  int64_t m = (total_ms / 60000) % 60;
  int64_t h = total_ms / 3600000;
  return format("%s%02lld:%02lld:%02lld.%03lld", neg ? "-" : "",
                static_cast<long long>(h), static_cast<long long>(m),
                static_cast<long long>(s), static_cast<long long>(ms));
}

std::string format_iso8601(int64_t unix_seconds) {
  int64_t days = unix_seconds / kSecPerDay;
  int64_t rem = unix_seconds % kSecPerDay;
  if (rem < 0) {
    rem += kSecPerDay;
    days -= 1;
  }
  int64_t y;
  int mo, d;
  civil_from_days(days, &y, &mo, &d);
  int h = static_cast<int>(rem / 3600);
  int mi = static_cast<int>((rem / 60) % 60);
  int s = static_cast<int>(rem % 60);
  return format("%04lld-%02d-%02dT%02d:%02d:%02dZ", static_cast<long long>(y),
                mo, d, h, mi, s);
}

bool parse_iso8601(const std::string& text, int64_t* unix_seconds) {
  int y, mo, d, h, mi, s;
  int n = std::sscanf(text.c_str(), "%d-%d-%dT%d:%d:%d", &y, &mo, &d, &h, &mi, &s);
  if (n != 6) {
    // Date-only form.
    n = std::sscanf(text.c_str(), "%d-%d-%d", &y, &mo, &d);
    if (n != 3) return false;
    h = mi = s = 0;
  }
  if (mo < 1 || mo > 12 || d < 1 || d > days_in_month(y, mo)) return false;
  if (h < 0 || h > 23 || mi < 0 || mi > 59 || s < 0 || s > 60) return false;
  *unix_seconds = days_from_civil(y, mo, d) * kSecPerDay + h * 3600 + mi * 60 + s;
  return true;
}

std::string iso_date_prefix(const std::string& iso) {
  return iso.size() >= 10 ? iso.substr(0, 10) : iso;
}

}  // namespace pico::util

#pragma once
// Minimal OAuth-style identity/token service standing in for Globus Auth.
// Services (transfer, compute, search) validate a bearer token and required
// scope before acting; the search index additionally filters query results by
// the caller's identity (visibility-filtered discovery, Sec. 2.2.3).
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/result.hpp"

namespace pico::auth {

/// An authenticated principal ("user@anl.gov").
using Identity = std::string;

/// Permission scope strings, e.g. "transfer", "compute", "search.ingest".
using Scope = std::string;

struct TokenInfo {
  Identity identity;
  std::set<Scope> scopes;
};

/// Opaque bearer token.
using Token = std::string;

class AuthService {
 public:
  explicit AuthService(uint64_t seed = 0x5EC23ull) : seed_(seed) {}

  /// Issue a token for `identity` carrying the given scopes.
  Token issue(const Identity& identity, const std::vector<Scope>& scopes);

  /// Validate a token and check it carries `required_scope`.
  util::Result<TokenInfo> validate(const Token& token,
                                   const Scope& required_scope) const;

  /// Revoke a token; later validations fail.
  void revoke(const Token& token);

  size_t active_tokens() const { return tokens_.size(); }

  /// Fault injection: while unavailable, validate() fails with code
  /// "unavailable" (so callers can distinguish an auth outage from a bad
  /// token). issue() still works — a simplification: token minting in the
  /// facility is local to the orchestrator.
  void set_available(bool available);
  bool available() const { return available_; }

 private:
  uint64_t seed_;
  uint64_t counter_ = 0;
  bool available_ = true;
  std::map<Token, TokenInfo> tokens_;
};

}  // namespace pico::auth

#include "auth/auth.hpp"

#include "util/strings.hpp"

namespace pico::auth {

Token AuthService::issue(const Identity& identity,
                         const std::vector<Scope>& scopes) {
  // Deterministic opaque token: hash-mixed counter (not a security boundary —
  // the simulation is in-process; the shape of the API is what matters).
  uint64_t tag = seed_ ^ (0x9E3779B97F4A7C15ull * ++counter_);
  tag ^= tag >> 29;
  tag *= 0xBF58476D1CE4E5B9ull;
  tag ^= tag >> 32;
  Token token = util::format("tok-%016llx", static_cast<unsigned long long>(tag));
  TokenInfo info;
  info.identity = identity;
  info.scopes.insert(scopes.begin(), scopes.end());
  tokens_[token] = std::move(info);
  return token;
}

util::Result<TokenInfo> AuthService::validate(
    const Token& token, const Scope& required_scope) const {
  if (!available_) {
    return util::Result<TokenInfo>::err("auth service unavailable",
                                        "unavailable");
  }
  auto it = tokens_.find(token);
  if (it == tokens_.end()) {
    return util::Result<TokenInfo>::err("invalid or revoked token", "denied");
  }
  if (!required_scope.empty() && !it->second.scopes.count(required_scope)) {
    return util::Result<TokenInfo>::err(
        "token lacks required scope: " + required_scope, "denied");
  }
  return util::Result<TokenInfo>::ok(it->second);
}

void AuthService::revoke(const Token& token) { tokens_.erase(token); }

void AuthService::set_available(bool available) { available_ = available; }

}  // namespace pico::auth

#include "portal/telemetry_page.hpp"

#include <algorithm>

#include "portal/portal.hpp"
#include "util/strings.hpp"

namespace pico::portal {
namespace {

using util::format;
using util::html_escape;

std::string box_cells(const util::BoxStats& b) {
  return format("<td>%.1f</td><td>%.1f</td><td>%.1f</td><td>%.1f</td>"
                "<td>%.1f</td>",
                b.min, b.q1, b.median, b.q3, b.max);
}

/// Fig.-4-style stacked bar: median active vs median overhead share of the
/// step's median wall time, as inline-styled divs (self-contained page).
std::string share_bar(double active, double overhead) {
  double total = active + overhead;
  if (total <= 0) return "";
  double pct = 100.0 * active / total;
  return format(
      "<div style='display:flex;width:12rem;height:.9rem;"
      "border:1px solid #ccc'>"
      "<div style='width:%.1f%%;background:#1a5276' title='active'></div>"
      "<div style='width:%.1f%%;background:#e67e22' title='overhead'></div>"
      "</div>",
      pct, 100.0 - pct);
}

std::string labels_text(const telemetry::Labels& labels) {
  std::string out;
  for (const auto& [k, v] : labels) {
    if (!out.empty()) out += ", ";
    out += k + "=" + v;
  }
  return out;
}

}  // namespace

std::string render_telemetry_html(const telemetry::TelemetrySummary& summary,
                                  const std::string& title) {
  std::string out = "<!doctype html><html><head><meta charset='utf-8'><title>";
  out += html_escape(title);
  out += "</title>";
  out += portal_style();
  out += "</head><body>";
  out += "<p><a href='index.html'>&larr; back to portal</a></p>";
  out += "<h1>" + html_escape(title) + "</h1>";
  out += format(
      "<p>%zu spans recorded (%zu in the causal tree), %zu span events.</p>",
      summary.span_count, summary.traced_span_count, summary.event_count);

  out += "<h2>Flow step decomposition (Fig. 4)</h2>";
  if (summary.steps.empty()) {
    out += "<p>No completed flow steps in the trace.</p>";
  } else {
    out += "<table><tr><th rowspan='2'>Step</th><th rowspan='2'>n</th>"
           "<th colspan='5'>Active (s)</th>"
           "<th colspan='5'>Overhead (s)</th>"
           "<th rowspan='2'>Median split</th></tr>"
           "<tr><th>min</th><th>q1</th><th>med</th><th>q3</th><th>max</th>"
           "<th>min</th><th>q1</th><th>med</th><th>q3</th><th>max</th></tr>";
    for (const auto& s : summary.steps) {
      out += "<tr><td>" + html_escape(s.step) + "</td>";
      out += format("<td>%zu</td>", s.active.count);
      out += box_cells(s.active);
      out += box_cells(s.overhead);
      out += "<td>" + share_bar(s.active.median, s.overhead.median) +
             "</td></tr>";
    }
    out += "</table>";
  }

  out += "<h2>Completion signaling</h2>";
  {
    const auto& sig = summary.signaling;
    out += "<table><tr><th>polls</th><th>notifications</th>"
           "<th>lost</th><th>latency p50 (s)</th><th>latency p90 (s)</th>"
           "<th>stream pre-dispatches</th><th>streamed steps</th></tr>";
    out += format(
        "<tr><td>%llu</td><td>%llu</td><td>%llu</td><td>%.3g</td>"
        "<td>%.3g</td><td>%llu</td><td>%llu</td></tr></table>",
        static_cast<unsigned long long>(sig.polls),
        static_cast<unsigned long long>(sig.notifications),
        static_cast<unsigned long long>(sig.notifications_lost),
        sig.notification_latency_p50_s, sig.notification_latency_p90_s,
        static_cast<unsigned long long>(sig.stream_predispatches),
        static_cast<unsigned long long>(sig.streamed_steps));
  }

  out += "<h2>Provider health</h2>";
  if (summary.providers.empty()) {
    out += "<p>No breaker activity or retries recorded.</p>";
  } else {
    out += "<table><tr><th>Provider</th><th>breaker &rarr; open</th>"
           "<th>&rarr; half-open</th><th>&rarr; closed</th>"
           "<th>retries</th><th>deferrals</th></tr>";
    for (const auto& p : summary.providers) {
      out += format(
          "<tr><td>%s</td><td>%llu</td><td>%llu</td><td>%llu</td>"
          "<td>%llu</td><td>%llu</td></tr>",
          html_escape(p.provider).c_str(),
          static_cast<unsigned long long>(p.to_open),
          static_cast<unsigned long long>(p.to_half_open),
          static_cast<unsigned long long>(p.to_closed),
          static_cast<unsigned long long>(p.retries),
          static_cast<unsigned long long>(p.deferrals));
    }
    out += "</table>";
  }

  out += "<h2>Metrics snapshot</h2>";
  if (summary.metrics.empty()) {
    out += "<p>No metrics registered.</p>";
  } else {
    out += "<table><tr><th>Metric</th><th>Labels</th><th>Kind</th>"
           "<th>Value</th><th>p50</th><th>p90</th><th>max</th><th>n</th></tr>";
    for (const auto& m : summary.metrics) {
      out += "<tr><td>" + html_escape(m.name) + "</td><td>" +
             html_escape(labels_text(m.labels)) + "</td><td>" +
             telemetry::metric_kind_name(m.kind) + "</td>";
      out += format("<td>%.10g</td>", m.value);
      if (m.kind == telemetry::MetricKind::Histogram) {
        out += format("<td>%.3g</td><td>%.3g</td><td>%.3g</td><td>%llu</td>",
                      m.p50, m.p90, m.max,
                      static_cast<unsigned long long>(m.count));
      } else {
        out += "<td></td><td></td><td></td><td></td>";
      }
      out += "</tr>";
    }
    out += "</table>";
  }

  out += "</body></html>\n";
  return out;
}

}  // namespace pico::portal

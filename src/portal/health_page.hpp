#pragma once
// Portal health page: renders a health::HealthReport (built by the
// HealthMonitor's periodic tick over the metrics registry and flight
// recorder) as a static HTML page — per-provider/per-link health scores, SLO
// burn rates, the alert history, and flight-recorder occupancy. Examples
// write it next to the generated portal site alongside the telemetry page.
#include <string>

#include "telemetry/health/monitor.hpp"

namespace pico::portal {

std::string render_health_html(const telemetry::health::HealthReport& report,
                               const std::string& title = "Facility health");

}  // namespace pico::portal

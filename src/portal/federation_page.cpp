#include "portal/federation_page.hpp"

#include "portal/portal.hpp"
#include "util/strings.hpp"

namespace pico::portal {
namespace {

using util::format;
using util::html_escape;

std::string count_row(const char* label, const util::Json& doc,
                      const char* key) {
  return format("<tr><td>%s</td><td>%lld</td></tr>", label,
                static_cast<long long>(doc.at(key).as_int(0)));
}

}  // namespace

std::string render_federation_html(const util::Json& broker_report,
                                   const std::string& title) {
  const util::Json& r = broker_report;
  std::string out = "<!doctype html><html><head><meta charset='utf-8'><title>";
  out += html_escape(title);
  out += "</title>";
  out += portal_style();
  out += "</head><body>";
  out += "<p><a href='index.html'>&larr; back to portal</a></p>";
  out += "<h1>" + html_escape(title) + "</h1>";

  out += "<h2>Sites</h2>";
  const auto& sites = r.at("sites").as_array();
  if (sites.empty()) {
    out += "<p>No sites registered.</p>";
  } else {
    out += "<table><tr><th>Site</th><th>State</th><th>Brownout</th>"
           "<th>Capacity</th><th>Active runs</th><th>Launches</th>"
           "<th>Faults seen</th></tr>";
    for (const auto& s : sites) {
      const char* state = s.at("outage").as_bool()        ? "outage"
                          : s.at("partitioned").as_bool() ? "partitioned"
                                                          : "up";
      const char* color = s.at("outage").as_bool()        ? "#922b21"
                          : s.at("partitioned").as_bool() ? "#b9770e"
                                                          : "#1e8449";
      out += "<tr><td>" + html_escape(s.at("name").as_string()) + "</td>";
      out += format("<td style='color:%s;font-weight:bold'>%s</td>", color,
                    state);
      out += format(
          "<td>%.2f</td><td>%.1f</td><td>%lld</td><td>%lld</td>"
          "<td>%lld</td></tr>",
          s.at("brownout").as_double(), s.at("capacity").as_double(),
          static_cast<long long>(s.at("active_runs").as_int()),
          static_cast<long long>(s.at("launches").as_int()),
          static_cast<long long>(s.at("faults_seen").as_int()));
    }
    out += "</table>";
  }

  out += "<h2>Admission control</h2>";
  const util::Json& q = r.at("quotas");
  out += format(
      "<p>%lld users, %lld/%lld in flight (load %.0f%%), "
      "%lld rejected, Jain fairness %.4f.</p>",
      static_cast<long long>(q.at("users").as_int()),
      static_cast<long long>(q.at("inflight_total").as_int()),
      static_cast<long long>(q.at("max_inflight_total").as_int()),
      100.0 * q.at("load_frac").as_double(),
      static_cast<long long>(q.at("rejected_total").as_int()),
      q.at("jain_fairness").as_double(1.0));

  out += "<h2>Flow ledger</h2><table><tr><th>Counter</th><th>Count</th></tr>";
  out += count_row("Submitted", r, "submitted");
  out += count_row("Completed", r, "completed");
  out += count_row("Failed", r, "failed");
  out += count_row("Rejected (retry-after)", r, "rejected");
  out += count_row("Failovers", r, "failovers");
  out += count_row("Resumed past completed steps", r, "resumed");
  out += count_row("Reconciled at partition heal", r, "reconciled");
  out += count_row("Optional steps shed", r, "optional_steps_dropped");
  out += count_row("Parked for heal", r, "parked");
  out += "</table>";

  out += format("<p>Worst outage recovery: %.1f s of virtual time.</p>",
                r.at("recovery_s").as_double());
  out += "</body></html>\n";
  return out;
}

}  // namespace pico::portal

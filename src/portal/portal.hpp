#pragma once
// DGPF-like data portal: renders a Globus-Search-backed index as a static
// HTML site — a record listing with date/type facets and a detail page per
// experiment embedding its plots (Fig. 2's portal view). Static generation
// stands in for the Django request cycle; the data path (search index ->
// rendered record with metadata + artifacts) is the same.
#include <string>
#include <vector>

#include "auth/auth.hpp"
#include "search/index.hpp"
#include "util/result.hpp"

namespace pico::portal {

/// Shared stylesheet (<style> block) used by every generated portal page.
const char* portal_style();

struct PortalConfig {
  std::string title = "Dynamic PicoProbe Data Portal";
  std::string output_dir;  ///< directory for generated HTML
};

struct GeneratedSite {
  std::string index_path;
  std::vector<std::string> record_paths;
};

class Portal {
 public:
  explicit Portal(PortalConfig config) : config_(std::move(config)) {}

  /// Render everything `viewer` may see. Artifact paths in records that point
  /// at .svg files are inlined; others are linked.
  util::Result<GeneratedSite> generate(const search::Index& index,
                                       const auth::Identity& viewer = "") const;

  /// Render one record page to a string (testable without the filesystem).
  std::string render_record_html(const search::Document& doc) const;

  /// Render the listing page to a string.
  std::string render_index_html(const search::Index& index,
                                const auth::Identity& viewer) const;

 private:
  PortalConfig config_;
};

}  // namespace pico::portal

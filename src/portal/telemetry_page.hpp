#pragma once
// Portal telemetry dashboard: renders a TelemetrySummary (built by
// telemetry::summarize from the campaign span tree + metrics registry) as a
// static HTML page — the paper's Fig. 4 active-vs-overhead decomposition per
// flow step, per-provider circuit-breaker/retry health, and the full metrics
// snapshot. Examples write it next to the generated portal site.
#include <string>

#include "telemetry/export.hpp"

namespace pico::portal {

std::string render_telemetry_html(const telemetry::TelemetrySummary& summary,
                                  const std::string& title =
                                      "Facility telemetry");

}  // namespace pico::portal

#include "portal/portal.hpp"

#include <filesystem>

#include "util/bytes.hpp"
#include "util/strings.hpp"
#include "util/timefmt.hpp"

namespace pico::portal {
namespace {

using util::html_escape;

const char* kStyle = R"(
<style>
  body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 60rem; color: #222; }
  h1 { border-bottom: 2px solid #1a5276; padding-bottom: .3rem; }
  table { border-collapse: collapse; margin: 1rem 0; }
  td, th { border: 1px solid #ccc; padding: .3rem .6rem; text-align: left; vertical-align: top; }
  th { background: #eef3f7; }
  .facet { display: inline-block; background: #eef3f7; border-radius: .4rem;
           padding: .1rem .5rem; margin: .1rem; font-size: .9rem; }
  .record { margin: .4rem 0; }
  .artifact { margin: 1rem 0; }
  pre { background: #f6f6f6; padding: .6rem; overflow-x: auto; }
</style>
)";

std::string json_table(const util::Json& j) {
  if (!j.is_object()) {
    return "<pre>" + html_escape(j.dump(2)) + "</pre>";
  }
  std::string out = "<table>";
  for (const auto& [k, v] : j.as_object()) {
    out += "<tr><th>" + html_escape(k) + "</th><td>";
    if (v.is_object() || v.is_array()) {
      out += "<pre>" + html_escape(v.dump(2)) + "</pre>";
    } else {
      out += html_escape(v.dump());
    }
    out += "</td></tr>";
  }
  out += "</table>";
  return out;
}

std::string record_filename(const search::DocId& id) {
  std::string safe;
  for (char c : id) safe.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  return "record_" + safe + ".html";
}

}  // namespace

const char* portal_style() { return kStyle; }

std::string Portal::render_record_html(const search::Document& doc) const {
  const util::Json& r = doc.content;
  std::string out = "<!doctype html><html><head><meta charset='utf-8'><title>";
  out += html_escape(r.at("title").as_string("(untitled)"));
  out += "</title>";
  out += kStyle;
  out += "</head><body>";
  out += "<p><a href='index.html'>&larr; back to portal</a></p>";
  out += "<h1>" + html_escape(r.at("title").as_string("(untitled)")) + "</h1>";
  out += "<p><b>Acquired:</b> " +
         html_escape(r.at_path("dates.created").as_string("?")) +
         " &middot; <b>Type:</b> " +
         html_escape(r.at("resource_type").as_string("?")) + "</p>";

  // Subjects (e.g. detected elements) as chips.
  if (r.at("subjects").size() > 0) {
    out += "<p>";
    for (const auto& s : r.at("subjects").as_array()) {
      out += "<span class='facet'>" + html_escape(s.as_string()) + "</span>";
    }
    out += "</p>";
  }

  // Artifacts: SVG plots inlined (self-contained page), other files linked.
  for (const auto& a : r.at("artifacts").as_array()) {
    const std::string& path = a.as_string();
    out += "<div class='artifact'>";
    if (util::ends_with(path, ".svg")) {
      auto data = util::read_file(path);
      if (data) {
        out += std::string(reinterpret_cast<const char*>(data.value().data()),
                           data.value().size());
      } else {
        out += "<p>(missing artifact " + html_escape(path) + ")</p>";
      }
    } else {
      out += "<p><a href='" + html_escape(path) + "'>" + html_escape(path) +
             "</a></p>";
    }
    out += "</div>";
  }

  out += "<h2>Instrument metadata</h2>";
  out += json_table(r.at("instrument"));
  out += "<h2>Analysis</h2>";
  out += json_table(r.at("analysis"));
  out += "</body></html>";
  return out;
}

std::string Portal::render_index_html(const search::Index& index,
                                      const auth::Identity& viewer) const {
  std::string out = "<!doctype html><html><head><meta charset='utf-8'><title>";
  out += html_escape(config_.title);
  out += "</title>";
  out += kStyle;
  out += "</head><body><h1>" + html_escape(config_.title) + "</h1>";

  // Facets: resource type and acquisition date (the paper's portal lets
  // researchers browse experiments by time and date).
  out += "<h2>Facets</h2><p>";
  for (const auto& [value, count] : index.facet("resource_type", viewer)) {
    out += "<span class='facet'>" + html_escape(value) + " (" +
           std::to_string(count) + ")</span>";
  }
  std::map<std::string, size_t> by_date;
  for (const auto& [value, count] : index.facet("dates.created", viewer)) {
    by_date[util::iso_date_prefix(value)] += count;
  }
  for (const auto& [day, count] : by_date) {
    out += "<span class='facet'>" + html_escape(day) + " (" +
           std::to_string(count) + ")</span>";
  }
  out += "</p><h2>Experiments (" + std::to_string(index.all_ids(viewer).size()) +
         ")</h2>";

  for (const auto& id : index.all_ids(viewer)) {
    auto doc = index.get(id, viewer);
    if (!doc) continue;
    const util::Json& r = doc.value()->content;
    out += "<div class='record'><a href='" + record_filename(id) + "'>" +
           html_escape(r.at("title").as_string(id)) + "</a> &middot; " +
           html_escape(r.at_path("dates.created").as_string("?")) +
           " &middot; " + html_escape(r.at("resource_type").as_string("?")) +
           "</div>";
  }
  out += "</body></html>";
  return out;
}

util::Result<GeneratedSite> Portal::generate(
    const search::Index& index, const auth::Identity& viewer) const {
  using R = util::Result<GeneratedSite>;
  std::error_code ec;
  std::filesystem::create_directories(config_.output_dir, ec);

  GeneratedSite site;
  site.index_path = config_.output_dir + "/index.html";
  auto st = util::write_file(site.index_path,
                             render_index_html(index, viewer));
  if (!st) return R::err(st.error());

  for (const auto& id : index.all_ids(viewer)) {
    auto doc = index.get(id, viewer);
    if (!doc) continue;
    std::string path = config_.output_dir + "/" + record_filename(id);
    auto wst = util::write_file(path, render_record_html(*doc.value()));
    if (!wst) return R::err(wst.error());
    site.record_paths.push_back(std::move(path));
  }
  return R::ok(std::move(site));
}

}  // namespace pico::portal

#pragma once
// Portal federation page: renders a federation Broker::report() document —
// per-site routing state (outage/partition/brownout, queue depths, launch
// counts), admission-control quota occupancy, and the failover ledger — as a
// static HTML page next to the health and telemetry pages.
//
// Takes the report as plain JSON rather than federation types: the portal
// renders what a broker publishes over the wire, and pico_portal stays free
// of a pico_federation dependency (federation sits above portal in the
// module graph).
#include <string>

#include "util/json.hpp"

namespace pico::portal {

std::string render_federation_html(
    const util::Json& broker_report,
    const std::string& title = "Federation broker");

}  // namespace pico::portal

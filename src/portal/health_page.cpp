#include "portal/health_page.hpp"

#include "portal/portal.hpp"
#include "util/strings.hpp"

namespace pico::portal {
namespace {

using util::format;
using util::html_escape;

/// Score cell shaded by health: green >= 90, amber >= 50, red below.
std::string score_cell(double score) {
  const char* color =
      score >= 90 ? "#1e8449" : (score >= 50 ? "#b9770e" : "#922b21");
  return format("<td style='color:%s;font-weight:bold'>%.0f</td>", color,
                score);
}

}  // namespace

std::string render_health_html(const telemetry::health::HealthReport& report,
                               const std::string& title) {
  std::string out = "<!doctype html><html><head><meta charset='utf-8'><title>";
  out += html_escape(title);
  out += "</title>";
  out += portal_style();
  out += "</head><body>";
  out += "<p><a href='index.html'>&larr; back to portal</a></p>";
  out += "<h1>" + html_escape(title) + "</h1>";
  out += format(
      "<p>As of t=%.1fs &mdash; %zu open flows (%zu stalled), "
      "%zu flight rings holding %llu events (%llu dump-worthy).</p>",
      report.at.seconds(), report.open_flows, report.stalled_flows,
      report.flight_rings,
      static_cast<unsigned long long>(report.flight_events),
      static_cast<unsigned long long>(report.flight_dump_worthy));

  out += "<h2>Provider health</h2>";
  if (report.providers.empty()) {
    out += "<p>No providers scored yet.</p>";
  } else {
    out += "<table><tr><th>Provider</th><th>Score</th><th>Breaker</th>"
           "<th>Retries/min</th><th>Timeouts/min</th>"
           "<th>Deferrals/min</th></tr>";
    for (const auto& p : report.providers) {
      const char* breaker = p.breaker_open >= 1.0
                                ? "open"
                                : (p.breaker_open > 0 ? "half-open" : "closed");
      out += "<tr><td>" + html_escape(p.provider) + "</td>";
      out += score_cell(p.score);
      out += format("<td>%s</td><td>%.2f</td><td>%.2f</td><td>%.2f</td></tr>",
                    breaker, p.retries_per_min, p.timeouts_per_min,
                    p.deferrals_per_min);
    }
    out += "</table>";
  }

  out += "<h2>Link health</h2>";
  if (report.links.empty()) {
    out += "<p>No link probe installed.</p>";
  } else {
    out += "<table><tr><th>Link</th><th>Score</th><th>State</th>"
           "<th>Avg utilization</th></tr>";
    for (const auto& l : report.links) {
      out += "<tr><td>" + html_escape(l.link) + "</td>";
      out += score_cell(l.score);
      out += format("<td>%s</td><td>%.1f%%</td></tr>", l.up ? "up" : "down",
                    100.0 * l.utilization);
    }
    out += "</table>";
  }

  out += "<h2>SLO burn rates</h2>";
  if (report.slos.empty()) {
    out += "<p>No SLO evaluations yet.</p>";
  } else {
    out += "<table><tr><th>Objective</th><th>Fast-window burn</th>"
           "<th>Slow-window burn</th><th>State</th></tr>";
    for (const auto& s : report.slos) {
      out += "<tr><td>" + html_escape(s.objective) + "</td>";
      out += format("<td>%.2f</td><td>%.2f</td>", s.fast_burn, s.slow_burn);
      out += s.alerting ? "<td style='color:#922b21;font-weight:bold'>"
                          "burning</td></tr>"
                        : "<td>ok</td></tr>";
    }
    out += "</table>";
  }

  out += "<h2>Alert history</h2>";
  if (report.alerts.empty()) {
    out += "<p>No alerts fired.</p>";
  } else {
    out += "<table><tr><th>t (s)</th><th>Kind</th><th>Severity</th>"
           "<th>Subject</th><th>Detail</th></tr>";
    for (const auto& a : report.alerts) {
      out += format("<tr><td>%.1f</td>", a.at.seconds());
      out += "<td>" + html_escape(a.kind) + "</td><td>" +
             html_escape(a.severity) + "</td><td>" + html_escape(a.subject) +
             "</td><td>" + html_escape(a.detail) + "</td></tr>";
    }
    out += "</table>";
  }

  out += "</body></html>";
  return out;
}

}  // namespace pico::portal

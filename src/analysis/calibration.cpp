#include "analysis/calibration.hpp"

#include <cassert>
#include <cmath>

#include "tensor/ops.hpp"
#include "util/strings.hpp"

namespace pico::analysis {
namespace {

/// Normalized cross-correlation between `a` and `b` shifted by (dx, dy),
/// over their overlapping region.
double shifted_ncc(const tensor::Tensor<double>& a,
                   const tensor::Tensor<double>& b, int dx, int dy) {
  const long h = static_cast<long>(a.dim(0));
  const long w = static_cast<long>(a.dim(1));
  long y_lo = std::max(0l, static_cast<long>(dy));
  long y_hi = std::min(h, h + static_cast<long>(dy));
  long x_lo = std::max(0l, static_cast<long>(dx));
  long x_hi = std::min(w, w + static_cast<long>(dx));
  if (y_hi - y_lo < 4 || x_hi - x_lo < 4) return -1;

  double sa = 0, sb = 0, n = 0;
  for (long y = y_lo; y < y_hi; ++y) {
    for (long x = x_lo; x < x_hi; ++x) {
      sa += a(static_cast<size_t>(y), static_cast<size_t>(x));
      sb += b(static_cast<size_t>(y - dy), static_cast<size_t>(x - dx));
      n += 1;
    }
  }
  double ma = sa / n, mb = sb / n;
  double cov = 0, va = 0, vb = 0;
  for (long y = y_lo; y < y_hi; ++y) {
    for (long x = x_lo; x < x_hi; ++x) {
      double da = a(static_cast<size_t>(y), static_cast<size_t>(x)) - ma;
      double db =
          b(static_cast<size_t>(y - dy), static_cast<size_t>(x - dx)) - mb;
      cov += da * db;
      va += da * da;
      vb += db * db;
    }
  }
  double denom = std::sqrt(va * vb);
  return denom <= 0 ? 0 : cov / denom;
}

}  // namespace

DriftEstimate estimate_drift(const tensor::Tensor<double>& reference,
                             const tensor::Tensor<double>& image,
                             int max_shift) {
  assert(reference.rank() == 2 && reference.shape() == image.shape());
  DriftEstimate best;
  best.score = -2;
  for (int dy = -max_shift; dy <= max_shift; ++dy) {
    for (int dx = -max_shift; dx <= max_shift; ++dx) {
      // Correlate the reference against the image pulled back by (dx, dy):
      // a peak at (dx, dy) means the image moved by that much.
      double score = shifted_ncc(image, reference, dx, dy);
      if (score > best.score) {
        best.score = score;
        best.dx = dx;
        best.dy = dy;
      }
    }
  }
  return best;
}

double sharpness(const tensor::Tensor<double>& image) {
  assert(image.rank() == 2);
  const size_t h = image.dim(0), w = image.dim(1);
  if (h < 3 || w < 3) return 0;
  double acc = 0;
  for (size_t y = 1; y + 1 < h; ++y) {
    for (size_t x = 1; x + 1 < w; ++x) {
      double gx = image(y - 1, x + 1) + 2 * image(y, x + 1) + image(y + 1, x + 1) -
                  image(y - 1, x - 1) - 2 * image(y, x - 1) - image(y + 1, x - 1);
      double gy = image(y + 1, x - 1) + 2 * image(y + 1, x) + image(y + 1, x + 1) -
                  image(y - 1, x - 1) - 2 * image(y - 1, x) - image(y - 1, x + 1);
      acc += gx * gx + gy * gy;
    }
  }
  return acc / static_cast<double>((h - 2) * (w - 2));
}

std::string alert_kind_name(AlertKind k) {
  switch (k) {
    case AlertKind::Drift: return "drift";
    case AlertKind::FocusLoss: return "focus-loss";
    case AlertKind::IntensityDrop: return "intensity-drop";
  }
  return "?";
}

std::vector<CalibrationAlert> CalibrationMonitor::observe(
    const tensor::Tensor<double>& image) {
  std::vector<CalibrationAlert> alerts;
  ++observations_;
  if (!reference_.has_value()) {
    reference_ = image;
    reference_sharpness_ = sharpness(image);
    reference_mean_ = tensor::mean_value(image);
    return alerts;
  }
  if (image.shape() != reference_->shape()) {
    // Shape change = new acquisition mode; silently re-baseline.
    reference_ = image;
    reference_sharpness_ = sharpness(image);
    reference_mean_ = tensor::mean_value(image);
    return alerts;
  }

  DriftEstimate drift = estimate_drift(*reference_, image, config_.max_shift_px);
  double magnitude = std::hypot(drift.dx, drift.dy);
  if (magnitude > config_.drift_threshold_px) {
    alerts.push_back(CalibrationAlert{
        AlertKind::Drift,
        magnitude / config_.drift_threshold_px,
        util::format("stage drift %.1f px (dx=%+.0f, dy=%+.0f)", magnitude,
                     drift.dx, drift.dy),
        util::Json::object({{"dx", drift.dx},
                            {"dy", drift.dy},
                            {"score", drift.score}}),
    });
  }

  double sharp = sharpness(image);
  if (reference_sharpness_ > 0 &&
      sharp < config_.sharpness_floor_frac * reference_sharpness_) {
    double frac = sharp / reference_sharpness_;
    alerts.push_back(CalibrationAlert{
        AlertKind::FocusLoss,
        config_.sharpness_floor_frac / std::max(frac, 1e-9),
        util::format("sharpness at %.0f%% of reference (defocus?)",
                     100 * frac),
        util::Json::object({{"sharpness", sharp},
                            {"reference", reference_sharpness_}}),
    });
  }

  double mean = tensor::mean_value(image);
  if (reference_mean_ > 0 &&
      mean < config_.intensity_floor_frac * reference_mean_) {
    double frac = mean / reference_mean_;
    alerts.push_back(CalibrationAlert{
        AlertKind::IntensityDrop,
        config_.intensity_floor_frac / std::max(frac, 1e-9),
        util::format("mean intensity at %.0f%% of reference (beam decay?)",
                     100 * frac),
        util::Json::object({{"mean", mean}, {"reference", reference_mean_}}),
    });
  }
  return alerts;
}

void CalibrationMonitor::rebaseline() { reference_.reset(); }

}  // namespace pico::analysis

#pragma once
// HyperSpy-style metadata extraction (paper Sec. 2.2.2): walk an EMD file and
// produce the JSON block the flows publish — sample collection date/time,
// acquisition instrument details (stage and detector positions, beam energy,
// magnification), and software versioning. Designed to work on header-only
// (metadata-only) reads so cataloging never touches dataset payloads.
#include "emd/file.hpp"
#include "util/json.hpp"
#include "util/result.hpp"

namespace pico::analysis {

/// Extract the standard PicoProbe metadata block from an EMD-lite file.
/// Missing optional groups yield nulls rather than errors; a file with no
/// data group at all is an error.
util::Result<util::Json> extract_metadata(const emd::File& file);

/// Dataset inventory: per signal, its kind, dtype, shape and byte size.
util::Json dataset_inventory(const emd::File& file);

}  // namespace pico::analysis

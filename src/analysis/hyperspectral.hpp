#pragma once
// Hyperspectral analysis (paper Sec. 3.1 / Fig. 2): reduce an [H, W, E] cube
// to (A) a per-pixel intensity image by summing the spectral axis and (B) an
// aggregate spectrum by summing both pixel axes; then find spectral peaks and
// identify the elements they belong to (the "atomic composition" shown in the
// portal metadata pane).
#include <string>
#include <vector>

#include "instrument/xray_lines.hpp"
#include "tensor/tensor.hpp"
#include "util/json.hpp"
#include "util/threadpool.hpp"

namespace pico::analysis {

/// A: intensity image — sum along the spectral (last) axis of [H, W, E].
/// With a pool, the reduction fans out over it (bit-identical results).
tensor::Tensor<double> intensity_map(const tensor::Tensor<double>& cube,
                                     util::ThreadPool* pool = nullptr);

/// B: aggregate spectrum — sum over both pixel axes, keeping the energy axis.
tensor::Tensor<double> sum_spectrum(const tensor::Tensor<double>& cube,
                                    util::ThreadPool* pool = nullptr);

struct Peak {
  size_t channel = 0;
  double energy_kev = 0;
  double height = 0;       ///< counts above the local continuum estimate
  double prominence = 0;   ///< height relative to neighborhood median
};

struct PeakFindConfig {
  /// A channel is a peak when it exceeds the local median by this factor.
  double prominence_factor = 2.0;
  /// Half-width of the local median window, channels.
  size_t window = 25;
  /// Minimum absolute height (counts) to suppress noise peaks.
  double min_height = 0.0;
  size_t max_peaks = 32;
};

/// Local-maximum + median-prominence peak finder over a spectrum.
std::vector<Peak> find_peaks(const tensor::Tensor<double>& spectrum,
                             const std::vector<double>& energy_axis,
                             const PeakFindConfig& config = {});

struct ElementMatch {
  std::string symbol;
  double score = 0;                 ///< matched peak height sum
  /// Relative composition estimate: this element's matched peak mass as a
  /// fraction of all matched peak mass (the Fig. 2C "atomic composition").
  /// A first-order estimate — no ZAF/absorption correction.
  double fraction = 0;
  std::vector<double> matched_kev;  ///< peak energies attributed to it
};

/// Attribute peaks to elements whose characteristic lines fall within
/// `tolerance_kev`. Elements are reported strongest-first; an element must
/// match its strongest in-range line to be reported.
std::vector<ElementMatch> identify_elements(
    const std::vector<Peak>& peaks,
    const instrument::XRayLineLibrary& library, double tolerance_kev = 0.08);

/// Elemental map: per-pixel counts integrated over an energy window centered
/// on one of the element's matched lines (standard EDS elemental mapping —
/// "where in the sample is the gold?"). Window half-width defaults to twice
/// the detector peak sigma.
tensor::Tensor<double> element_map(const tensor::Tensor<double>& cube,
                                   const std::vector<double>& energy_axis,
                                   double line_kev,
                                   double window_half_width_kev = 0.15);

/// Complete Fig. 2 analysis product for one cube.
struct HyperspectralAnalysis {
  tensor::Tensor<double> intensity;       ///< [H, W]
  tensor::Tensor<double> spectrum;        ///< [E]
  std::vector<Peak> peaks;
  std::vector<ElementMatch> elements;
  util::Json to_json() const;             ///< summary for the search record
};

HyperspectralAnalysis analyze_hyperspectral(
    const tensor::Tensor<double>& cube, const std::vector<double>& energy_axis,
    const PeakFindConfig& config = {}, util::ThreadPool* pool = nullptr);

}  // namespace pico::analysis

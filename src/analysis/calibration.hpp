#pragma once
// Calibration monitoring — the paper's Fig. 1 step 3(iv): ML/AI approaches
// that "perform error correction by alerting the Dynamic PicoProbe operator
// to calibration problems". Watches a stream of acquisitions (intensity maps
// or frames) for three instrument pathologies:
//
//   - stage/sample DRIFT: integer-pixel cross-correlation shift between the
//     current image and the reference;
//   - FOCUS loss: drop in gradient-energy sharpness (Tenengrad);
//   - INTENSITY drop: falling mean signal (beam current/alignment decay).
//
// Alerts feed the "actionable summary" loop of Fig. 1 step 4 (see the
// steering example).
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/json.hpp"

namespace pico::analysis {

/// Integer-pixel image shift estimate via windowed cross-correlation search.
struct DriftEstimate {
  double dx = 0, dy = 0;  ///< shift of `image` relative to `reference`
  double score = 0;       ///< normalized correlation at the best shift, [-1, 1]
};

/// Estimate the translation between two same-shape images by maximizing the
/// normalized cross-correlation over shifts in [-max_shift, +max_shift]².
DriftEstimate estimate_drift(const tensor::Tensor<double>& reference,
                             const tensor::Tensor<double>& image,
                             int max_shift = 8);

/// Tenengrad sharpness: mean squared Sobel gradient magnitude. Defocus blurs
/// edges and drives this down.
double sharpness(const tensor::Tensor<double>& image);

enum class AlertKind { Drift, FocusLoss, IntensityDrop };

std::string alert_kind_name(AlertKind k);

struct CalibrationAlert {
  AlertKind kind;
  double severity = 0;    ///< 1.0 = exactly at threshold, >1 worse
  std::string message;
  util::Json details;
};

struct CalibrationConfig {
  /// Alert when accumulated drift from the reference exceeds this.
  double drift_threshold_px = 4.0;
  /// Alert when sharpness falls below this fraction of the reference's.
  double sharpness_floor_frac = 0.6;
  /// Alert when mean intensity falls below this fraction of the reference's.
  double intensity_floor_frac = 0.7;
  /// Drift search window per observation.
  int max_shift_px = 8;
};

/// Stateful monitor: the first observation becomes the reference; later
/// observations are compared against it. `rebaseline()` adopts the next
/// observation as the new reference (the operator "corrected" the scope).
class CalibrationMonitor {
 public:
  explicit CalibrationMonitor(CalibrationConfig config = {})
      : config_(config) {}

  /// Observe one acquisition (rank-2 image). Returns any alerts it raises.
  std::vector<CalibrationAlert> observe(const tensor::Tensor<double>& image);

  /// Drop the reference; the next observation re-baselines the monitor.
  void rebaseline();

  bool has_reference() const { return reference_.has_value(); }
  size_t observations() const { return observations_; }

 private:
  CalibrationConfig config_;
  std::optional<tensor::Tensor<double>> reference_;
  double reference_sharpness_ = 0;
  double reference_mean_ = 0;
  size_t observations_ = 0;
};

}  // namespace pico::analysis

#include "analysis/plot.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "tensor/ops.hpp"
#include "util/bytes.hpp"
#include "util/strings.hpp"

namespace pico::analysis {
namespace {

// Choose a tick step of the form {1,2,5}x10^k covering span/target ticks.
double nice_step(double span, int target_ticks) {
  if (span <= 0) return 1;
  double raw = span / std::max(1, target_ticks);
  double mag = std::pow(10.0, std::floor(std::log10(raw)));
  double norm = raw / mag;
  double step = norm < 1.5 ? 1 : norm < 3.5 ? 2 : norm < 7.5 ? 5 : 10;
  return step * mag;
}

}  // namespace

std::string render_line_svg(const std::vector<double>& x,
                            const std::vector<double>& y,
                            const LinePlotConfig& cfg) {
  assert(x.size() == y.size());
  const double W = cfg.width_px, H = cfg.height_px;
  const double ml = 64, mr = 16, mt = 36, mb = 48;  // margins
  const double pw = W - ml - mr, ph = H - mt - mb;  // plot area

  double x_min = 0, x_max = 1, y_min = 0, y_max = 1;
  if (!x.empty()) {
    x_min = *std::min_element(x.begin(), x.end());
    x_max = *std::max_element(x.begin(), x.end());
    y_min = *std::min_element(y.begin(), y.end());
    y_max = *std::max_element(y.begin(), y.end());
    if (x_max == x_min) x_max = x_min + 1;
    if (y_max == y_min) y_max = y_min + 1;
    y_min = std::min(y_min, 0.0);  // anchor count axes at zero
  }
  auto sx = [&](double v) { return ml + (v - x_min) / (x_max - x_min) * pw; };
  auto sy = [&](double v) { return mt + ph - (v - y_min) / (y_max - y_min) * ph; };

  std::string svg = util::format(
      "<svg xmlns='http://www.w3.org/2000/svg' width='%d' height='%d' "
      "viewBox='0 0 %d %d' font-family='sans-serif'>\n",
      cfg.width_px, cfg.height_px, cfg.width_px, cfg.height_px);
  svg += "<rect width='100%' height='100%' fill='white'/>\n";

  // Axes frame.
  svg += util::format(
      "<rect x='%.1f' y='%.1f' width='%.1f' height='%.1f' fill='none' "
      "stroke='#444'/>\n",
      ml, mt, pw, ph);

  // Ticks + grid.
  double xs = nice_step(x_max - x_min, 8);
  for (double t = std::ceil(x_min / xs) * xs; t <= x_max + 1e-9; t += xs) {
    svg += util::format(
        "<line x1='%.1f' y1='%.1f' x2='%.1f' y2='%.1f' stroke='#ddd'/>\n",
        sx(t), mt, sx(t), mt + ph);
    svg += util::format(
        "<text x='%.1f' y='%.1f' font-size='11' text-anchor='middle' "
        "fill='#333'>%g</text>\n",
        sx(t), mt + ph + 16, t);
  }
  double ys = nice_step(y_max - y_min, 6);
  for (double t = std::ceil(y_min / ys) * ys; t <= y_max + 1e-9; t += ys) {
    svg += util::format(
        "<line x1='%.1f' y1='%.1f' x2='%.1f' y2='%.1f' stroke='#ddd'/>\n",
        ml, sy(t), ml + pw, sy(t));
    svg += util::format(
        "<text x='%.1f' y='%.1f' font-size='11' text-anchor='end' "
        "fill='#333'>%g</text>\n",
        ml - 6, sy(t) + 4, t);
  }

  // Data polyline.
  if (!x.empty()) {
    std::string points;
    for (size_t i = 0; i < x.size(); ++i) {
      points += util::format("%.1f,%.1f ", sx(x[i]), sy(y[i]));
    }
    svg += "<polyline fill='none' stroke='#1a5276' stroke-width='1.4' points='" +
           points + "'/>\n";
  }

  // Annotations (element line markers).
  for (const auto& [pos, label] : cfg.annotations) {
    if (pos < x_min || pos > x_max) continue;
    svg += util::format(
        "<line x1='%.1f' y1='%.1f' x2='%.1f' y2='%.1f' stroke='#c0392b' "
        "stroke-dasharray='4 3'/>\n",
        sx(pos), mt, sx(pos), mt + ph);
    svg += util::format(
        "<text x='%.1f' y='%.1f' font-size='11' fill='#c0392b' "
        "text-anchor='middle'>%s</text>\n",
        sx(pos), mt - 4, util::html_escape(label).c_str());
  }

  // Labels.
  svg += util::format(
      "<text x='%.1f' y='20' font-size='14' text-anchor='middle' "
      "fill='#111'>%s</text>\n",
      ml + pw / 2, util::html_escape(cfg.title).c_str());
  svg += util::format(
      "<text x='%.1f' y='%.1f' font-size='12' text-anchor='middle' "
      "fill='#333'>%s</text>\n",
      ml + pw / 2, H - 10, util::html_escape(cfg.x_label).c_str());
  svg += util::format(
      "<text x='14' y='%.1f' font-size='12' text-anchor='middle' "
      "fill='#333' transform='rotate(-90 14 %.1f)'>%s</text>\n",
      mt + ph / 2, mt + ph / 2, util::html_escape(cfg.y_label).c_str());

  svg += "</svg>\n";
  return svg;
}

util::Status write_pgm(const std::string& path,
                       const tensor::Tensor<double>& image) {
  if (image.rank() != 2) {
    return util::Status::err("write_pgm expects a rank-2 tensor", "invalid");
  }
  return write_pgm_u8(path, tensor::to_u8_normalized(image));
}

util::Status write_pgm_u8(const std::string& path,
                          const tensor::Tensor<uint8_t>& image) {
  if (image.rank() != 2) {
    return util::Status::err("write_pgm_u8 expects a rank-2 tensor", "invalid");
  }
  std::string header = util::format("P5\n%zu %zu\n255\n", image.dim(1), image.dim(0));
  std::vector<uint8_t> out;
  out.reserve(header.size() + image.size());
  out.insert(out.end(), header.begin(), header.end());
  out.insert(out.end(), image.data().begin(), image.data().end());
  return util::write_file(path, out);
}

util::Status write_ppm(const std::string& path,
                       const tensor::Tensor<uint8_t>& rgb) {
  if (rgb.rank() != 3 || rgb.dim(2) != 3) {
    return util::Status::err("write_ppm expects [H, W, 3]", "invalid");
  }
  std::string header = util::format("P6\n%zu %zu\n255\n", rgb.dim(1), rgb.dim(0));
  std::vector<uint8_t> out;
  out.reserve(header.size() + rgb.size());
  out.insert(out.end(), header.begin(), header.end());
  out.insert(out.end(), rgb.data().begin(), rgb.data().end());
  return util::write_file(path, out);
}

tensor::Tensor<uint8_t> gray_to_rgb_with_boxes(
    const tensor::Tensor<uint8_t>& gray, const std::vector<util::Box>& boxes,
    uint8_t r, uint8_t g, uint8_t b) {
  assert(gray.rank() == 2);
  const size_t h = gray.dim(0), w = gray.dim(1);
  tensor::Tensor<uint8_t> rgb(tensor::Shape{h, w, 3});
  for (size_t i = 0; i < h; ++i) {
    for (size_t j = 0; j < w; ++j) {
      uint8_t v = gray(i, j);
      rgb(i, j, 0) = v;
      rgb(i, j, 1) = v;
      rgb(i, j, 2) = v;
    }
  }
  auto put = [&](long yy, long xx) {
    if (yy < 0 || xx < 0 || yy >= static_cast<long>(h) || xx >= static_cast<long>(w)) return;
    rgb(static_cast<size_t>(yy), static_cast<size_t>(xx), 0) = r;
    rgb(static_cast<size_t>(yy), static_cast<size_t>(xx), 1) = g;
    rgb(static_cast<size_t>(yy), static_cast<size_t>(xx), 2) = b;
  };
  for (const auto& box : boxes) {
    long x1 = static_cast<long>(std::lround(box.x));
    long y1 = static_cast<long>(std::lround(box.y));
    long x2 = static_cast<long>(std::lround(box.x2()));
    long y2 = static_cast<long>(std::lround(box.y2()));
    for (long xx = x1; xx <= x2; ++xx) {
      put(y1, xx);
      put(y2, xx);
    }
    for (long yy = y1; yy <= y2; ++yy) {
      put(yy, x1);
      put(yy, x2);
    }
  }
  return rgb;
}

}  // namespace pico::analysis

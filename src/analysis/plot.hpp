#pragma once
// Plot artifact writers for the portal: SVG line charts (spectra, time
// series) and PGM/PPM raster images (intensity maps, annotated frames).
// Self-contained text formats keep the portal pages dependency-free.
#include <string>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/geometry.hpp"
#include "util/result.hpp"

namespace pico::analysis {

struct LinePlotConfig {
  std::string title;
  std::string x_label;
  std::string y_label;
  int width_px = 720;
  int height_px = 360;
  /// Mark these x positions with labeled vertical ticks (e.g. element lines).
  std::vector<std::pair<double, std::string>> annotations;
};

/// Render y(x) as an SVG document string.
std::string render_line_svg(const std::vector<double>& x,
                            const std::vector<double>& y,
                            const LinePlotConfig& config);

/// Write a grayscale image (min-max normalized) as binary PGM (P5).
util::Status write_pgm(const std::string& path,
                       const tensor::Tensor<double>& image);

/// Write an 8-bit grayscale image as PGM without rescaling.
util::Status write_pgm_u8(const std::string& path,
                          const tensor::Tensor<uint8_t>& image);

/// Write an RGB image as binary PPM (P6). `rgb` is [H, W, 3] u8.
util::Status write_ppm(const std::string& path,
                       const tensor::Tensor<uint8_t>& rgb);

/// Grayscale -> RGB with boxes burned in (annotated detection frames).
tensor::Tensor<uint8_t> gray_to_rgb_with_boxes(
    const tensor::Tensor<uint8_t>& gray, const std::vector<util::Box>& boxes,
    uint8_t r = 255, uint8_t g = 140, uint8_t b = 0);

}  // namespace pico::analysis

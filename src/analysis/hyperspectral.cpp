#include "analysis/hyperspectral.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>

#include "tensor/ops.hpp"

namespace pico::analysis {

tensor::Tensor<double> intensity_map(const tensor::Tensor<double>& cube,
                                     util::ThreadPool* pool) {
  assert(cube.rank() == 3);
  return pool ? tensor::sum_axis3(cube, 2, *pool) : tensor::sum_axis3(cube, 2);
}

tensor::Tensor<double> sum_spectrum(const tensor::Tensor<double>& cube,
                                    util::ThreadPool* pool) {
  assert(cube.rank() == 3);
  return pool ? tensor::sum_keep_axis3(cube, 2, *pool)
              : tensor::sum_keep_axis3(cube, 2);
}

std::vector<Peak> find_peaks(const tensor::Tensor<double>& spectrum,
                             const std::vector<double>& energy_axis,
                             const PeakFindConfig& cfg) {
  assert(spectrum.rank() == 1);
  const size_t n = spectrum.size();
  assert(energy_axis.size() == n);
  std::vector<Peak> peaks;
  if (n < 3) return peaks;

  std::vector<double> window_buf;
  for (size_t k = 1; k + 1 < n; ++k) {
    double v = spectrum(k);
    if (v <= spectrum(k - 1) || v < spectrum(k + 1)) continue;  // not a local max

    // Local continuum estimate: median over a window around k (peak channels
    // included — with a wide window the median tracks the background).
    size_t lo = k > cfg.window ? k - cfg.window : 0;
    size_t hi = std::min(n - 1, k + cfg.window);
    window_buf.clear();
    for (size_t i = lo; i <= hi; ++i) window_buf.push_back(spectrum(i));
    std::nth_element(window_buf.begin(),
                     window_buf.begin() + static_cast<ptrdiff_t>(window_buf.size() / 2),
                     window_buf.end());
    double local_median = window_buf[window_buf.size() / 2];

    double floor = std::max(local_median, 1e-12);
    if (v < cfg.prominence_factor * floor) continue;
    double height = v - local_median;
    if (height < cfg.min_height) continue;

    peaks.push_back(Peak{k, energy_axis[k], height, v / floor});
  }

  // Merge shoulders: keep only the tallest peak within +/-2 channels.
  std::sort(peaks.begin(), peaks.end(),
            [](const Peak& a, const Peak& b) { return a.height > b.height; });
  std::vector<Peak> merged;
  for (const auto& p : peaks) {
    bool shadowed = false;
    for (const auto& m : merged) {
      if (p.channel + 2 >= m.channel && m.channel + 2 >= p.channel) {
        shadowed = true;
        break;
      }
    }
    if (!shadowed) merged.push_back(p);
    if (merged.size() >= cfg.max_peaks) break;
  }
  std::sort(merged.begin(), merged.end(),
            [](const Peak& a, const Peak& b) { return a.channel < b.channel; });
  return merged;
}

std::vector<ElementMatch> identify_elements(
    const std::vector<Peak>& peaks, const instrument::XRayLineLibrary& library,
    double tolerance_kev) {
  std::vector<ElementMatch> matches;
  for (const auto& element : library.elements()) {
    ElementMatch m;
    m.symbol = element.symbol;
    // Find the strongest line of this element in the observable range.
    const instrument::XRayLine* primary = nullptr;
    for (const auto& line : element.lines) {
      if (!primary || line.relative_weight > primary->relative_weight) {
        primary = &line;
      }
    }
    bool primary_matched = false;
    for (const auto& line : element.lines) {
      for (const auto& peak : peaks) {
        if (std::abs(peak.energy_kev - line.energy_kev) <= tolerance_kev) {
          m.score += peak.height * line.relative_weight;
          m.matched_kev.push_back(peak.energy_kev);
          if (&line == primary) primary_matched = true;
          break;  // a line matches at most one peak
        }
      }
    }
    if (primary_matched && m.score > 0) matches.push_back(std::move(m));
  }
  std::sort(matches.begin(), matches.end(),
            [](const ElementMatch& a, const ElementMatch& b) {
              return a.score > b.score;
            });
  double total = 0;
  for (const auto& m : matches) total += m.score;
  if (total > 0) {
    for (auto& m : matches) m.fraction = m.score / total;
  }
  return matches;
}

tensor::Tensor<double> element_map(const tensor::Tensor<double>& cube,
                                   const std::vector<double>& energy_axis,
                                   double line_kev,
                                   double window_half_width_kev) {
  assert(cube.rank() == 3 && energy_axis.size() == cube.dim(2));
  const size_t h = cube.dim(0), w = cube.dim(1), e = cube.dim(2);
  tensor::Tensor<double> out(tensor::Shape{h, w});
  // Channel window covering [line - hw, line + hw].
  size_t k_lo = e, k_hi = 0;
  for (size_t k = 0; k < e; ++k) {
    if (std::abs(energy_axis[k] - line_kev) <= window_half_width_kev) {
      k_lo = std::min(k_lo, k);
      k_hi = std::max(k_hi, k);
    }
  }
  if (k_lo > k_hi) return out;  // line outside the acquisition range
  for (size_t i = 0; i < h; ++i) {
    for (size_t j = 0; j < w; ++j) {
      double acc = 0;
      const double* p = &cube(i, j, 0);
      for (size_t k = k_lo; k <= k_hi; ++k) acc += p[k];
      out(i, j) = acc;
    }
  }
  return out;
}

util::Json HyperspectralAnalysis::to_json() const {
  util::Json peaks_json = util::Json::array();
  for (const auto& p : peaks) {
    peaks_json.push_back(util::Json::object({
        {"energy_kev", p.energy_kev},
        {"height", p.height},
    }));
  }
  util::Json elements_json = util::Json::array();
  for (const auto& e : elements) {
    elements_json.push_back(util::Json::object({
        {"symbol", e.symbol},
        {"score", e.score},
        {"fraction", e.fraction},
    }));
  }
  return util::Json::object({
      {"image_height", static_cast<int64_t>(intensity.rank() == 2 ? intensity.dim(0) : 0)},
      {"image_width", static_cast<int64_t>(intensity.rank() == 2 ? intensity.dim(1) : 0)},
      {"channels", static_cast<int64_t>(spectrum.size())},
      {"total_counts", tensor::sum_value(spectrum)},
      {"peaks", peaks_json},
      {"elements", elements_json},
  });
}

HyperspectralAnalysis analyze_hyperspectral(
    const tensor::Tensor<double>& cube, const std::vector<double>& energy_axis,
    const PeakFindConfig& config, util::ThreadPool* pool) {
  HyperspectralAnalysis out;
  out.intensity = intensity_map(cube, pool);
  out.spectrum = sum_spectrum(cube, pool);
  out.peaks = find_peaks(out.spectrum, energy_axis, config);
  out.elements =
      identify_elements(out.peaks, instrument::XRayLineLibrary::standard());
  return out;
}

}  // namespace pico::analysis

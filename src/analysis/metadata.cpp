#include "analysis/metadata.hpp"

#include "emd/schema.hpp"

namespace pico::analysis {

using util::Json;

Json dataset_inventory(const emd::File& file) {
  Json signals = Json::array();
  const emd::Group* data = file.root.find_group(emd::Paths::kData);
  if (data) {
    for (const auto& [name, group] : data->groups) {
      auto ds_it = group.datasets.find("data");
      if (ds_it == group.datasets.end()) continue;
      const emd::Dataset& ds = ds_it->second;
      Json shape = Json::array();
      for (size_t d : ds.shape()) shape.push_back(static_cast<int64_t>(d));
      Json axes = Json::array();
      auto axes_it = group.attrs.find("axes");
      if (axes_it != group.attrs.end()) axes = axes_it->second;
      auto kind_it = group.attrs.find("signal_kind");
      signals.push_back(Json::object({
          {"name", name},
          {"kind", kind_it != group.attrs.end() ? kind_it->second : Json()},
          {"dtype", std::string(tensor::dtype_name(ds.dtype()))},
          {"shape", shape},
          {"axes", axes},
          {"nbytes", static_cast<int64_t>(ds.nbytes())},
      }));
    }
  }
  return signals;
}

util::Result<Json> extract_metadata(const emd::File& file) {
  using R = util::Result<Json>;
  const emd::Group* data = file.root.find_group(emd::Paths::kData);
  if (!data || data->groups.empty()) {
    return R::err("EMD file has no data signals", "schema");
  }

  Json out = Json::object();

  auto acquired = file.root.attrs.find("acquired");
  out["acquired"] = acquired != file.root.attrs.end() ? acquired->second : Json();

  const emd::Group* mic = file.root.find_group(emd::Paths::kMicroscope);
  if (mic) {
    auto settings = mic->attrs.find("settings");
    out["microscope"] = settings != mic->attrs.end() ? settings->second : Json();
  } else {
    out["microscope"] = Json();
  }

  const emd::Group* sample = file.root.find_group(emd::Paths::kSample);
  if (sample) {
    auto desc = sample->attrs.find("description");
    out["sample"] = desc != sample->attrs.end() ? desc->second : Json();
  }

  const emd::Group* user = file.root.find_group(emd::Paths::kUser);
  if (user) {
    auto op = user->attrs.find("operator");
    out["operator"] = op != user->attrs.end() ? op->second : Json();
  }

  // Software block (versioning travels in the microscope settings).
  const Json& settings = out["microscope"];
  out["software"] = Json::object({
      {"name", settings.at("software")},
      {"version", settings.at("software_version")},
  });

  out["signals"] = dataset_inventory(file);
  out["payload_bytes"] = static_cast<int64_t>(file.payload_bytes());
  return R::ok(std::move(out));
}

}  // namespace pico::analysis

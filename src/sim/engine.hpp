#pragma once
// Discrete-event simulation engine. All facility services (network, PBS
// scheduler, transfer/compute/search services, flow orchestrator) are actors
// that schedule callbacks here. Event order is (time, sequence), so identical
// seeds yield byte-identical campaign reports.
//
// Two interchangeable queue backends honour that contract bit-for-bit:
//
//   wheel (default)  - hierarchical bucketed timer wheel (sim/wheel.hpp):
//                      O(1) schedule and cancel, occupancy-bitmap advance.
//                      This is what lets 10^5-10^6 concurrent flows schedule
//                      and cancel events without a global O(log n) heap.
//   heap             - the original global std::priority_queue, kept as a
//                      reference twin for differential tests and A13 benches.
//
// Select with PICO_SCHED=heap|wheel (or the explicit constructor). Cancelled
// events are reclaimed lazily: each backend compacts once cancelled entries
// outnumber live ones, instead of letting them ride the queue to their
// timestamps.
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "sim/time.hpp"
#include "sim/wheel.hpp"

namespace pico::sim {

/// Handle for a scheduled event; allows cancellation.
class EventHandle {
 public:
  EventHandle() = default;
  /// Cancel the event if it has not fired yet. Safe to call repeatedly and
  /// after the engine is gone. O(1): the queued entry is reclaimed lazily.
  void cancel();
  bool valid() const { return state_ != nullptr; }

 private:
  friend class Engine;
  /// Cancel bookkeeping shared by the engine and every outstanding handle;
  /// shared ownership so a handle outliving the engine stays safe.
  struct Counters {
    uint64_t cancelled_total = 0;
    size_t cancelled_pending = 0;
  };
  EventHandle(std::shared_ptr<EventState> s, std::shared_ptr<Counters> c)
      : state_(std::move(s)), counters_(std::move(c)) {}
  std::shared_ptr<EventState> state_;
  std::shared_ptr<Counters> counters_;
};

class Engine {
 public:
  enum class Backend { Heap, Wheel };

  /// Backend from PICO_SCHED ("heap" / "wheel"); wheel when unset or empty.
  Engine();
  explicit Engine(Backend backend);
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `fn` to run at absolute time `at` (must be >= now).
  EventHandle schedule_at(SimTime at, std::function<void()> fn);

  /// Schedule `fn` to run `delay` from now.
  EventHandle schedule_after(Duration delay, std::function<void()> fn);

  /// Fire-and-forget twins: no cancellation handle, so no per-event control
  /// block. The flow orchestrator's hot paths (polls, retries, hops) use
  /// these — at 10^5 concurrent runs the saved allocation is material.
  void post_at(SimTime at, std::function<void()> fn);
  void post_after(Duration delay, std::function<void()> fn);

  /// Run until the event queue drains or `until` is reached (events scheduled
  /// beyond `until` stay queued; now() advances to at most `until`).
  void run_until(SimTime until);

  /// Run until the queue is empty.
  void run();

  /// True if no events remain (cancelled-but-unreclaimed entries count).
  bool idle() const { return queue_depth() == 0; }

  /// Number of events processed so far (diagnostics/tests).
  uint64_t events_processed() const { return events_processed_; }

  /// Entries currently queued, including cancelled ones awaiting reclaim
  /// (exported as the sim_queue_depth gauge).
  size_t queue_depth() const {
    return backend_ == Backend::Heap ? heap_.size() : wheel_.size();
  }
  /// Cancellations observed over the engine's lifetime (exported as the
  /// sim_events_cancelled_total counter).
  uint64_t cancelled_total() const { return counters_->cancelled_total; }
  /// Cancelled entries not yet reclaimed from the queue.
  size_t cancelled_pending() const { return counters_->cancelled_pending; }
  /// Lazy compaction sweeps performed (diagnostics/tests).
  uint64_t compactions() const { return compactions_; }

  const char* backend_name() const {
    return backend_ == Backend::Heap ? "heap" : "wheel";
  }

 private:
  struct HeapLater {
    bool operator()(const SchedEntry& a, const SchedEntry& b) const {
      if (a.at_ns != b.at_ns) return a.at_ns > b.at_ns;
      return a.seq > b.seq;
    }
  };

  void enqueue(SimTime at, std::function<void()> fn,
               std::shared_ptr<EventState> state);
  bool pop_next(int64_t limit_ns, SchedEntry* out);
  /// Fire `entry` unless cancelled; returns true if it ran.
  bool fire(SchedEntry& entry);
  /// Reclaim cancelled entries once they outnumber live ones.
  void maybe_compact();
  /// Prefetch the likely-next entry's functor target and cancel state.
  void prefetch_next() const;

  Backend backend_;
  SimTime now_ = SimTime::zero();
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  uint64_t compactions_ = 0;
  std::shared_ptr<EventHandle::Counters> counters_;
  std::vector<SchedEntry> heap_;  ///< Backend::Heap: binary heap (HeapLater)
  TimerWheel wheel_;              ///< Backend::Wheel
};

}  // namespace pico::sim

#pragma once
// Discrete-event simulation engine. All facility services (network, PBS
// scheduler, transfer/compute/search services, flow orchestrator) are actors
// that schedule callbacks here. Event order is (time, sequence), so identical
// seeds yield byte-identical campaign reports.
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace pico::sim {

/// Handle for a scheduled event; allows cancellation.
class EventHandle {
 public:
  EventHandle() = default;
  /// Cancel the event if it has not fired yet. Safe to call repeatedly.
  void cancel();
  bool valid() const { return state_ != nullptr; }

 private:
  friend class Engine;
  struct State {
    bool cancelled = false;
  };
  explicit EventHandle(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `fn` to run at absolute time `at` (must be >= now).
  EventHandle schedule_at(SimTime at, std::function<void()> fn);

  /// Schedule `fn` to run `delay` from now.
  EventHandle schedule_after(Duration delay, std::function<void()> fn);

  /// Run until the event queue drains or `until` is reached (events scheduled
  /// beyond `until` stay queued; now() advances to at most `until`).
  void run_until(SimTime until);

  /// Run until the queue is empty.
  void run();

  /// True if no events remain.
  bool idle() const { return queue_.empty(); }

  /// Number of events processed so far (diagnostics/tests).
  uint64_t events_processed() const { return events_processed_; }

 private:
  struct Entry {
    SimTime at;
    uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<EventHandle::State> state;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = SimTime::zero();
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

}  // namespace pico::sim

#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "util/timefmt.hpp"

namespace pico::sim {

std::string to_string(SimTime t) {
  return util::format_duration(t.seconds());
}

void EventHandle::cancel() {
  if (!state_ || state_->cancelled || state_->fired) return;
  state_->cancelled = true;
  if (counters_) {
    ++counters_->cancelled_total;
    ++counters_->cancelled_pending;
  }
}

namespace {
Engine::Backend backend_from_env() {
  const char* env = std::getenv("PICO_SCHED");
  if (env && std::strcmp(env, "heap") == 0) return Engine::Backend::Heap;
  return Engine::Backend::Wheel;
}
}  // namespace

Engine::Engine() : Engine(backend_from_env()) {}

Engine::Engine(Backend backend)
    : backend_(backend),
      counters_(std::make_shared<EventHandle::Counters>()) {}

void Engine::enqueue(SimTime at, std::function<void()> fn,
                     std::shared_ptr<EventState> state) {
  assert(at >= now_ && "cannot schedule into the past");
  SchedEntry entry{at.ns, next_seq_++, std::move(fn), std::move(state)};
  if (backend_ == Backend::Heap) {
    heap_.push_back(std::move(entry));
    std::push_heap(heap_.begin(), heap_.end(), HeapLater{});
  } else {
    wheel_.insert(std::move(entry));
  }
  maybe_compact();
}

EventHandle Engine::schedule_at(SimTime at, std::function<void()> fn) {
  auto state = std::make_shared<EventState>();
  EventHandle handle(state, counters_);
  enqueue(at, std::move(fn), std::move(state));
  return handle;
}

EventHandle Engine::schedule_after(Duration delay, std::function<void()> fn) {
  assert(delay.ns >= 0);
  if (delay.ns < 0) delay.ns = 0;  // never schedule into the past
  return schedule_at(now_ + delay, std::move(fn));
}

void Engine::post_at(SimTime at, std::function<void()> fn) {
  enqueue(at, std::move(fn), nullptr);
}

void Engine::post_after(Duration delay, std::function<void()> fn) {
  assert(delay.ns >= 0);
  if (delay.ns < 0) delay.ns = 0;
  post_at(now_ + delay, std::move(fn));
}

bool Engine::pop_next(int64_t limit_ns, SchedEntry* out) {
  if (backend_ == Backend::Wheel) return wheel_.pop_next(limit_ns, out);
  if (heap_.empty() || heap_.front().at_ns > limit_ns) return false;
  std::pop_heap(heap_.begin(), heap_.end(), HeapLater{});
  *out = std::move(heap_.back());
  heap_.pop_back();
  return true;
}

bool Engine::fire(SchedEntry& entry) {
  now_ = SimTime{entry.at_ns};
  if (entry.state) {
    if (entry.state->cancelled) {
      --counters_->cancelled_pending;
      return false;
    }
    entry.state->fired = true;
  }
  ++events_processed_;
  entry.fn();
  return true;
}

void Engine::maybe_compact() {
  // Sweep once cancelled entries outnumber live ones, but never for small
  // queues: each sweep is O(queue), so a low floor lets a workload that
  // cancels a couple of timers per completion (10^5 flows -> 2*10^5 timer
  // cancels) trigger thousands of end-of-run sweeps. 8192 dead entries is
  // ~0.5 MB of queue slack, amortized against O(8192) reclaimed per sweep.
  size_t pending = counters_->cancelled_pending;
  if (pending < 8192 || pending * 2 <= queue_depth()) return;
  size_t removed;
  if (backend_ == Backend::Heap) {
    size_t before = heap_.size();
    heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                               [](const SchedEntry& e) {
                                 return e.state && e.state->cancelled;
                               }),
                heap_.end());
    removed = before - heap_.size();
    std::make_heap(heap_.begin(), heap_.end(), HeapLater{});
  } else {
    removed = wheel_.compact();
  }
  counters_->cancelled_pending -= removed;
  ++compactions_;
}

void Engine::prefetch_next() const {
#if defined(__GNUC__)
  const SchedEntry* next = nullptr;
  if (backend_ == Backend::Wheel) {
    next = wheel_.peek_due();
  } else if (!heap_.empty()) {
    next = heap_.data();
  }
  if (!next) return;
  // Hot-path functors capture the owning record's pointer as their first
  // word; read it out of the std::function's inline storage as an opaque
  // prefetch hint. For heap-allocated functors that word is the heap block
  // pointer — also worth warming. Prefetching an arbitrary value is safe
  // (it never faults), so a wrong guess costs nothing.
  void* hint;
  std::memcpy(&hint, reinterpret_cast<const char*>(&next->fn), sizeof(hint));
  __builtin_prefetch(hint);
  if (next->state) __builtin_prefetch(next->state.get());
#endif
}

void Engine::run_until(SimTime until) {
  SchedEntry entry;
  while (pop_next(until.ns, &entry)) {
    prefetch_next();
    fire(entry);
    maybe_compact();
  }
  if (now_ < until) now_ = until;
}

void Engine::run() {
  SchedEntry entry;
  while (pop_next(std::numeric_limits<int64_t>::max(), &entry)) {
    prefetch_next();
    fire(entry);
    maybe_compact();
  }
}

}  // namespace pico::sim

#include "sim/engine.hpp"

#include <cassert>

#include "util/timefmt.hpp"

namespace pico::sim {

std::string to_string(SimTime t) {
  return util::format_duration(t.seconds());
}

void EventHandle::cancel() {
  if (state_) state_->cancelled = true;
}

EventHandle Engine::schedule_at(SimTime at, std::function<void()> fn) {
  assert(at >= now_ && "cannot schedule into the past");
  auto state = std::make_shared<EventHandle::State>();
  queue_.push(Entry{at, next_seq_++, std::move(fn), state});
  return EventHandle(state);
}

EventHandle Engine::schedule_after(Duration delay, std::function<void()> fn) {
  assert(delay.ns >= 0);
  if (delay.ns < 0) delay.ns = 0;  // never schedule into the past
  return schedule_at(now_ + delay, std::move(fn));
}

void Engine::run_until(SimTime until) {
  while (!queue_.empty() && queue_.top().at <= until) {
    Entry e = queue_.top();
    queue_.pop();
    now_ = e.at;
    if (e.state->cancelled) continue;
    ++events_processed_;
    e.fn();
  }
  if (now_ < until) now_ = until;
}

void Engine::run() {
  while (!queue_.empty()) {
    Entry e = queue_.top();
    queue_.pop();
    now_ = e.at;
    if (e.state->cancelled) continue;
    ++events_processed_;
    e.fn();
  }
}

}  // namespace pico::sim

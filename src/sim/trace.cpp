#include "sim/trace.hpp"

#include <algorithm>

namespace pico::sim {

std::vector<const Span*> Trace::select(const std::string& component,
                                       const std::string& category) const {
  std::vector<const Span*> out;
  for (const auto& s : spans_) {
    if (!component.empty() && s.component != component) continue;
    if (!category.empty() && s.category != category) continue;
    out.push_back(&s);
  }
  return out;
}

const Span* Trace::find(const std::string& component,
                        const std::string& category,
                        const std::string& label) const {
  for (const auto& s : spans_) {
    if (s.component == component && s.category == category &&
        s.label == label) {
      return &s;
    }
  }
  return nullptr;
}

std::vector<const Span*> Trace::children_of(uint64_t parent_id) const {
  std::vector<const Span*> out;
  for (const auto& s : spans_) {
    if (s.parent_id == parent_id && s.span_id != 0) out.push_back(&s);
  }
  return out;
}

std::vector<const Span*> Trace::sorted_spans() const {
  std::vector<const Span*> out;
  out.reserve(spans_.size());
  for (const auto& s : spans_) out.push_back(&s);
  std::sort(out.begin(), out.end(), [](const Span* a, const Span* b) {
    if (a->start.ns != b->start.ns) return a->start.ns < b->start.ns;
    if (a->span_id != b->span_id) return a->span_id < b->span_id;
    return a->seq < b->seq;
  });
  return out;
}

namespace {

/// Events sorted by timestamp; stable keeps append order for equal stamps.
std::vector<const SpanEvent*> sorted_events(const Span& s) {
  std::vector<const SpanEvent*> out;
  out.reserve(s.events.size());
  for (const auto& e : s.events) out.push_back(&e);
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanEvent* a, const SpanEvent* b) {
                     return a->at.ns < b->at.ns;
                   });
  return out;
}

}  // namespace

std::string Trace::to_jsonl() const {
  std::string out;
  for (const Span* sp : sorted_spans()) {
    const Span& s = *sp;
    util::Json j = util::Json::object({
        {"component", s.component},
        {"category", s.category},
        {"label", s.label},
        {"start_s", s.start.seconds()},
        {"end_s", s.end.seconds()},
        {"attrs", s.attrs},
    });
    if (s.span_id != 0) {
      j["trace_id"] = s.trace_id;
      j["span_id"] = s.span_id;
      j["parent_id"] = s.parent_id;
    }
    if (!s.events.empty()) {
      util::Json events = util::Json::array();
      for (const SpanEvent* e : sorted_events(s)) {
        events.push_back(util::Json::object({
            {"name", e->name},
            {"at_s", e->at.seconds()},
            {"attrs", e->attrs},
        }));
      }
      j["events"] = std::move(events);
    }
    out += j.dump();
    out.push_back('\n');
  }
  return out;
}

}  // namespace pico::sim

#include "sim/trace.hpp"

namespace pico::sim {

std::vector<const Span*> Trace::select(const std::string& component,
                                       const std::string& category) const {
  std::vector<const Span*> out;
  for (const auto& s : spans_) {
    if (!component.empty() && s.component != component) continue;
    if (!category.empty() && s.category != category) continue;
    out.push_back(&s);
  }
  return out;
}

std::string Trace::to_jsonl() const {
  std::string out;
  for (const auto& s : spans_) {
    util::Json j = util::Json::object({
        {"component", s.component},
        {"category", s.category},
        {"label", s.label},
        {"start_s", s.start.seconds()},
        {"end_s", s.end.seconds()},
        {"attrs", s.attrs},
    });
    out += j.dump();
    out.push_back('\n');
  }
  return out;
}

}  // namespace pico::sim

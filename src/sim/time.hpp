#pragma once
// Virtual time for the facility simulation. Integer nanoseconds keep event
// ordering exact and deterministic (no floating-point tie ambiguity).
#include <compare>
#include <cstdint>
#include <string>

namespace pico::sim {

/// A point in virtual time, in nanoseconds since campaign epoch.
struct SimTime {
  int64_t ns = 0;

  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime from_seconds(double s) {
    return SimTime{static_cast<int64_t>(s * 1e9)};
  }
  static constexpr SimTime from_millis(double ms) {
    return SimTime{static_cast<int64_t>(ms * 1e6)};
  }
  constexpr double seconds() const { return static_cast<double>(ns) * 1e-9; }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;
  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime{a.ns + b.ns};
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime{a.ns - b.ns};
  }
};

/// A span of virtual time. Distinct type to keep signatures self-documenting.
struct Duration {
  int64_t ns = 0;

  static constexpr Duration zero() { return Duration{0}; }
  static constexpr Duration from_seconds(double s) {
    return Duration{static_cast<int64_t>(s * 1e9)};
  }
  static constexpr Duration from_millis(double ms) {
    return Duration{static_cast<int64_t>(ms * 1e6)};
  }
  constexpr double seconds() const { return static_cast<double>(ns) * 1e-9; }

  friend constexpr auto operator<=>(Duration, Duration) = default;
  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration{a.ns + b.ns};
  }
  friend constexpr Duration operator*(Duration a, double k) {
    return Duration{static_cast<int64_t>(static_cast<double>(a.ns) * k)};
  }
};

inline constexpr SimTime operator+(SimTime t, Duration d) {
  return SimTime{t.ns + d.ns};
}
inline constexpr Duration time_between(SimTime earlier, SimTime later) {
  return Duration{later.ns - earlier.ns};
}

/// "HH:MM:SS.mmm" rendering for logs.
std::string to_string(SimTime t);

}  // namespace pico::sim

#pragma once
// Hierarchical bucketed timer wheel: the O(1) event queue behind sim::Engine.
//
// 4 levels x 256 slots at ~1 ms granularity (2^20 ns per tick; byte k of the
// tick indexes level k), an overflow list for events beyond the ~52-day
// horizon, and a small (at, seq) min-heap of "due" entries holding everything
// at or before the wheel's current tick. The heap keeps the engine's
// documented FIFO contract exact: events fire in (time, sequence) order even
// when several distinct timestamps share one wheel tick.
//
// Placement rule: an entry lands at the level of the highest tick byte in
// which it differs from the current tick (Varghese-Lauer style). That makes
// slot -> time resolution unambiguous — an occupied slot at level k is always
// ahead of the current tick's byte k — so advancing never scans empty time:
// per-level 256-bit occupancy bitmaps give the next candidate in O(1), and
// each entry cascades at most once per level on its way down.
//
// Cancellation is O(1) (a flag on the entry's shared state); dead entries are
// reclaimed either when their slot drains or by compact(), which the engine
// invokes lazily once cancelled entries outnumber live ones.
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace pico::sim {

/// Shared cancellation state between an EventHandle and the queued entry.
struct EventState {
  bool cancelled = false;
  bool fired = false;  ///< set when the entry fires or is compacted away
};

/// A queued event. `state` is null for fire-and-forget posts (no handle).
struct SchedEntry {
  int64_t at_ns = 0;
  uint64_t seq = 0;
  std::function<void()> fn;
  std::shared_ptr<EventState> state;
};

class TimerWheel {
 public:
  static constexpr int kTickShiftNs = 20;  ///< 2^20 ns ~= 1.05 ms per tick
  static constexpr int kLevels = 4;
  static constexpr int kSlotsPerLevel = 256;

  /// Queue an entry. `at_ns` may be in the past relative to the wheel's
  /// current position (it goes straight to the due heap, exact order kept).
  void insert(SchedEntry entry);

  /// Pop the earliest entry with at_ns <= limit_ns, advancing the wheel's
  /// internal position (cascading levels) as needed. Returns false when no
  /// such entry remains; the wheel position is left untouched in that case.
  bool pop_next(int64_t limit_ns, SchedEntry* out);

  /// Remove every cancelled entry; returns how many were dropped. O(size).
  size_t compact();

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// The entry most likely to pop next (the due-heap front; null when the
  /// current tick is drained). The engine uses it to prefetch the next
  /// event's captured state while the current event runs — at 10^5+
  /// concurrent flows the captured run record is a guaranteed DRAM miss,
  /// and this overlaps it with useful work.
  const SchedEntry* peek_due() const {
    return due_.empty() ? nullptr : due_.data();
  }

 private:
  void push_due(SchedEntry entry);
  SchedEntry pop_due();
  /// Tick of the earliest level candidate (slot lower bound), or INT64_MAX.
  /// Sets *level to the candidate's level.
  int64_t next_candidate(int* level) const;
  void redistribute(int level, int slot);

  int64_t cur_tick_ = 0;
  size_t size_ = 0;
  /// Min-heap by (at_ns, seq): everything at or before cur_tick_.
  std::vector<SchedEntry> due_;
  std::vector<SchedEntry> slots_[kLevels][kSlotsPerLevel];
  uint64_t bitmap_[kLevels][kSlotsPerLevel / 64] = {};
  std::vector<SchedEntry> overflow_;
};

}  // namespace pico::sim

#include "sim/wheel.hpp"

#include <algorithm>
#include <bit>
#include <limits>

namespace pico::sim {

namespace {

constexpr int64_t kNoTick = std::numeric_limits<int64_t>::max();

struct DueLater {
  bool operator()(const SchedEntry& a, const SchedEntry& b) const {
    if (a.at_ns != b.at_ns) return a.at_ns > b.at_ns;
    return a.seq > b.seq;
  }
};

}  // namespace

void TimerWheel::push_due(SchedEntry entry) {
  due_.push_back(std::move(entry));
  std::push_heap(due_.begin(), due_.end(), DueLater{});
}

SchedEntry TimerWheel::pop_due() {
  std::pop_heap(due_.begin(), due_.end(), DueLater{});
  SchedEntry out = std::move(due_.back());
  due_.pop_back();
  return out;
}

void TimerWheel::insert(SchedEntry entry) {
  ++size_;
  int64_t tick = entry.at_ns >> kTickShiftNs;
  if (tick <= cur_tick_) {
    push_due(std::move(entry));
    return;
  }
  uint64_t diff = static_cast<uint64_t>(tick) ^ static_cast<uint64_t>(cur_tick_);
  if (diff >> (8 * kLevels)) {
    overflow_.push_back(std::move(entry));
    return;
  }
  int level = (63 - std::countl_zero(diff)) / 8;
  int slot = static_cast<int>((tick >> (8 * level)) & 0xFF);
  slots_[level][slot].push_back(std::move(entry));
  bitmap_[level][slot / 64] |= 1ull << (slot % 64);
}

int64_t TimerWheel::next_candidate(int* level) const {
  // Level-k candidates are always within the current level-(k+1) window while
  // higher-level candidates sit in later windows, so the first occupied level
  // (scanning low to high) owns the minimum.
  for (int k = 0; k < kLevels; ++k) {
    int from = static_cast<int>((cur_tick_ >> (8 * k)) & 0xFF) + 1;
    for (int w = from / 64; w < kSlotsPerLevel / 64; ++w) {
      uint64_t bits = bitmap_[k][w];
      if (w == from / 64) bits &= ~0ull << (from % 64);
      if (!bits) continue;
      int slot = w * 64 + std::countr_zero(bits);
      int64_t mask = (int64_t{1} << (8 * (k + 1))) - 1;
      *level = k;
      return (cur_tick_ & ~mask) | (static_cast<int64_t>(slot) << (8 * k));
    }
  }
  *level = -1;
  return kNoTick;
}

void TimerWheel::redistribute(int level, int slot) {
  std::vector<SchedEntry> pending;
  pending.swap(slots_[level][slot]);
  bitmap_[level][slot / 64] &= ~(1ull << (slot % 64));
  size_ -= pending.size();  // insert() re-counts each entry
  for (auto& e : pending) insert(std::move(e));
}

bool TimerWheel::pop_next(int64_t limit_ns, SchedEntry* out) {
  for (;;) {
    int64_t due_at = due_.empty() ? kNoTick : due_.front().at_ns;
    int level = -1;
    int64_t cand_tick = next_candidate(&level);
    int64_t cand_lower_ns = kNoTick;
    bool from_overflow = false;
    if (cand_tick != kNoTick) {
      cand_lower_ns = cand_tick << kTickShiftNs;
    } else if (!overflow_.empty()) {
      // Overflow entries are always beyond every in-level entry (they differ
      // from the current tick above byte 3), so they are only consulted once
      // the levels drain.
      int64_t mn = kNoTick;
      for (const auto& e : overflow_) mn = std::min(mn, e.at_ns);
      cand_lower_ns = mn;
      cand_tick = mn >> kTickShiftNs;
      from_overflow = true;
    }
    // A due entry at or before every remaining candidate fires first; ties
    // are impossible (due entries live at or before cur_tick_, candidates
    // strictly after it). When everything is empty all three sentinels are
    // INT64_MAX and the comparison degenerates — hence the explicit guard.
    if (due_at <= limit_ns && due_at <= cand_lower_ns) {
      if (due_.empty()) return false;  // wheel fully drained
      *out = pop_due();
      --size_;
      return true;
    }
    if (cand_lower_ns > limit_ns) return false;
    if (from_overflow) {
      cur_tick_ = cand_tick;
      std::vector<SchedEntry> pending;
      pending.swap(overflow_);
      size_ -= pending.size();
      for (auto& e : pending) insert(std::move(e));
      continue;
    }
    if (level == 0) {
      cur_tick_ = cand_tick;
      int slot = static_cast<int>(cand_tick & 0xFF);
      std::vector<SchedEntry>& bucket = slots_[0][slot];
      for (auto& e : bucket) push_due(std::move(e));
      bucket.clear();
      bitmap_[0][slot / 64] &= ~(1ull << (slot % 64));
      continue;
    }
    // Enter the candidate window at its base and cascade the slot down one
    // level; each entry cascades at most once per level, so advance stays
    // amortized O(1) per event.
    cur_tick_ = cand_tick;
    redistribute(level, static_cast<int>((cand_tick >> (8 * level)) & 0xFF));
  }
}

size_t TimerWheel::compact() {
  auto dead = [](const SchedEntry& e) { return e.state && e.state->cancelled; };
  size_t removed = 0;
  auto sweep = [&](std::vector<SchedEntry>& v) {
    size_t before = v.size();
    v.erase(std::remove_if(v.begin(), v.end(), dead), v.end());
    removed += before - v.size();
  };
  for (int k = 0; k < kLevels; ++k) {
    for (int s = 0; s < kSlotsPerLevel; ++s) {
      if (slots_[k][s].empty()) continue;
      sweep(slots_[k][s]);
      if (slots_[k][s].empty()) bitmap_[k][s / 64] &= ~(1ull << (s % 64));
    }
  }
  sweep(overflow_);
  size_t due_before = due_.size();
  sweep(due_);
  if (due_.size() != due_before) {
    std::make_heap(due_.begin(), due_.end(), DueLater{});
  }
  size_ -= removed;
  return removed;
}

}  // namespace pico::sim

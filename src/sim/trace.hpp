#pragma once
// Event trace recorder: services append structured spans ("transfer task X
// active 12.3s") that the campaign reporter aggregates into Table 1 / Fig 4
// statistics and that tests assert on.
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "util/json.hpp"

namespace pico::sim {

/// A completed interval attributed to a component and category.
struct Span {
  std::string component;  ///< e.g. "transfer", "compute", "flow"
  std::string category;   ///< e.g. "active", "overhead", "queue"
  std::string label;      ///< free-form: task/flow id
  SimTime start;
  SimTime end;
  util::Json attrs;       ///< extra structured attributes

  double duration_seconds() const { return (end - start).seconds(); }
};

/// Append-only trace. Not thread-safe (the sim engine is single-threaded).
class Trace {
 public:
  void add(Span span) { spans_.push_back(std::move(span)); }
  void clear() { spans_.clear(); }

  const std::vector<Span>& spans() const { return spans_; }

  /// All spans matching component (empty = any) and category (empty = any).
  std::vector<const Span*> select(const std::string& component,
                                  const std::string& category = "") const;

  /// Serialize to JSON lines for offline inspection.
  std::string to_jsonl() const;

 private:
  std::vector<Span> spans_;
};

}  // namespace pico::sim

#pragma once
// Event trace recorder: services append structured spans ("transfer task X
// active 12.3s") that the campaign reporter aggregates into Table 1 / Fig 4
// statistics and that tests assert on.
//
// Spans carry causal identity (trace_id / span_id / parent_id) so a campaign
// -> flow run -> step -> provider attempt forms a tree that the telemetry
// exporters (Chrome trace_event, JSONL) can render hierarchically. Ids are
// assigned by telemetry::Tracer; spans appended directly keep id 0 (roots).
#include <mutex>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "util/json.hpp"

namespace pico::sim {

/// A point annotation attached to a span (fault injections, breaker state
/// transitions, retry decisions).
struct SpanEvent {
  std::string name;
  SimTime at;
  util::Json attrs;
};

/// A completed interval attributed to a component and category.
struct Span {
  std::string component;  ///< e.g. "transfer", "compute", "flow"
  std::string category;   ///< e.g. "active", "overhead", "queue"
  std::string label;      ///< free-form: task/flow id
  SimTime start;
  SimTime end;
  util::Json attrs;       ///< extra structured attributes
  uint64_t trace_id = 0;  ///< campaign-scoped trace identity (0 = untraced)
  uint64_t span_id = 0;   ///< unique within the trace (0 = unassigned)
  uint64_t parent_id = 0; ///< causal parent span (0 = root)
  std::vector<SpanEvent> events;
  /// Recording order, assigned by Trace::add under its mutex. Exporters use
  /// it as the final sort-key tie-break (timestamp, span_id, seq) so spans
  /// closed at the same integer nanosecond — common with parallel data-plane
  /// workers — serialize in a stable order. Kept last so positional
  /// aggregate initializers written before it existed stay valid.
  uint64_t seq = 0;

  double duration_seconds() const { return (end - start).seconds(); }
};

/// Append-only trace. `add` is guarded by a mutex so parallel data-plane
/// workers may record concurrently with the (single-threaded) sim engine.
/// The read accessors (`spans`, `select`) hand out references into the
/// underlying vector and therefore require quiescence: call them only when no
/// writer is active (after engine().run() returns, or from the engine thread
/// when no pool work records spans) — the usual post-run reporting pattern.
class Trace {
 public:
  void add(Span span) {
    std::lock_guard lock(mu_);
    span.seq = next_seq_++;
    spans_.push_back(std::move(span));
  }
  void clear() {
    std::lock_guard lock(mu_);
    spans_.clear();
  }

  const std::vector<Span>& spans() const { return spans_; }

  /// All spans matching component (empty = any) and category (empty = any).
  std::vector<const Span*> select(const std::string& component,
                                  const std::string& category = "") const;

  /// First span matching (component, category, label), or nullptr.
  const Span* find(const std::string& component, const std::string& category,
                   const std::string& label) const;

  /// Completed children of `parent_id`, in recording order.
  std::vector<const Span*> children_of(uint64_t parent_id) const;

  /// Serialize to JSON lines for offline inspection. Lines are ordered by
  /// (start time, span_id, seq) and a span's events by (time, append order),
  /// so two runs of the same simulation produce byte-identical output.
  std::string to_jsonl() const;

  /// Spans sorted by the exporters' deterministic key: start.ns, then
  /// span_id, then recording seq.
  std::vector<const Span*> sorted_spans() const;

 private:
  mutable std::mutex mu_;
  std::vector<Span> spans_;
  uint64_t next_seq_ = 0;
};

}  // namespace pico::sim

#include "watcher/watcher.hpp"

#include <chrono>
#include <filesystem>
#include <fstream>

#include "util/strings.hpp"

namespace pico::watcher {

namespace fs = std::filesystem;

Checkpoint::Checkpoint(std::string journal_path)
    : journal_path_(std::move(journal_path)) {}

std::string Checkpoint::key(const std::string& path, int64_t size,
                            int64_t mtime_ns) {
  return path + "\t" + std::to_string(size) + "\t" + std::to_string(mtime_ns);
}

std::string Checkpoint::legacy_key(const std::string& path, int64_t size) {
  return path + "\t" + std::to_string(size);
}

util::Status Checkpoint::load() {
  entries_.clear();
  std::ifstream in(journal_path_);
  if (!in.is_open()) return util::Status::ok();  // fresh journal
  std::string line;
  while (std::getline(in, line)) {
    auto trimmed = util::trim(line);
    if (!trimmed.empty()) entries_.insert(std::string(trimmed));
  }
  return util::Status::ok();
}

bool Checkpoint::processed(const std::string& path, int64_t size,
                           int64_t mtime_ns) const {
  if (entries_.count(key(path, size, mtime_ns)) > 0) return true;
  // Pre-mtime journals recorded path + size only; honour them so an upgraded
  // client does not re-trigger every historical file.
  return entries_.count(legacy_key(path, size)) > 0;
}

util::Status Checkpoint::mark(const std::string& path, int64_t size,
                              int64_t mtime_ns) {
  std::string k = key(path, size, mtime_ns);
  if (!entries_.insert(k).second) return util::Status::ok();
  fs::path p(journal_path_);
  if (p.has_parent_path()) {
    std::error_code ec;
    fs::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(journal_path_, std::ios::app);
  if (!out.is_open()) {
    return util::Status::err("cannot append to journal " + journal_path_, "io");
  }
  out << k << "\n";
  return util::Status::ok();
}

DirectoryWatcher::DirectoryWatcher(WatcherConfig config, Checkpoint* checkpoint)
    : config_(std::move(config)), checkpoint_(checkpoint) {
  // Partial-write guard: a file first seen on this scan may still be
  // mid-write no matter what the config asks for. Emitting requires its
  // size + mtime to hold across at least two polls, so degenerate configs
  // (stable_scans <= 1, which would dispatch a half-landed acquisition) are
  // clamped up to the safe minimum.
  if (config_.stable_scans < 2) config_.stable_scans = 2;
}

bool DirectoryWatcher::extension_matches(const std::string& path) const {
  if (config_.extensions.empty()) return true;
  for (const auto& ext : config_.extensions) {
    if (util::ends_with(path, ext)) return true;
  }
  return false;
}

std::vector<FileEvent> DirectoryWatcher::scan_once() {
  std::vector<FileEvent> events;
  std::error_code ec;
  if (!fs::is_directory(config_.directory, ec)) return events;

  std::set<std::string> seen;
  for (const auto& entry : fs::directory_iterator(config_.directory, ec)) {
    if (ec) break;
    if (!entry.is_regular_file(ec)) continue;
    std::string path = entry.path().string();
    if (!extension_matches(path)) continue;
    int64_t size = static_cast<int64_t>(entry.file_size(ec));
    if (ec) continue;
    auto write_time = entry.last_write_time(ec);
    int64_t mtime_ns =
        ec ? 0
           : std::chrono::duration_cast<std::chrono::nanoseconds>(
                 write_time.time_since_epoch())
                 .count();
    seen.insert(path);

    if (checkpoint_ && checkpoint_->processed(path, size, mtime_ns)) continue;

    auto it = pending_.find(path);
    if (it == pending_.end()) {
      it = pending_.emplace(path, PendingFile{size, mtime_ns, 1}).first;
    } else if (it->second.size != size || it->second.mtime_ns != mtime_ns) {
      // Still being written (size growth or an in-place rewrite): restart
      // the stability count.
      it->second = PendingFile{size, mtime_ns, 1};
    } else {
      ++it->second.stable_count;
    }
    if (it->second.stable_count >= config_.stable_scans) {
      events.push_back(FileEvent{path, size, mtime_ns});
      if (checkpoint_) checkpoint_->mark(path, size, mtime_ns);
      pending_.erase(it);
    }
  }

  // Drop tracking state for files that vanished.
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (!seen.count(it->first)) {
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  return events;
}

}  // namespace pico::watcher

#pragma once
// Real-filesystem directory watcher + checkpoint journal: the on-instrument
// client application from Sec. 2.2.1. A polling scanner (the portable
// equivalent of the watchdog package) detects newly created files, waits for
// them to stabilize (instrument software writes large files incrementally),
// and fires a callback per new file. The checkpoint journal records processed
// files so a rebooted client does not re-trigger flows ("avoid undesired
// flow repeats ... after interruption").
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/result.hpp"

namespace pico::watcher {

/// Persistent set of already-processed files, keyed by path + size + mtime.
/// Size alone is not enough: an instrument rewriting an acquisition in place
/// at the same byte count is new data and must re-trigger, so the
/// modification time participates in the key. Journals written by older
/// builds (path + size only) are still honoured on load.
class Checkpoint {
 public:
  explicit Checkpoint(std::string journal_path);

  /// Load existing journal from disk (missing file = empty checkpoint).
  util::Status load();

  bool processed(const std::string& path, int64_t size,
                 int64_t mtime_ns = 0) const;

  /// Record and append to the journal file immediately (crash-safe).
  util::Status mark(const std::string& path, int64_t size,
                    int64_t mtime_ns = 0);

  size_t size() const { return entries_.size(); }

 private:
  static std::string key(const std::string& path, int64_t size,
                         int64_t mtime_ns);
  static std::string legacy_key(const std::string& path, int64_t size);
  std::string journal_path_;
  std::set<std::string> entries_;
};

struct WatcherConfig {
  std::string directory;
  /// Only react to files with one of these extensions (empty = all).
  std::vector<std::string> extensions = {".emd"};
  double poll_interval_s = 1.0;
  /// Consecutive stable size observations required before a file is
  /// considered complete. Values below 2 are clamped: a file must be seen
  /// with an unchanged size + mtime on at least two polls, otherwise an
  /// acquisition still streaming out of the instrument would be dispatched
  /// half-written.
  int stable_scans = 2;
};

/// Event describing a newly stable file.
struct FileEvent {
  std::string path;
  int64_t size = 0;
  int64_t mtime_ns = 0;  ///< last-write time, ns since filesystem epoch
};

/// Polling watcher over a real directory. Call scan_once() from your own
/// cadence (examples use a wall-clock loop; tests call it directly).
class DirectoryWatcher {
 public:
  DirectoryWatcher(WatcherConfig config, Checkpoint* checkpoint);

  /// One scan pass: returns files that just became stable and unprocessed.
  /// Each returned file is marked in the checkpoint.
  std::vector<FileEvent> scan_once();

  const WatcherConfig& config() const { return config_; }

 private:
  bool extension_matches(const std::string& path) const;

  WatcherConfig config_;
  Checkpoint* checkpoint_;
  /// Stability tracking: a change in either size or mtime restarts the count
  /// (a same-size in-place rewrite is still "being written").
  struct PendingFile {
    int64_t size = 0;
    int64_t mtime_ns = 0;
    int stable_count = 0;
  };
  std::map<std::string, PendingFile> pending_;
};

}  // namespace pico::watcher

#include "net/topology.hpp"

#include <algorithm>
#include <cassert>
#include <deque>

namespace pico::net {

NodeId Topology::add_node(const std::string& name) {
  assert(!node_ids_.count(name) && "duplicate node name");
  NodeId id = static_cast<NodeId>(node_names_.size());
  node_names_.push_back(name);
  node_ids_[name] = id;
  adjacency_.emplace_back();
  return id;
}

LinkId Topology::add_link(NodeId a, NodeId b, double capacity_bps,
                          sim::Duration latency, const std::string& name) {
  assert(a < node_names_.size() && b < node_names_.size());
  assert(capacity_bps > 0);
  LinkId id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{id, a, b, capacity_bps, latency,
                        name.empty() ? node_names_[a] + "<->" + node_names_[b]
                                     : name});
  adjacency_[a].push_back(id);
  adjacency_[b].push_back(id);
  return id;
}

LinkId Topology::add_link(const std::string& a, const std::string& b,
                          double capacity_bps, sim::Duration latency,
                          const std::string& name) {
  auto na = node(a);
  auto nb = node(b);
  assert(na && nb && "unknown node name");
  return add_link(na.value(), nb.value(), capacity_bps, latency, name);
}

util::Result<NodeId> Topology::node(const std::string& name) const {
  auto it = node_ids_.find(name);
  if (it == node_ids_.end()) {
    return util::Result<NodeId>::err("unknown node: " + name, "not_found");
  }
  return util::Result<NodeId>::ok(it->second);
}

const std::string& Topology::node_name(NodeId id) const {
  return node_names_.at(id);
}

const Link& Topology::link(LinkId id) const { return links_.at(id); }

Link& Topology::mutable_link(LinkId id) { return links_.at(id); }

void Topology::set_link_up(LinkId id, bool up) { links_.at(id).up = up; }

util::Result<LinkId> Topology::link_by_name(const std::string& name) const {
  for (const Link& l : links_) {
    if (l.name == name) return util::Result<LinkId>::ok(l.id);
  }
  return util::Result<LinkId>::err("unknown link: " + name, "not_found");
}

util::Result<std::vector<LinkId>> Topology::route(NodeId src,
                                                  NodeId dst) const {
  using R = util::Result<std::vector<LinkId>>;
  if (src >= node_names_.size() || dst >= node_names_.size()) {
    return R::err("route endpoints out of range", "not_found");
  }
  if (src == dst) return R::ok({});

  // BFS; parent_link records the link used to reach each node.
  constexpr LinkId kNone = static_cast<LinkId>(-1);
  std::vector<LinkId> parent_link(node_names_.size(), kNone);
  std::vector<bool> visited(node_names_.size(), false);
  std::deque<NodeId> frontier{src};
  visited[src] = true;
  while (!frontier.empty()) {
    NodeId cur = frontier.front();
    frontier.pop_front();
    for (LinkId lid : adjacency_[cur]) {
      const Link& l = links_[lid];
      if (!l.up) continue;
      NodeId next = l.a == cur ? l.b : l.a;
      if (visited[next]) continue;
      visited[next] = true;
      parent_link[next] = lid;
      if (next == dst) {
        std::vector<LinkId> path;
        NodeId walk = dst;
        while (walk != src) {
          LinkId plid = parent_link[walk];
          path.push_back(plid);
          const Link& pl = links_[plid];
          walk = pl.a == walk ? pl.b : pl.a;
        }
        std::reverse(path.begin(), path.end());
        return R::ok(std::move(path));
      }
      frontier.push_back(next);
    }
  }
  return R::err("no route from " + node_names_[src] + " to " +
                    node_names_[dst],
                "not_found");
}

sim::Duration Topology::route_latency(const std::vector<LinkId>& links) const {
  sim::Duration total = sim::Duration::zero();
  for (LinkId id : links) total = total + link(id).latency;
  return total;
}

}  // namespace pico::net

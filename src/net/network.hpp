#pragma once
// Fluid-flow network simulation with max-min fair bandwidth sharing.
//
// Concurrent Globus transfers in the paper contend on the 1 Gbps user switch;
// this model reproduces that contention: each active flow gets its max-min
// fair share of every link on its route, rates are recomputed whenever a flow
// starts or finishes, and completion events fire in virtual time.
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "net/topology.hpp"
#include "sim/engine.hpp"
#include "util/result.hpp"

namespace pico::net {

using FlowId = uint64_t;

/// Progress snapshot for an active flow.
struct FlowStatus {
  int64_t total_bytes = 0;
  int64_t transferred_bytes = 0;
  double current_rate_bps = 0;
  bool active = false;
};

class Network {
 public:
  Network(sim::Engine* engine, Topology* topology)
      : engine_(engine), topo_(topology) {}

  /// Begin moving `bytes` from src to dst. `on_complete` fires (in virtual
  /// time) when the last byte arrives; route latency is charged up front.
  /// `rate_cap_bps` (0 = unlimited) bounds this flow's rate regardless of
  /// link capacity — it models end-host limits (single-stream TCP, source
  /// disk) that keep real Globus transfers well below a 1 Gbps line rate.
  /// Fails if no route exists.
  util::Result<FlowId> start_flow(NodeId src, NodeId dst, int64_t bytes,
                                  std::function<void(FlowId)> on_complete,
                                  double rate_cap_bps = 0);

  /// Abort an active flow; its completion callback never fires.
  void cancel_flow(FlowId id);

  FlowStatus status(FlowId id) const;
  size_t active_flow_count() const { return flows_.size(); }

  /// Force a rate recomputation (call after mutating link capacities mid-run).
  void rates_changed();

  /// Total bytes carried over a link so far (both directions).
  double bytes_carried(LinkId id) const;

  /// Average utilization of a link over [0, now]: carried bits divided by
  /// capacity x elapsed time. In (0, 1]; 0 before any traffic.
  double average_utilization(LinkId id) const;

 private:
  struct ActiveFlow {
    FlowId id;
    std::vector<LinkId> route;
    double rate_cap_Bps = 0;  ///< 0 = uncapped
    double total_bytes;
    double transferred;     ///< bytes delivered as of `last_update`
    double rate_Bps;        ///< current fair-share rate, bytes/sec
    sim::SimTime last_update;
    bool started;           ///< false while the latency phase is pending
    std::function<void(FlowId)> on_complete;
  };

  void advance_progress();
  void recompute_rates();
  void reschedule_completion();
  void on_completion_event();

  sim::Engine* engine_;
  Topology* topo_;
  std::map<FlowId, ActiveFlow> flows_;
  std::map<LinkId, double> bytes_carried_;
  FlowId next_id_ = 1;
  sim::EventHandle completion_event_;
};

}  // namespace pico::net

#include "net/frame_channel.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "util/crc64.hpp"

namespace pico::net {

FrameChannel::FrameChannel(FrameChannelConfig cfg) : cfg_(cfg) {
  assert(cfg_.ring_capacity >= 1);
  assert(cfg_.credit_window >= 1);
  assert(cfg_.reorder_window >= 0);
}

int FrameChannel::subscribe() {
  Subscriber s;
  s.credits = cfg_.credit_window;
  subs_.push_back(std::move(s));
  return static_cast<int>(subs_.size()) - 1;
}

bool FrameChannel::needed_by_any(int64_t seq) const {
  for (const auto& s : subs_) {
    if (seq < s.cursor) continue;            // already consumed
    if (s.buffered.count(seq)) continue;     // subscriber holds its own copy
    if (s.satisfied.count(seq)) continue;    // spill path already covered it
    return true;
  }
  return false;
}

std::vector<Frame> FrameChannel::append(Frame f) {
  f.seq = next_seq_;
  ++next_seq_;
  if (ring_.empty()) base_seq_ = f.seq;
  ring_.push_back(std::move(f));

  std::vector<Frame> spilled;
  while (ring_.size() > static_cast<size_t>(cfg_.ring_capacity)) {
    Frame evicted = std::move(ring_.front());
    ring_.pop_front();
    base_seq_ = ring_.empty() ? next_seq_ : ring_.front().seq;
    if (needed_by_any(evicted.seq)) spilled.push_back(std::move(evicted));
  }
  return spilled;
}

std::vector<Frame> FrameChannel::publish(int64_t bytes, uint64_t crc64) {
  return append(Frame{0, bytes, crc64, nullptr});
}

std::vector<Frame> FrameChannel::publish(std::span<const uint8_t> payload) {
  auto lease = std::make_shared<util::BufferPool::Lease>(
      util::shared_buffer_pool().acquire(payload.size()));
  const uint64_t crc =
      util::crc64_copy(lease->data(), payload.data(), payload.size());
  return append(Frame{0, static_cast<int64_t>(payload.size()), crc,
                      std::move(lease)});
}

std::optional<Frame> FrameChannel::frame(int64_t seq) const {
  if (ring_.empty() || seq < base_seq_ ||
      seq >= base_seq_ + static_cast<int64_t>(ring_.size())) {
    return std::nullopt;
  }
  return ring_[static_cast<size_t>(seq - base_seq_)];
}

bool FrameChannel::take_credit(int sub, int64_t seq) {
  auto& s = subs_.at(static_cast<size_t>(sub));
  if (s.credited.count(seq)) return true;  // already holding one (idempotent)
  if (seq < s.cursor || s.satisfied.count(seq)) return true;  // moot send
  if (s.credits <= 0) return false;
  --s.credits;
  s.credited.insert(seq);
  return true;
}

int FrameChannel::credits(int sub) const {
  return subs_.at(static_cast<size_t>(sub)).credits;
}

void FrameChannel::release_passed_credits(Subscriber& sub) {
  while (!sub.credited.empty() && *sub.credited.begin() < sub.cursor) {
    sub.credited.erase(sub.credited.begin());
    sub.credits = std::min(sub.credits + 1, cfg_.credit_window);
  }
}

void FrameChannel::drain(Subscriber& sub, std::vector<Frame>* ready) {
  for (;;) {
    auto it = sub.buffered.find(sub.cursor);
    if (it != sub.buffered.end()) {
      ready->push_back(it->second);
      sub.buffered.erase(it);
      ++sub.cursor;
      continue;
    }
    auto sit = sub.satisfied.find(sub.cursor);
    if (sit != sub.satisfied.end()) {
      // Bytes arrived via the store path; nothing to hand to the consumer.
      sub.satisfied.erase(sit);
      ++sub.cursor;
      continue;
    }
    break;
  }
  release_passed_credits(sub);
}

FrameChannel::DeliveryResult FrameChannel::deliver(int sub, const Frame& f) {
  auto& s = subs_.at(static_cast<size_t>(sub));
  if (f.seq < s.cursor || s.buffered.count(f.seq) || s.satisfied.count(f.seq)) {
    return {Outcome::Duplicate, {}};
  }
  if (f.seq == s.cursor) {
    DeliveryResult r{Outcome::Consumed, {f}};
    ++s.cursor;
    drain(s, &r.ready);
    return r;
  }
  if (f.seq - s.cursor > cfg_.reorder_window) {
    return {Outcome::WindowOverflow, {}};
  }
  s.buffered.emplace(f.seq, f);
  return {Outcome::Buffered, {}};
}

std::vector<Frame> FrameChannel::satisfy_range(int sub, int64_t first,
                                               int64_t last) {
  auto& s = subs_.at(static_cast<size_t>(sub));
  for (int64_t seq = std::max(first, s.cursor); seq <= last; ++seq) {
    // Frames the subscriber already buffered stay buffered (the in-band copy
    // wins); everything else in the range is satisfied out-of-band. Release
    // any credit an in-flight original was holding — it will arrive as a
    // duplicate, if at all.
    if (!s.buffered.count(seq)) s.satisfied.insert(seq);
    auto cit = s.credited.find(seq);
    if (cit != s.credited.end()) {
      s.credited.erase(cit);
      s.credits = std::min(s.credits + 1, cfg_.credit_window);
    }
  }
  std::vector<Frame> ready;
  drain(s, &ready);
  return ready;
}

int64_t FrameChannel::cursor(int sub) const {
  return subs_.at(static_cast<size_t>(sub)).cursor;
}

size_t FrameChannel::buffered_count(int sub) const {
  return subs_.at(static_cast<size_t>(sub)).buffered.size();
}

}  // namespace pico::net

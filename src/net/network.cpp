#include "net/network.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace pico::net {
namespace {

// Completion slack: a flow is done when remaining bytes < half a byte, which
// absorbs floating-point drift from repeated rate changes. The slack must
// also cover what the flow moves in one engine tick (1 ns) — otherwise a
// very fast flow's ETA truncates to zero nanoseconds and the completion
// event would spin at a fixed timestamp without progress.
constexpr double kEpsilonBytes = 0.5;

double completion_slack(double rate_Bps) {
  return std::max(kEpsilonBytes, rate_Bps * 2e-9);
}

}  // namespace

util::Result<FlowId> Network::start_flow(
    NodeId src, NodeId dst, int64_t bytes,
    std::function<void(FlowId)> on_complete, double rate_cap_bps) {
  auto route = topo_->route(src, dst);
  if (!route) return util::Result<FlowId>::err(route.error());

  FlowId id = next_id_++;
  ActiveFlow flow;
  flow.id = id;
  flow.route = std::move(route).value();
  flow.rate_cap_Bps = rate_cap_bps > 0 ? rate_cap_bps / 8.0 : 0;
  flow.total_bytes = static_cast<double>(std::max<int64_t>(bytes, 0));
  flow.transferred = 0;
  flow.rate_Bps = 0;
  flow.last_update = engine_->now();
  flow.started = false;
  flow.on_complete = std::move(on_complete);

  sim::Duration latency = topo_->route_latency(flow.route);
  flows_.emplace(id, std::move(flow));

  // The latency phase models connection setup / propagation; the flow only
  // competes for bandwidth once it elapses.
  engine_->schedule_after(latency, [this, id] {
    auto it = flows_.find(id);
    if (it == flows_.end()) return;  // cancelled during latency phase
    advance_progress();
    it->second.started = true;
    it->second.last_update = engine_->now();
    recompute_rates();
    reschedule_completion();
  });
  return util::Result<FlowId>::ok(id);
}

void Network::cancel_flow(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  advance_progress();
  flows_.erase(it);
  recompute_rates();
  reschedule_completion();
}

FlowStatus Network::status(FlowId id) const {
  auto it = flows_.find(id);
  if (it == flows_.end()) return FlowStatus{};
  const auto& f = it->second;
  double elapsed = (engine_->now() - f.last_update).seconds();
  double transferred =
      std::min(f.total_bytes, f.transferred + f.rate_Bps * elapsed);
  return FlowStatus{static_cast<int64_t>(f.total_bytes),
                    static_cast<int64_t>(transferred), f.rate_Bps * 8.0, true};
}

void Network::rates_changed() {
  advance_progress();
  recompute_rates();
  reschedule_completion();
}

void Network::advance_progress() {
  sim::SimTime now = engine_->now();
  for (auto& [id, f] : flows_) {
    if (!f.started) continue;
    double elapsed = (now - f.last_update).seconds();
    if (elapsed > 0) {
      double before = f.transferred;
      f.transferred = std::min(f.total_bytes, f.transferred + f.rate_Bps * elapsed);
      double delta = f.transferred - before;
      if (delta > 0) {
        for (LinkId lid : f.route) bytes_carried_[lid] += delta;
      }
    }
    f.last_update = now;
  }
}

double Network::bytes_carried(LinkId id) const {
  auto it = bytes_carried_.find(id);
  return it == bytes_carried_.end() ? 0.0 : it->second;
}

double Network::average_utilization(LinkId id) const {
  double elapsed = engine_->now().seconds();
  if (elapsed <= 0) return 0.0;
  double capacity_bps = topo_->link(id).capacity_bps;
  if (capacity_bps <= 0) return 0.0;
  return bytes_carried(id) * 8.0 / (capacity_bps * elapsed);
}

void Network::recompute_rates() {
  // Max-min fair allocation: repeatedly saturate the most-constrained
  // resource. Resources are real links (capacity shared by all flows
  // traversing them — a switch backplane / duplex uplink abstraction) plus a
  // private per-flow "virtual link" when the flow has an end-host rate cap.
  using ResourceId = uint64_t;
  constexpr ResourceId kVirtualBase = 1ull << 40;
  auto virtual_id = [](FlowId fid) { return kVirtualBase + fid; };

  std::map<ResourceId, double> residual;      // remaining capacity (bytes/s)
  std::map<ResourceId, int> unfixed_on_res;   // flows not yet fixed

  struct Entry {
    ActiveFlow* flow;
    std::vector<ResourceId> resources;
  };
  std::vector<Entry> unfixed;
  for (auto& [id, f] : flows_) {
    if (!f.started) continue;
    f.rate_Bps = 0;
    if (f.route.empty() && f.rate_cap_Bps <= 0) {
      // Same-node transfer: modeled as an effectively instantaneous local
      // copy (finite but huge rate keeps the completion math uniform).
      f.rate_Bps = 1e15;
      continue;
    }
    // A partitioned link stalls every flow pinned to it: rate 0, no
    // completion event. Progress resumes when rates_changed() runs after
    // the link comes back up.
    bool severed = false;
    for (LinkId lid : f.route) {
      if (!topo_->link(lid).up) { severed = true; break; }
    }
    if (severed) continue;
    Entry e;
    e.flow = &f;
    for (LinkId lid : f.route) {
      residual.emplace(lid, topo_->link(lid).capacity_bps / 8.0);
      unfixed_on_res[lid] += 1;
      e.resources.push_back(lid);
    }
    if (f.rate_cap_Bps > 0) {
      ResourceId vid = virtual_id(f.id);
      residual.emplace(vid, f.rate_cap_Bps);
      unfixed_on_res[vid] += 1;
      e.resources.push_back(vid);
    }
    unfixed.push_back(std::move(e));
  }

  while (!unfixed.empty()) {
    // Find the bottleneck resource: minimal fair share among those in use.
    double best_share = std::numeric_limits<double>::infinity();
    ResourceId best_res = 0;
    bool found = false;
    for (const auto& [rid, count] : unfixed_on_res) {
      if (count <= 0) continue;
      // Floating-point drift can leave residuals a hair below zero after
      // repeated subtraction; clamp so shares (and thus rates) stay >= 0.
      double share = std::max(0.0, residual[rid]) / count;
      if (share < best_share) {
        best_share = share;
        best_res = rid;
        found = true;
      }
    }
    if (!found) break;

    // Fix every unfixed flow using the bottleneck at the fair share.
    std::vector<Entry> still_unfixed;
    still_unfixed.reserve(unfixed.size());
    for (Entry& e : unfixed) {
      bool crosses = std::find(e.resources.begin(), e.resources.end(),
                               best_res) != e.resources.end();
      if (!crosses) {
        still_unfixed.push_back(std::move(e));
        continue;
      }
      // Floor at 1 B/s: only reachable via floating-point drift (exact
      // max-min always yields positive shares), and it guarantees every
      // flow terminates in bounded virtual time instead of stalling.
      e.flow->rate_Bps = std::max(best_share, 1.0);
      for (ResourceId rid : e.resources) {
        residual[rid] -= best_share;
        unfixed_on_res[rid] -= 1;
      }
    }
    unfixed.swap(still_unfixed);
  }
}

void Network::reschedule_completion() {
  completion_event_.cancel();
  double soonest = std::numeric_limits<double>::infinity();
  for (const auto& [id, f] : flows_) {
    if (!f.started) continue;
    double remaining = f.total_bytes - f.transferred;
    double eta;
    if (remaining <= completion_slack(f.rate_Bps)) {
      eta = 0;
    } else if (f.rate_Bps <= 0) {
      continue;  // stalled (should not happen with positive capacities)
    } else {
      eta = std::max(0.0, remaining / f.rate_Bps);
    }
    soonest = std::min(soonest, eta);
  }
  if (!std::isfinite(soonest)) return;
  sim::Duration delay = sim::Duration::from_seconds(soonest);
  if (soonest > 0 && delay.ns < 1) delay.ns = 1;  // never re-fire at "now"
  completion_event_ =
      engine_->schedule_after(delay, [this] { on_completion_event(); });
}

void Network::on_completion_event() {
  advance_progress();
  // Collect completions first; callbacks may start new flows re-entrantly.
  std::vector<ActiveFlow> done;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->second.started &&
        it->second.total_bytes - it->second.transferred <=
            completion_slack(it->second.rate_Bps)) {
      done.push_back(std::move(it->second));
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  recompute_rates();
  reschedule_completion();
  for (auto& f : done) {
    if (f.on_complete) f.on_complete(f.id);
  }
}

}  // namespace pico::net

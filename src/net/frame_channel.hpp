#pragma once
// Bounded pub/sub frame channel: the in-memory ring a detector publishes
// sequence-numbered, CRC-64-stamped frames into, and that compute-node
// consumers drain through per-subscriber cursors. Pure data structure — no
// engine, no wire model — so the streaming service can drive it from sim
// events and tests can exercise boundary conditions directly.
//
// Flow control is credit-based: each subscriber grants `credit_window`
// credits; the producer spends one per original frame sent and the credit
// returns only when the subscriber's cursor passes that frame (or an
// out-of-band spill satisfies it). Retransmits ride the original credit.
//
// The ring is bounded at `ring_capacity` frames. Publishing past capacity
// evicts the oldest frame; if any subscriber still needs it (cursor not yet
// past, not privately buffered, not externally satisfied) the eviction is
// reported to the caller — that frame can no longer be retransmitted from
// the ring and must reach the consumer some other way (spill-to-store).
//
// Reordered arrivals park in a per-subscriber reorder buffer of at most
// `reorder_window` frames ahead of the cursor; anything further ahead is
// rejected as WindowOverflow and must be retransmitted once the gap closes.
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "util/arena.hpp"

namespace pico::net {

/// One detector frame on the channel. `bytes` is the payload size; `crc64`
/// stamps the content so consumers can verify frames end-to-end.
///
/// `payload` is optional: metadata-only frames (size/CRC simulation) leave it
/// null; frames published through the zero-copy path carry a pool-backed
/// buffer shared by every copy of the Frame (ring slot, reorder buffers,
/// ready vectors), so copying a Frame never copies the bytes.
struct Frame {
  int64_t seq = 0;
  int64_t bytes = 0;
  uint64_t crc64 = 0;
  std::shared_ptr<const util::BufferPool::Lease> payload;

  bool has_payload() const { return payload != nullptr; }
  /// The payload bytes (empty span for metadata-only frames).
  std::span<const uint8_t> payload_bytes() const {
    return payload ? payload->span() : std::span<const uint8_t>{};
  }
};

struct FrameChannelConfig {
  int ring_capacity = 128;   ///< producer-side retransmit ring, in frames
  int credit_window = 64;    ///< outstanding unconsumed frames per subscriber
  int reorder_window = 16;   ///< max frames a subscriber parks ahead of cursor
};

class FrameChannel {
 public:
  enum class Outcome {
    Consumed,        ///< in-order: cursor advanced (possibly draining buffer)
    Buffered,        ///< out-of-order: parked in the reorder buffer
    Duplicate,       ///< already consumed, buffered, or satisfied — discarded
    WindowOverflow,  ///< too far ahead of the cursor — discarded
  };

  struct DeliveryResult {
    Outcome outcome = Outcome::Consumed;
    /// Frames now consumable in sequence order (the delivered frame plus any
    /// reorder-buffered successors it unblocked). Empty unless Consumed.
    std::vector<Frame> ready;
  };

  explicit FrameChannel(FrameChannelConfig cfg);

  /// Register a consumer; returns its subscriber id. Subscribers start at
  /// cursor 0 with a full credit window.
  int subscribe();

  /// Append the next frame (sequence numbers are assigned in publish order).
  /// Returns frames force-evicted from the ring that some subscriber still
  /// needed — the caller must route those via the spill path.
  std::vector<Frame> publish(int64_t bytes, uint64_t crc64);

  /// Publish a frame carrying real bytes: lands `payload` into a buffer from
  /// the shared pool with the CRC-64 stamp fused into the same traversal
  /// (util::crc64_copy — one pass stamps and lands), then appends the frame
  /// with the lease attached. Eviction/spill semantics match the metadata
  /// overload; spilled frames keep their payload alive through the lease.
  std::vector<Frame> publish(std::span<const uint8_t> payload);

  /// In-ring lookup for retransmission. Empty once the frame was evicted.
  std::optional<Frame> frame(int64_t seq) const;

  /// Producer spends one credit to send original frame `seq` to `sub`.
  /// Returns false when the subscriber's window is exhausted (backpressure).
  /// Retransmits must NOT take a new credit — the original still holds one.
  bool take_credit(int sub, int64_t seq);

  /// Credits currently available for `sub`.
  int credits(int sub) const;

  /// A frame arrived at subscriber `sub` (after any wire chaos).
  DeliveryResult deliver(int sub, const Frame& f);

  /// Mark [first, last] as satisfied out-of-band (spill backfill): the bytes
  /// reached the consumer via the store path, so the cursor may advance past
  /// them. Returns reorder-buffered frames that become consumable.
  std::vector<Frame> satisfy_range(int sub, int64_t first, int64_t last);

  /// Next sequence number subscriber `sub` expects.
  int64_t cursor(int sub) const;
  /// Frames parked in `sub`'s reorder buffer.
  size_t buffered_count(int sub) const;

  size_t ring_size() const { return ring_.size(); }
  int64_t base_seq() const { return base_seq_; }
  int64_t next_seq() const { return next_seq_; }
  const FrameChannelConfig& config() const { return cfg_; }

 private:
  struct Subscriber {
    int64_t cursor = 0;
    int credits = 0;
    std::map<int64_t, Frame> buffered;   ///< reorder buffer, keyed by seq
    std::set<int64_t> satisfied;         ///< spill-backfilled seqs >= cursor
    std::set<int64_t> credited;          ///< seqs currently holding a credit
  };

  bool needed_by_any(int64_t seq) const;
  /// Ring append + capacity eviction shared by both publish overloads.
  std::vector<Frame> append(Frame f);
  /// Advance `sub`'s cursor over buffered/satisfied frames, appending drained
  /// buffered frames to `ready`, then release credits the cursor passed.
  void drain(Subscriber& sub, std::vector<Frame>* ready);
  void release_passed_credits(Subscriber& sub);

  FrameChannelConfig cfg_;
  std::deque<Frame> ring_;
  int64_t base_seq_ = 0;  ///< seq of ring_.front() when non-empty
  int64_t next_seq_ = 0;
  std::vector<Subscriber> subs_;
};

}  // namespace pico::net

#pragma once
// Network topology: named nodes joined by capacity-limited links. Routes are
// shortest paths by hop count (deterministic tie-break), which is adequate
// for the facility graph in the paper: user workstations -> 1 Gbps switch ->
// 200 Gbps ANL backbone -> ALCF (Eagle/Polaris).
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "util/result.hpp"

namespace pico::net {

using NodeId = uint32_t;
using LinkId = uint32_t;

struct Link {
  LinkId id = 0;
  NodeId a = 0, b = 0;
  double capacity_bps = 0;   ///< shared by all flows traversing the link
  sim::Duration latency;     ///< one-way propagation + switching delay
  std::string name;
  /// Administratively up. Down links are skipped by route(); in-flight
  /// traffic already pinned to the link stalls until it comes back.
  bool up = true;
};

class Topology {
 public:
  /// Add a node; returns its id. Names must be unique.
  NodeId add_node(const std::string& name);

  /// Join two nodes with a link of the given capacity (bits/second).
  LinkId add_link(NodeId a, NodeId b, double capacity_bps,
                  sim::Duration latency = sim::Duration::zero(),
                  const std::string& name = "");
  LinkId add_link(const std::string& a, const std::string& b,
                  double capacity_bps,
                  sim::Duration latency = sim::Duration::zero(),
                  const std::string& name = "");

  util::Result<NodeId> node(const std::string& name) const;
  const std::string& node_name(NodeId id) const;
  const Link& link(LinkId id) const;
  Link& mutable_link(LinkId id);  ///< for bandwidth-sweep experiments
  /// Partition/heal the link. Callers owning a Network must follow with
  /// Network::rates_changed() so in-flight flows see the change.
  void set_link_up(LinkId id, bool up);
  /// Lookup by link name (as passed to add_link). Error if absent.
  util::Result<LinkId> link_by_name(const std::string& name) const;
  size_t node_count() const { return node_names_.size(); }
  size_t link_count() const { return links_.size(); }

  /// Shortest path (by hops) from src to dst as a list of link ids.
  /// Error if unreachable.
  util::Result<std::vector<LinkId>> route(NodeId src, NodeId dst) const;

  /// Sum of one-way latencies along a route.
  sim::Duration route_latency(const std::vector<LinkId>& links) const;

 private:
  std::vector<std::string> node_names_;
  std::map<std::string, NodeId> node_ids_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> adjacency_;  ///< per node, incident links
};

}  // namespace pico::net

#include "storage/scrubber.hpp"

#include "util/json.hpp"
#include "util/log.hpp"

namespace pico::storage {

namespace {
util::Logger log_("scrubber");
}

void Scrubber::start() {
  // interval_s <= 0 means scrubbing is disabled. Without this guard the
  // self-rescheduling pass would re-fire at the same virtual instant forever
  // and the engine would never drain its queue.
  if (config_.interval_s <= 0) {
    log_.warn("scrub interval %.1fs <= 0: scrubbing disabled",
              config_.interval_s);
    return;
  }
  schedule_pass(config_.interval_s);
}

void Scrubber::schedule_pass(double at_s) {
  if (at_s > config_.horizon_s) return;
  engine_->schedule_at(sim::SimTime::from_seconds(at_s), [this, at_s] {
    scan_once();
    schedule_pass(at_s + config_.interval_s);
  });
}

size_t Scrubber::scan_once() {
  ++stats_.scans;
  size_t corrupt = 0;
  for (const std::string& path : store_->list(config_.prefix)) {
    ++stats_.objects_checked;
    auto intact = store_->verify(path);
    if (!intact || intact.value()) continue;
    ++corrupt;
    ++stats_.corrupt_found;
    store_->quarantine(path);
    log_.warn("scrub found corrupt object %s/%s, quarantined",
              store_->name().c_str(), path.c_str());
    if (telemetry_) {
      telemetry_->metrics
          .counter("corruption_detected_total",
                   "Integrity violations detected, by location",
                   {{"where", "at_rest"}})
          .inc();
      if (uint64_t span = telemetry_->tracer.current()) {
        telemetry_->tracer.event(
            span, "corruption-detected", engine_->now(),
            util::Json::object({{"where", "at_rest"},
                                {"store", store_->name()},
                                {"path", path}}));
      }
      // Scrub hits share one watchdog-exempt ring: at-rest corruption has no
      // owning flow run, but a postmortem still wants the hit timeline.
      telemetry_->flight.record(
          "scrubber", util::LogLevel::Warn, "scrubber", "scrub-hit",
          engine_->now(),
          util::Json::object({{"store", store_->name()}, {"path", path}}));
    }
    if (repair_) {
      ++stats_.repairs_requested;
      repair_(path);
    }
  }
  return corrupt;
}

}  // namespace pico::storage

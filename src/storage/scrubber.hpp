#pragma once
// Periodic at-rest integrity scrubber — the simulation analogue of Lustre's
// background scrub. On a fixed cadence in virtual time it walks a store's
// object manifests, compares the media checksum against the CRC-64 declared
// at write time, quarantines anything that diverged, and hands each victim
// to a repair callback (the Facility wires this to a provenance-driven
// re-transfer, so a corrupt Eagle copy is re-landed from the user store).
#include <functional>
#include <string>

#include "sim/engine.hpp"
#include "storage/store.hpp"
#include "telemetry/telemetry.hpp"

namespace pico::storage {

struct ScrubberConfig {
  /// Cadence between scan passes (virtual seconds). Zero or negative
  /// disables scrubbing: start() schedules nothing.
  double interval_s = 300;
  /// No passes are scheduled past this virtual time. Keeps engine.run()
  /// terminating: an unbounded self-rescheduling scrubber would pin the
  /// event queue open forever.
  double horizon_s = 3600;
  /// Restrict scans to paths under this prefix (empty = whole store).
  std::string prefix;
};

class Scrubber {
 public:
  struct Stats {
    size_t scans = 0;
    size_t objects_checked = 0;
    size_t corrupt_found = 0;
    size_t repairs_requested = 0;
  };

  Scrubber(sim::Engine* engine, Store* store, ScrubberConfig config,
           telemetry::Telemetry* telemetry = nullptr)
      : engine_(engine),
        store_(store),
        config_(std::move(config)),
        telemetry_(telemetry) {}

  /// Repair hook, called once per quarantined object with its path.
  void set_repair(std::function<void(const std::string&)> repair) {
    repair_ = std::move(repair);
  }

  /// Schedule passes at interval_s, 2*interval_s, ... up to horizon_s.
  void start();

  /// One synchronous pass; returns the number of corrupt objects found.
  /// Tests call this directly; start() drives it on the configured cadence.
  size_t scan_once();

  const Stats& stats() const { return stats_; }
  const ScrubberConfig& config() const { return config_; }

 private:
  void schedule_pass(double at_s);

  sim::Engine* engine_;
  Store* store_;
  ScrubberConfig config_;
  telemetry::Telemetry* telemetry_;
  std::function<void(const std::string&)> repair_;
  Stats stats_;
};

}  // namespace pico::storage

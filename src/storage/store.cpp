#include "storage/store.hpp"

#include "util/crc64.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace pico::storage {

util::Status Store::put(const std::string& path, std::vector<uint8_t> bytes,
                        sim::SimTime now) {
  int64_t size = static_cast<int64_t>(bytes.size());
  int64_t delta = size;
  auto it = objects_.find(path);
  if (it != objects_.end()) delta -= it->second.size;
  if (used_ + delta > capacity_) {
    return util::Status::err(
        util::format("store %s full: need %lld over capacity %lld",
                     name_.c_str(), static_cast<long long>(used_ + delta),
                     static_cast<long long>(capacity_)),
        "capacity");
  }
  Object obj;
  obj.size = size;
  obj.crc64 = util::crc64(bytes);
  obj.stored_crc64 = obj.crc64;
  obj.created = now;
  obj.content = std::move(bytes);
  objects_[path] = std::move(obj);
  used_ += delta;
  return util::Status::ok();
}

util::Status Store::put_with_crc(const std::string& path,
                                 std::vector<uint8_t> bytes, uint64_t crc64,
                                 sim::SimTime now) {
  int64_t size = static_cast<int64_t>(bytes.size());
  int64_t delta = size;
  auto it = objects_.find(path);
  if (it != objects_.end()) delta -= it->second.size;
  if (used_ + delta > capacity_) {
    return util::Status::err(
        util::format("store %s full: need %lld over capacity %lld",
                     name_.c_str(), static_cast<long long>(used_ + delta),
                     static_cast<long long>(capacity_)),
        "capacity");
  }
  Object obj;
  obj.size = size;
  obj.crc64 = crc64;
  obj.stored_crc64 = crc64;
  obj.created = now;
  obj.content = std::move(bytes);
  objects_[path] = std::move(obj);
  used_ += delta;
  return util::Status::ok();
}

util::Status Store::put_virtual(const std::string& path, int64_t size,
                                uint64_t crc64, sim::SimTime now) {
  int64_t delta = size;
  auto it = objects_.find(path);
  if (it != objects_.end()) delta -= it->second.size;
  if (used_ + delta > capacity_) {
    return util::Status::err("store " + name_ + " full", "capacity");
  }
  Object obj;
  obj.size = size;
  obj.crc64 = crc64;
  obj.stored_crc64 = crc64;
  obj.created = now;
  objects_[path] = std::move(obj);
  used_ += delta;
  return util::Status::ok();
}

bool Store::exists(const std::string& path) const {
  return objects_.count(path) > 0;
}

util::Result<const Object*> Store::get(const std::string& path) const {
  auto it = objects_.find(path);
  if (it == objects_.end()) {
    return util::Result<const Object*>::err(
        "no object " + path + " in store " + name_, "not_found");
  }
  return util::Result<const Object*>::ok(&it->second);
}

util::Status Store::remove(const std::string& path) {
  auto it = objects_.find(path);
  if (it == objects_.end()) {
    return util::Status::err("no object " + path, "not_found");
  }
  used_ -= it->second.size;
  objects_.erase(it);
  return util::Status::ok();
}

std::vector<std::string> Store::list(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [path, obj] : objects_) {
    if (util::starts_with(path, prefix)) out.push_back(path);
  }
  return out;
}

util::Status Store::corrupt(const std::string& path, uint64_t salt) {
  auto it = objects_.find(path);
  if (it == objects_.end()) {
    return util::Status::err("no object " + path, "not_found");
  }
  Object& obj = it->second;
  if (obj.content && !obj.content->empty()) {
    size_t index = static_cast<size_t>(salt % obj.content->size());
    uint8_t mask = static_cast<uint8_t>(1u << (salt % 8));
    if (mask == 0) mask = 1;
    (*obj.content)[index] ^= mask;
    obj.stored_crc64 = util::crc64(*obj.content);
  } else {
    // Size-only object: no bytes to flip, so perturb the media checksum
    // directly. The golden-ratio constant keeps distinct salts distinct.
    obj.stored_crc64 ^= 0x9E3779B97F4A7C15ull + salt;
  }
  if (obj.stored_crc64 == obj.crc64) obj.stored_crc64 ^= 1;
  return util::Status::ok();
}

util::Status Store::truncate(const std::string& path, int64_t actual_size) {
  auto it = objects_.find(path);
  if (it == objects_.end()) {
    return util::Status::err("no object " + path, "not_found");
  }
  Object& obj = it->second;
  if (actual_size < 0 || actual_size >= obj.size) {
    return util::Status::err(
        util::format("truncate %s: actual_size %lld outside [0, %lld)",
                     path.c_str(), static_cast<long long>(actual_size),
                     static_cast<long long>(obj.size)),
        "invalid");
  }
  if (obj.content) {
    obj.content->resize(static_cast<size_t>(actual_size));
    obj.stored_crc64 = util::crc64(*obj.content);
  } else {
    obj.stored_crc64 =
        util::crc64(util::format("%016llx:truncated:%lld",
                                 static_cast<unsigned long long>(obj.crc64),
                                 static_cast<long long>(actual_size)));
  }
  if (obj.stored_crc64 == obj.crc64) obj.stored_crc64 ^= 1;
  return util::Status::ok();
}

std::vector<std::string> Store::corrupt_random(double prob, uint64_t seed,
                                               const std::string& prefix) {
  util::Rng rng(seed);
  std::vector<std::string> corrupted;
  // list() returns sorted paths, so the coin sequence — and therefore the
  // damaged set — is reproducible from the seed alone.
  for (const std::string& path : list(prefix)) {
    uint64_t salt = rng.next_u64();
    if (!rng.chance(prob)) continue;
    if (corrupt(path, salt)) corrupted.push_back(path);
  }
  return corrupted;
}

util::Result<bool> Store::verify(const std::string& path) const {
  auto it = objects_.find(path);
  if (it == objects_.end()) {
    return util::Result<bool>::err("no object " + path, "not_found");
  }
  return util::Result<bool>::ok(it->second.intact());
}

util::Status Store::quarantine(const std::string& path) {
  auto it = objects_.find(path);
  if (it == objects_.end()) {
    return util::Status::err("no object " + path, "not_found");
  }
  used_ -= it->second.size;
  quarantined_[path] = std::move(it->second);
  objects_.erase(it);
  return util::Status::ok();
}

std::vector<std::string> Store::quarantined() const {
  std::vector<std::string> out;
  out.reserve(quarantined_.size());
  for (const auto& [path, obj] : quarantined_) out.push_back(path);
  return out;
}

}  // namespace pico::storage

#include "storage/store.hpp"

#include "util/crc64.hpp"
#include "util/strings.hpp"

namespace pico::storage {

util::Status Store::put(const std::string& path, std::vector<uint8_t> bytes,
                        sim::SimTime now) {
  int64_t size = static_cast<int64_t>(bytes.size());
  int64_t delta = size;
  auto it = objects_.find(path);
  if (it != objects_.end()) delta -= it->second.size;
  if (used_ + delta > capacity_) {
    return util::Status::err(
        util::format("store %s full: need %lld over capacity %lld",
                     name_.c_str(), static_cast<long long>(used_ + delta),
                     static_cast<long long>(capacity_)),
        "capacity");
  }
  Object obj;
  obj.size = size;
  obj.crc64 = util::crc64(bytes);
  obj.created = now;
  obj.content = std::move(bytes);
  objects_[path] = std::move(obj);
  used_ += delta;
  return util::Status::ok();
}

util::Status Store::put_virtual(const std::string& path, int64_t size,
                                uint64_t crc64, sim::SimTime now) {
  int64_t delta = size;
  auto it = objects_.find(path);
  if (it != objects_.end()) delta -= it->second.size;
  if (used_ + delta > capacity_) {
    return util::Status::err("store " + name_ + " full", "capacity");
  }
  Object obj;
  obj.size = size;
  obj.crc64 = crc64;
  obj.created = now;
  objects_[path] = std::move(obj);
  used_ += delta;
  return util::Status::ok();
}

bool Store::exists(const std::string& path) const {
  return objects_.count(path) > 0;
}

util::Result<const Object*> Store::get(const std::string& path) const {
  auto it = objects_.find(path);
  if (it == objects_.end()) {
    return util::Result<const Object*>::err(
        "no object " + path + " in store " + name_, "not_found");
  }
  return util::Result<const Object*>::ok(&it->second);
}

util::Status Store::remove(const std::string& path) {
  auto it = objects_.find(path);
  if (it == objects_.end()) {
    return util::Status::err("no object " + path, "not_found");
  }
  used_ -= it->second.size;
  objects_.erase(it);
  return util::Status::ok();
}

std::vector<std::string> Store::list(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [path, obj] : objects_) {
    if (util::starts_with(path, prefix)) out.push_back(path);
  }
  return out;
}

}  // namespace pico::storage

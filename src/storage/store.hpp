#pragma once
// Simulated storage systems. `Store` models both the on-site staging disk of
// the PicoProbe user workstation and ALCF's Eagle Lustre file system
// (O(100 PB)): named objects with sizes, checksums and timestamps, plus
// capacity accounting. Objects can carry real bytes (data-plane payloads the
// analysis actually reads) or be size-only (the 1200 MB campaign files whose
// contents are irrelevant to control-plane timing).
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "util/result.hpp"

namespace pico::storage {

struct Object {
  int64_t size = 0;
  uint64_t crc64 = 0;
  sim::SimTime created;
  /// Real payload; absent for size-only simulation objects.
  std::optional<std::vector<uint8_t>> content;

  bool has_content() const { return content.has_value(); }
};

class Store {
 public:
  Store(std::string name, int64_t capacity_bytes)
      : name_(std::move(name)), capacity_(capacity_bytes) {}

  const std::string& name() const { return name_; }
  int64_t capacity() const { return capacity_; }
  int64_t used_bytes() const { return used_; }

  /// Store real bytes at `path` (overwrites). Fails when capacity exceeded.
  util::Status put(const std::string& path, std::vector<uint8_t> bytes,
                   sim::SimTime now);

  /// Store a size-only object with a precomputed checksum.
  util::Status put_virtual(const std::string& path, int64_t size,
                           uint64_t crc64, sim::SimTime now);

  bool exists(const std::string& path) const;
  util::Result<const Object*> get(const std::string& path) const;
  util::Status remove(const std::string& path);

  /// Paths with the given prefix, sorted.
  std::vector<std::string> list(const std::string& prefix = "") const;

  size_t object_count() const { return objects_.size(); }

 private:
  std::string name_;
  int64_t capacity_;
  int64_t used_ = 0;
  std::map<std::string, Object> objects_;
};

}  // namespace pico::storage

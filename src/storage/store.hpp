#pragma once
// Simulated storage systems. `Store` models both the on-site staging disk of
// the PicoProbe user workstation and ALCF's Eagle Lustre file system
// (O(100 PB)): named objects with sizes, checksums and timestamps, plus
// capacity accounting. Objects can carry real bytes (data-plane payloads the
// analysis actually reads) or be size-only (the 1200 MB campaign files whose
// contents are irrelevant to control-plane timing).
//
// Integrity model: every object records the checksum declared at write time
// (`crc64`, the manifest entry) and the checksum of the bytes as they sit on
// media now (`stored_crc64`). The two only diverge through the silent-
// corruption fault surface — `corrupt()`, `truncate()`, `corrupt_random()` —
// and `verify()` is the read-path check that catches the divergence. Corrupt
// objects are moved aside with `quarantine()` so repair (a re-transfer from
// the surviving source copy) can re-land a clean replacement.
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "util/result.hpp"

namespace pico::storage {

struct Object {
  int64_t size = 0;
  /// Checksum declared when the object was written (the manifest entry).
  uint64_t crc64 = 0;
  sim::SimTime created;
  /// Real payload; absent for size-only simulation objects.
  std::optional<std::vector<uint8_t>> content;
  /// Checksum of the bytes on media now; equal to `crc64` unless at-rest
  /// corruption or a truncated landing damaged the object after the write.
  uint64_t stored_crc64 = 0;

  bool has_content() const { return content.has_value(); }
  bool intact() const { return stored_crc64 == crc64; }
};

class Store {
 public:
  Store(std::string name, int64_t capacity_bytes)
      : name_(std::move(name)), capacity_(capacity_bytes) {}

  const std::string& name() const { return name_; }
  int64_t capacity() const { return capacity_; }
  int64_t used_bytes() const { return used_; }

  /// Store real bytes at `path` (overwrites). Fails when capacity exceeded.
  util::Status put(const std::string& path, std::vector<uint8_t> bytes,
                   sim::SimTime now);

  /// put() for callers that already computed crc64(bytes) — typically fused
  /// into the copy that produced `bytes` (util::crc64_copy) so landing a
  /// chunk costs one traversal instead of land-then-scan. The caller-declared
  /// checksum is trusted as both the manifest and media checksum; the fused
  /// callers derive it from the landed bytes themselves, so it cannot
  /// diverge (a lie would go undetected until a content rescan).
  util::Status put_with_crc(const std::string& path,
                            std::vector<uint8_t> bytes, uint64_t crc64,
                            sim::SimTime now);

  /// Store a size-only object with a precomputed checksum.
  util::Status put_virtual(const std::string& path, int64_t size,
                           uint64_t crc64, sim::SimTime now);

  bool exists(const std::string& path) const;
  util::Result<const Object*> get(const std::string& path) const;
  util::Status remove(const std::string& path);

  /// Paths with the given prefix, sorted.
  std::vector<std::string> list(const std::string& prefix = "") const;

  size_t object_count() const { return objects_.size(); }

  // --- silent-corruption fault surface -------------------------------------

  /// At-rest corruption: flip one payload byte (real objects) or perturb the
  /// media checksum (size-only objects). The declared `crc64` keeps its
  /// write-time value, so `verify()` detects the damage. `salt` picks which
  /// byte flips, keeping chaos schedules deterministic.
  util::Status corrupt(const std::string& path, uint64_t salt = 0);

  /// Truncated landing: only `actual_size` bytes of the object reached the
  /// media. The declared size and checksum keep their manifest values;
  /// `stored_crc64` is recomputed over the surviving prefix so `verify()`
  /// fails. Requires 0 <= actual_size < size.
  util::Status truncate(const std::string& path, int64_t actual_size);

  /// Chaos helper: corrupt each object under `prefix` independently with
  /// probability `prob` (deterministic from `seed`). Returns corrupted paths.
  std::vector<std::string> corrupt_random(double prob, uint64_t seed,
                                          const std::string& prefix = "");

  /// Media-vs-manifest integrity check: true when the stored bytes still
  /// match the checksum declared at write time.
  util::Result<bool> verify(const std::string& path) const;

  /// Move a (typically corrupt) object out of the namespace: get()/exists()
  /// stop seeing it, its capacity is released so repair can re-land a clean
  /// copy, and the path shows up in quarantined() for operators.
  util::Status quarantine(const std::string& path);

  /// Quarantined paths, sorted.
  std::vector<std::string> quarantined() const;
  size_t quarantine_count() const { return quarantined_.size(); }

 private:
  std::string name_;
  int64_t capacity_;
  int64_t used_ = 0;
  std::map<std::string, Object> objects_;
  std::map<std::string, Object> quarantined_;
};

}  // namespace pico::storage

#include "tensor/dtype.hpp"

namespace pico::tensor {

size_t dtype_size(DType t) {
  switch (t) {
    case DType::U8:
    case DType::I8: return 1;
    case DType::U16:
    case DType::I16: return 2;
    case DType::U32:
    case DType::I32:
    case DType::F32: return 4;
    case DType::U64:
    case DType::I64:
    case DType::F64: return 8;
  }
  return 0;
}

std::string_view dtype_name(DType t) {
  switch (t) {
    case DType::U8: return "u8";
    case DType::I8: return "i8";
    case DType::U16: return "u16";
    case DType::I16: return "i16";
    case DType::U32: return "u32";
    case DType::I32: return "i32";
    case DType::U64: return "u64";
    case DType::I64: return "i64";
    case DType::F32: return "f32";
    case DType::F64: return "f64";
  }
  return "?";
}

util::Result<DType> dtype_from_name(std::string_view name) {
  using R = util::Result<DType>;
  if (name == "u8") return R::ok(DType::U8);
  if (name == "i8") return R::ok(DType::I8);
  if (name == "u16") return R::ok(DType::U16);
  if (name == "i16") return R::ok(DType::I16);
  if (name == "u32") return R::ok(DType::U32);
  if (name == "i32") return R::ok(DType::I32);
  if (name == "u64") return R::ok(DType::U64);
  if (name == "i64") return R::ok(DType::I64);
  if (name == "f32") return R::ok(DType::F32);
  if (name == "f64") return R::ok(DType::F64);
  return R::err("unknown dtype: " + std::string(name), "parse");
}

}  // namespace pico::tensor

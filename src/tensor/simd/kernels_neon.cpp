// NEON backend (aarch64). Emulates the canonical EIGHT-lane association with
// four float64x2_t accumulators (a = lanes {0,1}, b = {2,3}, c = {4,5},
// d = {6,7}): stage one of the contract's reduction (j ? j+4) is a?c and
// b?d, stage two combines those pairs, so results match the scalar
// reference and the x86 backends bit-for-bit. NEON's vminq/vmaxq propagate
// NaN (unlike MINPD), so the NaN-ignoring update rule is spelled out as
// compare+select: vbslq(vcltq(v, acc), v, acc) is exactly
// `(v < acc) ? v : acc` with NaN comparing false. scale_to_u8's fused op is
// vfmaq_f64 — the same single-rounding fma as std::fma in the scalar twin.
#include "tensor/simd/simd.hpp"

#if defined(PICO_HAVE_NEON)

#include <arm_neon.h>

#include <cmath>
#include <limits>

namespace pico::tensor::simd::neon {

MinMax64 minmax_f64(const double* p, size_t n) {
  const double inf = std::numeric_limits<double>::infinity();
  float64x2_t lo_a = vdupq_n_f64(inf), lo_b = lo_a, lo_c = lo_a, lo_d = lo_a;
  float64x2_t hi_a = vdupq_n_f64(-inf), hi_b = hi_a, hi_c = hi_a, hi_d = hi_a;
  const size_t body = n - n % 8;
  for (size_t i = 0; i < body; i += 8) {
    const float64x2_t va = vld1q_f64(p + i);
    const float64x2_t vb = vld1q_f64(p + i + 2);
    const float64x2_t vc = vld1q_f64(p + i + 4);
    const float64x2_t vd = vld1q_f64(p + i + 6);
    lo_a = vbslq_f64(vcltq_f64(va, lo_a), va, lo_a);
    lo_b = vbslq_f64(vcltq_f64(vb, lo_b), vb, lo_b);
    lo_c = vbslq_f64(vcltq_f64(vc, lo_c), vc, lo_c);
    lo_d = vbslq_f64(vcltq_f64(vd, lo_d), vd, lo_d);
    hi_a = vbslq_f64(vcgtq_f64(va, hi_a), va, hi_a);
    hi_b = vbslq_f64(vcgtq_f64(vb, hi_b), vb, hi_b);
    hi_c = vbslq_f64(vcgtq_f64(vc, hi_c), vc, hi_c);
    hi_d = vbslq_f64(vcgtq_f64(vd, hi_d), vd, hi_d);
  }
  // Stage 1: lanes j ? j+4 -> (m0,m1) and (m2,m3); stage 2: the pairs;
  // stage 3: the surviving two lanes; then the tail in index order.
  const float64x2_t lo_m01 = vbslq_f64(vcltq_f64(lo_a, lo_c), lo_a, lo_c);
  const float64x2_t lo_m23 = vbslq_f64(vcltq_f64(lo_b, lo_d), lo_b, lo_d);
  const float64x2_t hi_m01 = vbslq_f64(vcgtq_f64(hi_a, hi_c), hi_a, hi_c);
  const float64x2_t hi_m23 = vbslq_f64(vcgtq_f64(hi_b, hi_d), hi_b, hi_d);
  const float64x2_t lo_pair =
      vbslq_f64(vcltq_f64(lo_m01, lo_m23), lo_m01, lo_m23);
  const float64x2_t hi_pair =
      vbslq_f64(vcgtq_f64(hi_m01, hi_m23), hi_m01, hi_m23);
  const double lo0 = vgetq_lane_f64(lo_pair, 0), lo1 = vgetq_lane_f64(lo_pair, 1);
  const double hi0 = vgetq_lane_f64(hi_pair, 0), hi1 = vgetq_lane_f64(hi_pair, 1);
  double min = (lo0 < lo1) ? lo0 : lo1;
  double max = (hi0 > hi1) ? hi0 : hi1;
  for (size_t i = body; i < n; ++i) {
    const double v = p[i];
    min = (v < min) ? v : min;
    max = (v > max) ? v : max;
  }
  return {min, max};
}

double sum_f64(const double* p, size_t n) {
  float64x2_t acc_a = vdupq_n_f64(0.0), acc_b = acc_a, acc_c = acc_a,
              acc_d = acc_a;
  const size_t body = n - n % 8;
  for (size_t i = 0; i < body; i += 8) {
    acc_a = vaddq_f64(acc_a, vld1q_f64(p + i));
    acc_b = vaddq_f64(acc_b, vld1q_f64(p + i + 2));
    acc_c = vaddq_f64(acc_c, vld1q_f64(p + i + 4));
    acc_d = vaddq_f64(acc_d, vld1q_f64(p + i + 6));
  }
  const float64x2_t m01 = vaddq_f64(acc_a, acc_c);  // {l0+l4, l1+l5}
  const float64x2_t m23 = vaddq_f64(acc_b, acc_d);  // {l2+l6, l3+l7}
  const float64x2_t pair = vaddq_f64(m01, m23);     // {m0+m2, m1+m3}
  double s = vgetq_lane_f64(pair, 0) + vgetq_lane_f64(pair, 1);
  for (size_t i = body; i < n; ++i) s += p[i];
  return s;
}

void add_f64(double* acc, const double* p, size_t n) {
  const size_t body = n - n % 2;
  for (size_t i = 0; i < body; i += 2) {
    vst1q_f64(acc + i, vaddq_f64(vld1q_f64(acc + i), vld1q_f64(p + i)));
  }
  for (size_t i = body; i < n; ++i) acc[i] += p[i];
}

void scale_to_u8(const double* src, uint8_t* dst, size_t n, double lo,
                 double scale) {
  const float64x2_t vlo = vdupq_n_f64(lo);
  const float64x2_t vscale = vdupq_n_f64(scale);
  const float64x2_t vhalf = vdupq_n_f64(0.5);
  const float64x2_t vzero = vdupq_n_f64(0.0);
  const float64x2_t vmax = vdupq_n_f64(255.0);
  const size_t body = n - n % 2;
  for (size_t i = 0; i < body; i += 2) {
    // vfmaq(half, x, scale) = half + x*scale, fused — the contract's fma.
    float64x2_t y =
        vfmaq_f64(vhalf, vsubq_f64(vld1q_f64(src + i), vlo), vscale);
    y = vbslq_f64(vcgtq_f64(y, vzero), y, vzero);  // NaN -> 0
    y = vbslq_f64(vcltq_f64(y, vmax), y, vmax);
    const int64x2_t t = vcvtq_s64_f64(y);  // truncates toward zero
    dst[i] = static_cast<uint8_t>(vgetq_lane_s64(t, 0));
    dst[i + 1] = static_cast<uint8_t>(vgetq_lane_s64(t, 1));
  }
  for (size_t i = body; i < n; ++i) {
    double y = std::fma(src[i] - lo, scale, 0.5);
    y = (y > 0.0) ? y : 0.0;
    y = (y < 255.0) ? y : 255.0;
    dst[i] = static_cast<uint8_t>(static_cast<int32_t>(y));
  }
}

}  // namespace pico::tensor::simd::neon

#endif  // PICO_HAVE_NEON

// Scalar backend: the portable reference every other backend must match
// bit-for-bit. Horizontal reductions emulate the canonical eight-lane
// association (see simd.hpp) instead of a plain left fold, so a host that
// dispatches to AVX2/AVX-512/NEON and a host that stays scalar produce
// identical bits. scale_to_u8 uses std::fma — exactly fused regardless of
// hardware (glibc falls back to a correctly-rounded soft path on pre-FMA
// CPUs) — to match the single-rounding vfmadd the vector backends emit.
// Compiled with -ffp-contract=off: a compiler-contracted FMA anywhere else
// would round differently from the vector backends' two-op sequences.
#include "tensor/simd/simd.hpp"

#include <cmath>
#include <limits>

namespace pico::tensor::simd::scalar {

MinMax64 minmax_f64(const double* p, size_t n) {
  const double inf = std::numeric_limits<double>::infinity();
  double lo[8] = {inf, inf, inf, inf, inf, inf, inf, inf};
  double hi[8] = {-inf, -inf, -inf, -inf, -inf, -inf, -inf, -inf};
  const size_t body = n - n % 8;
  for (size_t i = 0; i < body; i += 8) {
    for (size_t j = 0; j < 8; ++j) {
      const double v = p[i + j];
      lo[j] = (v < lo[j]) ? v : lo[j];
      hi[j] = (v > hi[j]) ? v : hi[j];
    }
  }
  // 512-bit halving order: (0?4, 1?5, 2?6, 3?7), then (m0?m2, m1?m3), then
  // the surviving pair, then the tail in index order.
  double lo4[4], hi4[4];
  for (size_t j = 0; j < 4; ++j) {
    lo4[j] = (lo[j] < lo[j + 4]) ? lo[j] : lo[j + 4];
    hi4[j] = (hi[j] > hi[j + 4]) ? hi[j] : hi[j + 4];
  }
  double lo02 = (lo4[0] < lo4[2]) ? lo4[0] : lo4[2];
  double lo13 = (lo4[1] < lo4[3]) ? lo4[1] : lo4[3];
  double min = (lo02 < lo13) ? lo02 : lo13;
  double hi02 = (hi4[0] > hi4[2]) ? hi4[0] : hi4[2];
  double hi13 = (hi4[1] > hi4[3]) ? hi4[1] : hi4[3];
  double max = (hi02 > hi13) ? hi02 : hi13;
  for (size_t i = body; i < n; ++i) {
    const double v = p[i];
    min = (v < min) ? v : min;
    max = (v > max) ? v : max;
  }
  return {min, max};
}

double sum_f64(const double* p, size_t n) {
  double lane[8] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  const size_t body = n - n % 8;
  for (size_t i = 0; i < body; i += 8) {
    for (size_t j = 0; j < 8; ++j) lane[j] += p[i + j];
  }
  double m0 = lane[0] + lane[4];
  double m1 = lane[1] + lane[5];
  double m2 = lane[2] + lane[6];
  double m3 = lane[3] + lane[7];
  double s = (m0 + m2) + (m1 + m3);
  for (size_t i = body; i < n; ++i) s += p[i];
  return s;
}

void add_f64(double* acc, const double* p, size_t n) {
  for (size_t i = 0; i < n; ++i) acc[i] += p[i];
}

void scale_to_u8(const double* src, uint8_t* dst, size_t n, double lo,
                 double scale) {
  for (size_t i = 0; i < n; ++i) {
    double y = std::fma(src[i] - lo, scale, 0.5);
    y = (y > 0.0) ? y : 0.0;  // NaN compares false -> 0
    y = (y < 255.0) ? y : 255.0;
    dst[i] = static_cast<uint8_t>(static_cast<int32_t>(y));
  }
}

}  // namespace pico::tensor::simd::scalar

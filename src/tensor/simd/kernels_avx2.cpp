// AVX2 backend. Compiled with -mavx2 -mfma -ffp-contract=off (and only on
// x86 hosts — see src/tensor/CMakeLists.txt); callers reach it through the
// dispatcher, which verifies AVX2 *and* FMA CPU support at runtime before
// selecting it.
//
// Bit-exactness notes vs the scalar reference:
//  - _mm256_min_pd(v, acc) returns acc when v is NaN (MINPD yields the
//    second operand on NaN), which is exactly the `(v < m) ? v : m` rule.
//  - The eight canonical lanes live in two ymm registers (A = lanes 0..3,
//    B = lanes 4..7); combining A?B produces stage one of the contract's
//    reduction order, and the remaining stages are the 128-bit-halves
//    horizontal reduce the scalar twin emulates.
//  - scale_to_u8's only fused op is the explicit vfmadd the contract calls
//    for (std::fma in the scalar twin); contraction is off for the rest.
#include "tensor/simd/simd.hpp"

#if defined(PICO_HAVE_AVX2)

#include <immintrin.h>

#include <cmath>
#include <cstring>
#include <limits>

namespace pico::tensor::simd::avx2 {

MinMax64 minmax_f64(const double* p, size_t n) {
  const double inf = std::numeric_limits<double>::infinity();
  __m256d lo_a = _mm256_set1_pd(inf), lo_b = lo_a;
  __m256d hi_a = _mm256_set1_pd(-inf), hi_b = hi_a;
  const size_t body = n - n % 8;
  for (size_t i = 0; i < body; i += 8) {
    _mm_prefetch(reinterpret_cast<const char*>(p + i + 256), _MM_HINT_T0);
    const __m256d v0 = _mm256_loadu_pd(p + i);
    const __m256d v1 = _mm256_loadu_pd(p + i + 4);
    lo_a = _mm256_min_pd(v0, lo_a);
    lo_b = _mm256_min_pd(v1, lo_b);
    hi_a = _mm256_max_pd(v0, hi_a);
    hi_b = _mm256_max_pd(v1, hi_b);
  }
  // Stage 1 (lanes j ? j+4), then the 128-bit halves, then the pair.
  const __m256d lo = _mm256_min_pd(lo_a, lo_b);
  const __m256d hi = _mm256_max_pd(hi_a, hi_b);
  __m128d lo_half =
      _mm_min_pd(_mm256_castpd256_pd128(lo), _mm256_extractf128_pd(lo, 1));
  __m128d hi_half =
      _mm_max_pd(_mm256_castpd256_pd128(hi), _mm256_extractf128_pd(hi, 1));
  double min = _mm_cvtsd_f64(
      _mm_min_sd(lo_half, _mm_unpackhi_pd(lo_half, lo_half)));
  double max = _mm_cvtsd_f64(
      _mm_max_sd(hi_half, _mm_unpackhi_pd(hi_half, hi_half)));
  for (size_t i = body; i < n; ++i) {
    const double v = p[i];
    min = (v < min) ? v : min;
    max = (v > max) ? v : max;
  }
  return {min, max};
}

double sum_f64(const double* p, size_t n) {
  __m256d acc_a = _mm256_setzero_pd();
  __m256d acc_b = _mm256_setzero_pd();
  const size_t body = n - n % 8;
  for (size_t i = 0; i < body; i += 8) {
    acc_a = _mm256_add_pd(acc_a, _mm256_loadu_pd(p + i));
    acc_b = _mm256_add_pd(acc_b, _mm256_loadu_pd(p + i + 4));
  }
  const __m256d acc = _mm256_add_pd(acc_a, acc_b);
  __m128d half =
      _mm_add_pd(_mm256_castpd256_pd128(acc), _mm256_extractf128_pd(acc, 1));
  double s = _mm_cvtsd_f64(_mm_add_sd(half, _mm_unpackhi_pd(half, half)));
  for (size_t i = body; i < n; ++i) s += p[i];
  return s;
}

void add_f64(double* acc, const double* p, size_t n) {
  const size_t body = n - n % 4;
  for (size_t i = 0; i < body; i += 4) {
    _mm256_storeu_pd(
        acc + i, _mm256_add_pd(_mm256_loadu_pd(acc + i), _mm256_loadu_pd(p + i)));
  }
  for (size_t i = body; i < n; ++i) acc[i] += p[i];
}

void scale_to_u8(const double* src, uint8_t* dst, size_t n, double lo,
                 double scale) {
  const __m256d vlo = _mm256_set1_pd(lo);
  const __m256d vscale = _mm256_set1_pd(scale);
  const __m256d vhalf = _mm256_set1_pd(0.5);
  const __m256d vzero = _mm256_setzero_pd();
  const __m256d vmax = _mm256_set1_pd(255.0);
  // 16 elements per iteration: four 4-wide convert pipelines feeding two
  // i32->i16 packs and one i16->u8 pack into a single 16-byte store. The
  // saturating packs are exact because y is already clamped to [0, 255]
  // before cvttpd, so every i32 is in-range; per-element math is identical
  // to the scalar twin, and stores are independent, so widening the stride
  // cannot change any output byte. Prefetch runs ~2 KB ahead: the convert
  // pipeline otherwise keeps too few line fills in flight to reach DRAM
  // bandwidth on a single core.
  auto quads = [&](size_t i) {
    __m256d y = _mm256_fmadd_pd(
        _mm256_sub_pd(_mm256_loadu_pd(src + i), vlo), vscale, vhalf);
    y = _mm256_max_pd(y, vzero);  // NaN -> 0 (MAXPD returns 2nd op on NaN)
    y = _mm256_min_pd(y, vmax);
    return _mm256_cvttpd_epi32(y);
  };
  const size_t body16 = n - n % 16;
  for (size_t i = 0; i < body16; i += 16) {
    _mm_prefetch(reinterpret_cast<const char*>(src + i + 256), _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(src + i + 264), _MM_HINT_T0);
    const __m128i w0 = _mm_packs_epi32(quads(i), quads(i + 4));
    const __m128i w1 = _mm_packs_epi32(quads(i + 8), quads(i + 12));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_packus_epi16(w0, w1));
  }
  // Picks byte 0 of each of the four i32 lanes after cvttpd.
  const __m128i pack = _mm_setr_epi8(0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1,
                                     -1, -1, -1, -1, -1);
  const size_t body = n - n % 4;
  for (size_t i = body16; i < body; i += 4) {
    const int packed =
        _mm_cvtsi128_si32(_mm_shuffle_epi8(quads(i), pack));
    std::memcpy(dst + i, &packed, 4);
  }
  for (size_t i = body; i < n; ++i) {
    double y = std::fma(src[i] - lo, scale, 0.5);
    y = (y > 0.0) ? y : 0.0;
    y = (y < 255.0) ? y : 255.0;
    dst[i] = static_cast<uint8_t>(static_cast<int32_t>(y));
  }
}

}  // namespace pico::tensor::simd::avx2

#endif  // PICO_HAVE_AVX2

// AVX-512 backend. Compiled with -mavx512f -ffp-contract=off (and only when
// the toolchain takes the flag — see src/tensor/CMakeLists.txt); callers
// reach it through the dispatcher, which verifies AVX-512F CPU support at
// runtime before selecting it.
//
// Bit-exactness notes vs the scalar reference:
//  - The contract's eight canonical lanes are exactly one zmm register, and
//    its three-stage reduction order is exactly the 256-bit-halves then
//    128-bit-halves then pair extraction below.
//  - _mm512_min_pd(v, acc) returns acc when v is NaN (VMINPD yields the
//    second operand on NaN), which is the `(v < m) ? v : m` rule.
//  - scale_to_u8's only fused op is the explicit vfmadd the contract calls
//    for; VPMOVDB truncates each i32 to its low byte, exact because y was
//    clamped to [0, 255] before the conversion.
#include "tensor/simd/simd.hpp"

#if defined(PICO_HAVE_AVX512)

#include <immintrin.h>

#include <cmath>

#include <limits>

namespace pico::tensor::simd::avx512 {

namespace {

// Canonical three-stage reduction from one zmm of eight lanes.
double reduce_min(__m512d lo) {
  const __m256d lo4 =
      _mm256_min_pd(_mm512_castpd512_pd256(lo), _mm512_extractf64x4_pd(lo, 1));
  const __m128d lo2 =
      _mm_min_pd(_mm256_castpd256_pd128(lo4), _mm256_extractf128_pd(lo4, 1));
  return _mm_cvtsd_f64(_mm_min_sd(lo2, _mm_unpackhi_pd(lo2, lo2)));
}

double reduce_max(__m512d hi) {
  const __m256d hi4 =
      _mm256_max_pd(_mm512_castpd512_pd256(hi), _mm512_extractf64x4_pd(hi, 1));
  const __m128d hi2 =
      _mm_max_pd(_mm256_castpd256_pd128(hi4), _mm256_extractf128_pd(hi4, 1));
  return _mm_cvtsd_f64(_mm_max_sd(hi2, _mm_unpackhi_pd(hi2, hi2)));
}

}  // namespace

MinMax64 minmax_f64(const double* p, size_t n) {
  const double inf = std::numeric_limits<double>::infinity();
  __m512d lo = _mm512_set1_pd(inf);
  __m512d hi = _mm512_set1_pd(-inf);
  const size_t body = n - n % 8;
  for (size_t i = 0; i < body; i += 8) {
    _mm_prefetch(reinterpret_cast<const char*>(p + i + 256), _MM_HINT_T0);
    const __m512d v = _mm512_loadu_pd(p + i);
    lo = _mm512_min_pd(v, lo);
    hi = _mm512_max_pd(v, hi);
  }
  double min = reduce_min(lo);
  double max = reduce_max(hi);
  for (size_t i = body; i < n; ++i) {
    const double v = p[i];
    min = (v < min) ? v : min;
    max = (v > max) ? v : max;
  }
  return {min, max};
}

double sum_f64(const double* p, size_t n) {
  __m512d acc = _mm512_setzero_pd();
  const size_t body = n - n % 8;
  for (size_t i = 0; i < body; i += 8) {
    acc = _mm512_add_pd(acc, _mm512_loadu_pd(p + i));
  }
  const __m256d acc4 = _mm256_add_pd(_mm512_castpd512_pd256(acc),
                                     _mm512_extractf64x4_pd(acc, 1));
  const __m128d acc2 = _mm_add_pd(_mm256_castpd256_pd128(acc4),
                                  _mm256_extractf128_pd(acc4, 1));
  double s = _mm_cvtsd_f64(_mm_add_sd(acc2, _mm_unpackhi_pd(acc2, acc2)));
  for (size_t i = body; i < n; ++i) s += p[i];
  return s;
}

void add_f64(double* acc, const double* p, size_t n) {
  const size_t body = n - n % 8;
  for (size_t i = 0; i < body; i += 8) {
    _mm512_storeu_pd(
        acc + i, _mm512_add_pd(_mm512_loadu_pd(acc + i), _mm512_loadu_pd(p + i)));
  }
  for (size_t i = body; i < n; ++i) acc[i] += p[i];
}

void scale_to_u8(const double* src, uint8_t* dst, size_t n, double lo,
                 double scale) {
  const __m512d vlo = _mm512_set1_pd(lo);
  const __m512d vscale = _mm512_set1_pd(scale);
  const __m512d vhalf = _mm512_set1_pd(0.5);
  const __m512d vzero = _mm512_setzero_pd();
  const __m512d vmax = _mm512_set1_pd(255.0);
  // 16 elements per iteration: two 8-wide convert pipelines, their i32
  // results joined and narrowed by one VPMOVDB into a 16-byte store.
  // Prefetch runs ~2 KB ahead: the convert pipeline otherwise keeps too few
  // line fills in flight to reach DRAM bandwidth on a single core.
  auto oct = [&](size_t i) {
    __m512d y = _mm512_fmadd_pd(
        _mm512_sub_pd(_mm512_loadu_pd(src + i), vlo), vscale, vhalf);
    y = _mm512_max_pd(y, vzero);  // NaN -> 0 (VMAXPD returns 2nd op on NaN)
    y = _mm512_min_pd(y, vmax);
    return _mm512_cvttpd_epi32(y);  // eight in-range i32 in a ymm
  };
  const size_t body = n - n % 16;
  for (size_t i = 0; i < body; i += 16) {
    _mm_prefetch(reinterpret_cast<const char*>(src + i + 256), _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(src + i + 264), _MM_HINT_T0);
    const __m512i d = _mm512_inserti64x4(_mm512_castsi256_si512(oct(i)),
                                         oct(i + 8), 1);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm512_cvtepi32_epi8(d));
  }
  for (size_t i = body; i < n; ++i) {
    double y = std::fma(src[i] - lo, scale, 0.5);
    y = (y > 0.0) ? y : 0.0;
    y = (y < 255.0) ? y : 255.0;
    dst[i] = static_cast<uint8_t>(static_cast<int32_t>(y));
  }
}

}  // namespace pico::tensor::simd::avx512

#endif  // PICO_HAVE_AVX512

#pragma once
// Vectorized primitives behind the tensor data-plane kernels (convert,
// normalize, axis reductions). Four backends — scalar, AVX2, AVX-512, NEON —
// share ONE canonical arithmetic contract so results are bit-exact across
// backends, which in turn keeps the sequential/parallel parity guarantees
// of tensor/ops.hpp intact no matter which backend the host dispatches to.
//
// Canonical contract (every backend implements exactly this):
//  - min/max update rule is `m = (v < m) ? v : m` (resp. `>`): NaN inputs
//    are ignored (comparison is false), matching the historical scalar scan.
//  - Horizontal reductions (minmax_f64, sum_f64) use EIGHT lane
//    accumulators, lane j consuming p[8*i + j], combined in three fixed
//    stages: (l0?l4, l1?l5, l2?l6, l3?l7), then (m0?m2, m1?m3), then the
//    surviving pair — the natural halving order of a 512-bit register (and
//    of an AVX2 two-register / NEON four-register emulation) — followed by
//    an in-order scalar pass over the n%8 tail. The scalar backend emulates
//    the same eight-lane association, so finite sums agree to the last bit.
//    One carve-out: when a sum's inputs contain NaN (or produce inf - inf),
//    the result is NaN on every backend but its sign/payload bits are
//    unspecified — IEEE 754 leaves NaN propagation to the implementation,
//    and the compiler may legally swap the operands of a commutative `+` in
//    the scalar reference while ADDPD propagates its *first* NaN operand.
//  - scale_to_u8 computes y = fma(v - lo, scale, 0.5) — one explicit fused
//    multiply-add, a SINGLE rounding, implemented as std::fma in the scalar
//    backend and the native FMA instruction in the vector backends — then
//    clamps to [0, 255] with NaN mapping to 0 (`y = (y > 0) ? y : 0` then
//    `y = (y < 255) ? y : 255`) and truncates. For NaN/inf this replaces
//    what used to be undefined behaviour with a defined result.
//  - Vertical ops (add_f64, scale_to_u8) are elementwise; parity needs only
//    identical per-element arithmetic. All backend translation units compile
//    with -ffp-contract=off so the ONLY fused op is the explicit one above —
//    the compiler may not contract anything else behind our back.
//
// Dispatch: resolved once per process. `PICO_SIMD=scalar|avx2|avx512|neon|
// native` forces a backend (forcing an unavailable one falls back to
// scalar); otherwise the best backend the CPU supports wins
// (__builtin_cpu_supports on x86, compile-time __ARM_NEON on aarch64).
#include <cstddef>
#include <cstdint>

namespace pico::tensor::simd {

enum class Level { kScalar = 0, kAvx2 = 1, kNeon = 2, kAvx512 = 3 };

/// Backend chosen for this process (env override, else CPU detection).
Level active_level();
const char* level_name(Level level);
/// level_name(active_level()) — what benches/telemetry report.
const char* active_level_name();

struct MinMax64 {
  double min;
  double max;
};

/// Fused min+max scan, NaN-ignoring. Empty input -> {+inf, -inf}.
MinMax64 minmax_f64(const double* p, size_t n);

/// Eight-lane-associated sum (see contract above). Empty input -> 0.0.
double sum_f64(const double* p, size_t n);

/// acc[i] += p[i] for i < n.
void add_f64(double* acc, const double* p, size_t n);

/// dst[i] = saturating-u8(fma(src[i] - lo, scale, 0.5)); NaN -> 0.
void scale_to_u8(const double* src, uint8_t* dst, size_t n, double lo,
                 double scale);

/// Scalar reference twins — always available regardless of dispatch, so
/// parity tests can pit the active backend against them on any host.
namespace scalar {
MinMax64 minmax_f64(const double* p, size_t n);
double sum_f64(const double* p, size_t n);
void add_f64(double* acc, const double* p, size_t n);
void scale_to_u8(const double* src, uint8_t* dst, size_t n, double lo,
                 double scale);
}  // namespace scalar

#if defined(PICO_HAVE_AVX2)
namespace avx2 {
MinMax64 minmax_f64(const double* p, size_t n);
double sum_f64(const double* p, size_t n);
void add_f64(double* acc, const double* p, size_t n);
void scale_to_u8(const double* src, uint8_t* dst, size_t n, double lo,
                 double scale);
}  // namespace avx2
#endif

#if defined(PICO_HAVE_AVX512)
namespace avx512 {
MinMax64 minmax_f64(const double* p, size_t n);
double sum_f64(const double* p, size_t n);
void add_f64(double* acc, const double* p, size_t n);
void scale_to_u8(const double* src, uint8_t* dst, size_t n, double lo,
                 double scale);
}  // namespace avx512
#endif

#if defined(PICO_HAVE_NEON)
namespace neon {
MinMax64 minmax_f64(const double* p, size_t n);
double sum_f64(const double* p, size_t n);
void add_f64(double* acc, const double* p, size_t n);
void scale_to_u8(const double* src, uint8_t* dst, size_t n, double lo,
                 double scale);
}  // namespace neon
#endif

}  // namespace pico::tensor::simd

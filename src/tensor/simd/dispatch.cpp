// Backend selection, resolved once per process. Order of precedence:
//  1. PICO_SIMD env var: "scalar" | "avx2" | "avx512" | "neon" | "native".
//     Forcing a
//     backend the build or CPU lacks silently falls back to scalar — tests
//     use this to run the reference path on any host.
//  2. CPU detection: __builtin_cpu_supports on x86 (avx512f, else avx2+fma;
//     the TUs are only compiled in when the toolchain takes the flags),
//     compile-time __ARM_NEON on aarch64.
// This TU is compiled WITHOUT vector flags: it must run on pre-AVX2 hosts
// up to the point of deciding they are pre-AVX2.
#include "tensor/simd/simd.hpp"

#include <cstdlib>
#include <cstring>

namespace pico::tensor::simd {

namespace {

bool cpu_has_avx2() {
#if defined(PICO_HAVE_AVX2) && (defined(__GNUC__) || defined(__clang__))
  // The AVX2 backend uses vfmadd, a separate ISA extension from AVX2.
  return __builtin_cpu_supports("avx2") != 0 &&
         __builtin_cpu_supports("fma") != 0;
#else
  return false;
#endif
}

bool cpu_has_avx512() {
#if defined(PICO_HAVE_AVX512) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx512f") != 0;
#else
  return false;
#endif
}

bool cpu_has_neon() {
#if defined(PICO_HAVE_NEON)
  return true;  // NEON is baseline on aarch64
#else
  return false;
#endif
}

Level detect() {
  if (const char* env = std::getenv("PICO_SIMD")) {
    if (std::strcmp(env, "scalar") == 0) return Level::kScalar;
    if (std::strcmp(env, "avx2") == 0) {
      return cpu_has_avx2() ? Level::kAvx2 : Level::kScalar;
    }
    if (std::strcmp(env, "avx512") == 0) {
      return cpu_has_avx512() ? Level::kAvx512 : Level::kScalar;
    }
    if (std::strcmp(env, "neon") == 0) {
      return cpu_has_neon() ? Level::kNeon : Level::kScalar;
    }
    // "native" or anything unrecognized: fall through to detection.
  }
  if (cpu_has_avx512()) return Level::kAvx512;
  if (cpu_has_avx2()) return Level::kAvx2;
  if (cpu_has_neon()) return Level::kNeon;
  return Level::kScalar;
}

}  // namespace

Level active_level() {
  static const Level kLevel = detect();
  return kLevel;
}

const char* level_name(Level level) {
  switch (level) {
    case Level::kAvx2: return "avx2";
    case Level::kAvx512: return "avx512";
    case Level::kNeon: return "neon";
    case Level::kScalar: return "scalar";
  }
  return "scalar";
}

const char* active_level_name() { return level_name(active_level()); }

MinMax64 minmax_f64(const double* p, size_t n) {
  switch (active_level()) {
#if defined(PICO_HAVE_AVX2)
    case Level::kAvx2: return avx2::minmax_f64(p, n);
#endif
#if defined(PICO_HAVE_AVX512)
    case Level::kAvx512: return avx512::minmax_f64(p, n);
#endif
#if defined(PICO_HAVE_NEON)
    case Level::kNeon: return neon::minmax_f64(p, n);
#endif
    default: return scalar::minmax_f64(p, n);
  }
}

double sum_f64(const double* p, size_t n) {
  switch (active_level()) {
#if defined(PICO_HAVE_AVX2)
    case Level::kAvx2: return avx2::sum_f64(p, n);
#endif
#if defined(PICO_HAVE_AVX512)
    case Level::kAvx512: return avx512::sum_f64(p, n);
#endif
#if defined(PICO_HAVE_NEON)
    case Level::kNeon: return neon::sum_f64(p, n);
#endif
    default: return scalar::sum_f64(p, n);
  }
}

void add_f64(double* acc, const double* p, size_t n) {
  switch (active_level()) {
#if defined(PICO_HAVE_AVX2)
    case Level::kAvx2: return avx2::add_f64(acc, p, n);
#endif
#if defined(PICO_HAVE_AVX512)
    case Level::kAvx512: return avx512::add_f64(acc, p, n);
#endif
#if defined(PICO_HAVE_NEON)
    case Level::kNeon: return neon::add_f64(acc, p, n);
#endif
    default: return scalar::add_f64(acc, p, n);
  }
}

void scale_to_u8(const double* src, uint8_t* dst, size_t n, double lo,
                 double scale) {
  switch (active_level()) {
#if defined(PICO_HAVE_AVX2)
    case Level::kAvx2: return avx2::scale_to_u8(src, dst, n, lo, scale);
#endif
#if defined(PICO_HAVE_AVX512)
    case Level::kAvx512: return avx512::scale_to_u8(src, dst, n, lo, scale);
#endif
#if defined(PICO_HAVE_NEON)
    case Level::kNeon: return neon::scale_to_u8(src, dst, n, lo, scale);
#endif
    default: return scalar::scale_to_u8(src, dst, n, lo, scale);
  }
}

}  // namespace pico::tensor::simd

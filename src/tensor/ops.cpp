#include "tensor/ops.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace pico::tensor {

namespace {

/// Row-partition grain for kernels whose outputs are positionally determined
/// (disjoint writes, per-element accumulation wholly inside one chunk): the
/// grain may adapt to the pool width without affecting results.
size_t row_grain(size_t rows, const util::ThreadPool& pool) {
  return std::max<size_t>(1, rows / (4 * pool.thread_count()));
}

}  // namespace

Tensor<double> sum_axis3(const Tensor<double>& t, size_t axis) {
  assert(t.rank() == 3 && axis < 3);
  const size_t d0 = t.dim(0), d1 = t.dim(1), d2 = t.dim(2);
  Shape out_shape;
  if (axis == 0) out_shape = {d1, d2};
  else if (axis == 1) out_shape = {d0, d2};
  else out_shape = {d0, d1};
  Tensor<double> out(out_shape);

  // Specialized loops keep the innermost stride unit-length where possible.
  if (axis == 2) {
    for (size_t i = 0; i < d0; ++i) {
      for (size_t j = 0; j < d1; ++j) {
        double acc = 0;
        const double* p = &t(i, j, 0);
        for (size_t k = 0; k < d2; ++k) acc += p[k];
        out(i, j) = acc;
      }
    }
  } else if (axis == 1) {
    for (size_t i = 0; i < d0; ++i) {
      double* o = &out(i, 0);
      std::fill(o, o + d2, 0.0);
      for (size_t j = 0; j < d1; ++j) {
        const double* p = &t(i, j, 0);
        for (size_t k = 0; k < d2; ++k) o[k] += p[k];
      }
    }
  } else {
    for (size_t j = 0; j < d1; ++j) {
      double* o = &out(j, 0);
      std::fill(o, o + d2, 0.0);
    }
    for (size_t i = 0; i < d0; ++i) {
      for (size_t j = 0; j < d1; ++j) {
        const double* p = &t(i, j, 0);
        double* o = &out(j, 0);
        for (size_t k = 0; k < d2; ++k) o[k] += p[k];
      }
    }
  }
  return out;
}

Tensor<double> sum_keep_axis3(const Tensor<double>& t, size_t keep) {
  assert(t.rank() == 3 && keep < 3);
  const size_t d0 = t.dim(0), d1 = t.dim(1), d2 = t.dim(2);
  Tensor<double> out(Shape{t.dim(keep)});
  if (keep == 2) {
    for (size_t i = 0; i < d0; ++i) {
      for (size_t j = 0; j < d1; ++j) {
        const double* p = &t(i, j, 0);
        for (size_t k = 0; k < d2; ++k) out(k) += p[k];
      }
    }
  } else if (keep == 0) {
    for (size_t i = 0; i < d0; ++i) {
      double acc = 0;
      for (size_t j = 0; j < d1; ++j) {
        const double* p = &t(i, j, 0);
        for (size_t k = 0; k < d2; ++k) acc += p[k];
      }
      out(i) = acc;
    }
  } else {
    for (size_t i = 0; i < d0; ++i) {
      for (size_t j = 0; j < d1; ++j) {
        const double* p = &t(i, j, 0);
        double acc = 0;
        for (size_t k = 0; k < d2; ++k) acc += p[k];
        out(j) += acc;
      }
    }
  }
  return out;
}

Tensor<double> sum_axis3(const Tensor<double>& t, size_t axis,
                         util::ThreadPool& pool) {
  assert(t.rank() == 3 && axis < 3);
  const size_t d0 = t.dim(0), d1 = t.dim(1), d2 = t.dim(2);
  Shape out_shape;
  if (axis == 0) out_shape = {d1, d2};
  else if (axis == 1) out_shape = {d0, d2};
  else out_shape = {d0, d1};
  Tensor<double> out(out_shape);

  // Every output element is produced by exactly one chunk, accumulated in
  // the same index order as the sequential loops: bit-identical results.
  if (axis == 2) {
    pool.parallel_chunks(d0, row_grain(d0, pool), [&](size_t ib, size_t ie) {
      for (size_t i = ib; i < ie; ++i) {
        for (size_t j = 0; j < d1; ++j) {
          double acc = 0;
          const double* p = &t(i, j, 0);
          for (size_t k = 0; k < d2; ++k) acc += p[k];
          out(i, j) = acc;
        }
      }
    });
  } else if (axis == 1) {
    pool.parallel_chunks(d0, row_grain(d0, pool), [&](size_t ib, size_t ie) {
      for (size_t i = ib; i < ie; ++i) {
        double* o = &out(i, 0);
        std::fill(o, o + d2, 0.0);
        for (size_t j = 0; j < d1; ++j) {
          const double* p = &t(i, j, 0);
          for (size_t k = 0; k < d2; ++k) o[k] += p[k];
        }
      }
    });
  } else {
    pool.parallel_chunks(d1, row_grain(d1, pool), [&](size_t jb, size_t je) {
      for (size_t j = jb; j < je; ++j) {
        double* o = &out(j, 0);
        std::fill(o, o + d2, 0.0);
      }
      for (size_t i = 0; i < d0; ++i) {
        for (size_t j = jb; j < je; ++j) {
          const double* p = &t(i, j, 0);
          double* o = &out(j, 0);
          for (size_t k = 0; k < d2; ++k) o[k] += p[k];
        }
      }
    });
  }
  return out;
}

Tensor<double> sum_keep_axis3(const Tensor<double>& t, size_t keep,
                              util::ThreadPool& pool) {
  assert(t.rank() == 3 && keep < 3);
  const size_t d0 = t.dim(0), d1 = t.dim(1), d2 = t.dim(2);
  Tensor<double> out(Shape{t.dim(keep)});
  if (keep == 2) {
    // Disjoint spectral ranges per chunk; each out(k) accumulates over (i, j)
    // in the sequential lexicographic order.
    pool.parallel_chunks(d2, row_grain(d2, pool), [&](size_t kb, size_t ke) {
      for (size_t i = 0; i < d0; ++i) {
        for (size_t j = 0; j < d1; ++j) {
          const double* p = &t(i, j, 0);
          for (size_t k = kb; k < ke; ++k) out(k) += p[k];
        }
      }
    });
  } else if (keep == 0) {
    pool.parallel_chunks(d0, row_grain(d0, pool), [&](size_t ib, size_t ie) {
      for (size_t i = ib; i < ie; ++i) {
        double acc = 0;
        for (size_t j = 0; j < d1; ++j) {
          const double* p = &t(i, j, 0);
          for (size_t k = 0; k < d2; ++k) acc += p[k];
        }
        out(i) = acc;
      }
    });
  } else {
    pool.parallel_chunks(d1, row_grain(d1, pool), [&](size_t jb, size_t je) {
      for (size_t i = 0; i < d0; ++i) {
        for (size_t j = jb; j < je; ++j) {
          const double* p = &t(i, j, 0);
          double acc = 0;
          for (size_t k = 0; k < d2; ++k) acc += p[k];
          out(j) += acc;
        }
      }
    });
  }
  return out;
}

double min_value(const Tensor<double>& t) {
  double m = std::numeric_limits<double>::infinity();
  for (double v : t.data()) m = std::min(m, v);
  return m;
}

double max_value(const Tensor<double>& t) {
  double m = -std::numeric_limits<double>::infinity();
  for (double v : t.data()) m = std::max(m, v);
  return m;
}

MinMax minmax_value(const Tensor<double>& t) {
  MinMax mm{std::numeric_limits<double>::infinity(),
            -std::numeric_limits<double>::infinity()};
  for (double v : t.data()) {
    mm.min = std::min(mm.min, v);
    mm.max = std::max(mm.max, v);
  }
  return mm;
}

MinMax minmax_value(const Tensor<double>& t, util::ThreadPool& pool) {
  auto src = t.data();
  MinMax identity{std::numeric_limits<double>::infinity(),
                  -std::numeric_limits<double>::infinity()};
  return pool.parallel_reduce<MinMax>(
      src.size(), util::ThreadPool::kReduceGrain, identity,
      [&src](size_t b, size_t e) {
        MinMax mm{std::numeric_limits<double>::infinity(),
                  -std::numeric_limits<double>::infinity()};
        for (size_t i = b; i < e; ++i) {
          mm.min = std::min(mm.min, src[i]);
          mm.max = std::max(mm.max, src[i]);
        }
        return mm;
      },
      [](MinMax a, MinMax b) {
        return MinMax{std::min(a.min, b.min), std::max(a.max, b.max)};
      });
}

double sum_value(const Tensor<double>& t) {
  double s = 0;
  for (double v : t.data()) s += v;
  return s;
}

double mean_value(const Tensor<double>& t) {
  return t.size() == 0 ? 0.0 : sum_value(t) / static_cast<double>(t.size());
}

Tensor<uint8_t> to_u8_normalized(const Tensor<double>& t) {
  Tensor<uint8_t> out(t.shape());
  if (t.size() == 0) return out;
  MinMax mm = minmax_value(t);  // fused: one scan, not a min pass + max pass
  double scale = mm.max > mm.min ? 255.0 / (mm.max - mm.min) : 0.0;
  auto src = t.data();
  auto dst = out.data();
  for (size_t i = 0; i < src.size(); ++i) {
    dst[i] = static_cast<uint8_t>((src[i] - mm.min) * scale + 0.5);
  }
  return out;
}

Tensor<uint8_t> to_u8_normalized(const Tensor<double>& t,
                                 util::ThreadPool& pool) {
  Tensor<uint8_t> out(t.shape());
  if (t.size() == 0) return out;
  MinMax mm = minmax_value(t, pool);
  double scale = mm.max > mm.min ? 255.0 / (mm.max - mm.min) : 0.0;
  auto src = t.data();
  auto dst = out.data();
  pool.parallel_chunks(src.size(), row_grain(src.size(), pool),
                       [&](size_t b, size_t e) {
                         for (size_t i = b; i < e; ++i) {
                           dst[i] = static_cast<uint8_t>((src[i] - mm.min) *
                                                             scale +
                                                         0.5);
                         }
                       });
  return out;
}

namespace {
template <typename From, typename To>
Tensor<To> convert(const Tensor<From>& t) {
  Tensor<To> out(t.shape());
  auto src = t.data();
  auto dst = out.data();
  for (size_t i = 0; i < src.size(); ++i) dst[i] = static_cast<To>(src[i]);
  return out;
}
}  // namespace

Tensor<double> to_f64(const Tensor<uint8_t>& t) { return convert<uint8_t, double>(t); }
Tensor<double> to_f64(const Tensor<uint16_t>& t) { return convert<uint16_t, double>(t); }
Tensor<double> to_f64(const Tensor<uint32_t>& t) { return convert<uint32_t, double>(t); }
Tensor<float> to_f32(const Tensor<double>& t) { return convert<double, float>(t); }
Tensor<double> from_f32(const Tensor<float>& t) { return convert<float, double>(t); }

void add_inplace(Tensor<double>& a, const Tensor<double>& b) {
  assert(a.shape() == b.shape());
  auto pa = a.data();
  auto pb = b.data();
  for (size_t i = 0; i < pa.size(); ++i) pa[i] += pb[i];
}

void scale_inplace(Tensor<double>& a, double k) {
  for (double& v : a.data()) v *= k;
}

}  // namespace pico::tensor

#include "tensor/ops.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "tensor/simd/simd.hpp"

namespace pico::tensor {

namespace {

/// Row-partition grain for kernels whose outputs are positionally determined
/// (disjoint writes, per-element accumulation wholly inside one chunk): the
/// grain may adapt to the pool width without affecting results.
size_t row_grain(size_t rows, const util::ThreadPool& pool) {
  return std::max<size_t>(1, rows / (4 * pool.thread_count()));
}

/// Same, rounded up to a multiple of `align` elements so chunk boundaries
/// land on cache-line edges and adjacent chunks never write the same line
/// (the sum_keep_axis3 false-sharing fix). 8 doubles or 64 u8 = one 64-byte
/// line. Purely a partitioning choice — results are unaffected.
size_t aligned_grain(size_t n, const util::ThreadPool& pool, size_t align) {
  const size_t g = row_grain(n, pool);
  return ((g + align - 1) / align) * align;
}

constexpr size_t kLineF64 = 8;   // doubles per 64-byte cache line
constexpr size_t kLineU8 = 64;   // bytes per cache line

}  // namespace

Tensor<double> sum_axis3(const Tensor<double>& t, size_t axis) {
  assert(t.rank() == 3 && axis < 3);
  const size_t d0 = t.dim(0), d1 = t.dim(1), d2 = t.dim(2);
  Shape out_shape;
  if (axis == 0) out_shape = {d1, d2};
  else if (axis == 1) out_shape = {d0, d2};
  else out_shape = {d0, d1};
  Tensor<double> out(out_shape);

  // Specialized loops keep the innermost stride unit-length where possible;
  // the unit-stride inner loops are the vectorized simd primitives.
  if (axis == 2) {
    for (size_t i = 0; i < d0; ++i) {
      for (size_t j = 0; j < d1; ++j) {
        out(i, j) = simd::sum_f64(&t(i, j, 0), d2);
      }
    }
  } else if (axis == 1) {
    for (size_t i = 0; i < d0; ++i) {
      double* o = &out(i, 0);
      std::fill(o, o + d2, 0.0);
      for (size_t j = 0; j < d1; ++j) simd::add_f64(o, &t(i, j, 0), d2);
    }
  } else {
    for (size_t j = 0; j < d1; ++j) {
      double* o = &out(j, 0);
      std::fill(o, o + d2, 0.0);
    }
    for (size_t i = 0; i < d0; ++i) {
      for (size_t j = 0; j < d1; ++j) {
        simd::add_f64(&out(j, 0), &t(i, j, 0), d2);
      }
    }
  }
  return out;
}

Tensor<double> sum_keep_axis3(const Tensor<double>& t, size_t keep) {
  assert(t.rank() == 3 && keep < 3);
  const size_t d0 = t.dim(0), d1 = t.dim(1), d2 = t.dim(2);
  Tensor<double> out(Shape{t.dim(keep)});
  if (keep == 2) {
    for (size_t i = 0; i < d0; ++i) {
      for (size_t j = 0; j < d1; ++j) {
        simd::add_f64(&out(0), &t(i, j, 0), d2);
      }
    }
  } else if (keep == 0) {
    // The (j, k) slab for fixed i is contiguous: one flat reduction per i.
    for (size_t i = 0; i < d0; ++i) {
      out(i) = simd::sum_f64(&t(i, 0, 0), d1 * d2);
    }
  } else {
    for (size_t i = 0; i < d0; ++i) {
      for (size_t j = 0; j < d1; ++j) {
        out(j) += simd::sum_f64(&t(i, j, 0), d2);
      }
    }
  }
  return out;
}

Tensor<double> sum_axis3(const Tensor<double>& t, size_t axis,
                         util::ThreadPool& pool) {
  assert(t.rank() == 3 && axis < 3);
  const size_t d0 = t.dim(0), d1 = t.dim(1), d2 = t.dim(2);
  Shape out_shape;
  if (axis == 0) out_shape = {d1, d2};
  else if (axis == 1) out_shape = {d0, d2};
  else out_shape = {d0, d1};
  Tensor<double> out(out_shape);

  // Every output element is produced by exactly one chunk, accumulated in
  // the same index order (and with the same simd primitives) as the
  // sequential loops: bit-identical results.
  if (axis == 2) {
    pool.parallel_chunks(d0, row_grain(d0, pool), [&](size_t ib, size_t ie) {
      for (size_t i = ib; i < ie; ++i) {
        for (size_t j = 0; j < d1; ++j) {
          out(i, j) = simd::sum_f64(&t(i, j, 0), d2);
        }
      }
    });
  } else if (axis == 1) {
    pool.parallel_chunks(d0, row_grain(d0, pool), [&](size_t ib, size_t ie) {
      for (size_t i = ib; i < ie; ++i) {
        double* o = &out(i, 0);
        std::fill(o, o + d2, 0.0);
        for (size_t j = 0; j < d1; ++j) simd::add_f64(o, &t(i, j, 0), d2);
      }
    });
  } else {
    pool.parallel_chunks(d1, row_grain(d1, pool), [&](size_t jb, size_t je) {
      for (size_t j = jb; j < je; ++j) {
        double* o = &out(j, 0);
        std::fill(o, o + d2, 0.0);
      }
      for (size_t i = 0; i < d0; ++i) {
        for (size_t j = jb; j < je; ++j) {
          simd::add_f64(&out(j, 0), &t(i, j, 0), d2);
        }
      }
    });
  }
  return out;
}

Tensor<double> sum_keep_axis3(const Tensor<double>& t, size_t keep,
                              util::ThreadPool& pool) {
  assert(t.rank() == 3 && keep < 3);
  const size_t d0 = t.dim(0), d1 = t.dim(1), d2 = t.dim(2);
  Tensor<double> out(Shape{t.dim(keep)});
  if (keep == 2) {
    // Disjoint spectral ranges per chunk; each out(k) accumulates over (i, j)
    // in the sequential lexicographic order. The grain is cache-line-aligned
    // so neighbouring chunks never accumulate into the same output line —
    // unaligned grains false-shared out() rows and ran slower in parallel
    // than sequentially.
    pool.parallel_chunks(
        d2, aligned_grain(d2, pool, kLineF64), [&](size_t kb, size_t ke) {
          for (size_t i = 0; i < d0; ++i) {
            for (size_t j = 0; j < d1; ++j) {
              simd::add_f64(&out(kb), &t(i, j, kb), ke - kb);
            }
          }
        });
  } else if (keep == 0) {
    pool.parallel_chunks(d0, row_grain(d0, pool), [&](size_t ib, size_t ie) {
      for (size_t i = ib; i < ie; ++i) {
        out(i) = simd::sum_f64(&t(i, 0, 0), d1 * d2);
      }
    });
  } else {
    pool.parallel_chunks(d1, row_grain(d1, pool), [&](size_t jb, size_t je) {
      for (size_t i = 0; i < d0; ++i) {
        for (size_t j = jb; j < je; ++j) {
          out(j) += simd::sum_f64(&t(i, j, 0), d2);
        }
      }
    });
  }
  return out;
}

double min_value(const Tensor<double>& t) {
  return simd::minmax_f64(t.data().data(), t.size()).min;
}

double max_value(const Tensor<double>& t) {
  return simd::minmax_f64(t.data().data(), t.size()).max;
}

MinMax minmax_value(const Tensor<double>& t) {
  simd::MinMax64 mm = simd::minmax_f64(t.data().data(), t.size());
  return MinMax{mm.min, mm.max};
}

MinMax minmax_value(const Tensor<double>& t, util::ThreadPool& pool) {
  auto src = t.data();
  MinMax identity{std::numeric_limits<double>::infinity(),
                  -std::numeric_limits<double>::infinity()};
  return pool.parallel_reduce<MinMax>(
      src.size(), util::ThreadPool::kReduceGrain, identity,
      [&src](size_t b, size_t e) {
        simd::MinMax64 mm = simd::minmax_f64(src.data() + b, e - b);
        return MinMax{mm.min, mm.max};
      },
      [](MinMax a, MinMax b) {
        // Same (v < acc) ? v : acc update rule as the scan itself.
        return MinMax{(b.min < a.min) ? b.min : a.min,
                      (b.max > a.max) ? b.max : a.max};
      });
}

double sum_value(const Tensor<double>& t) {
  return simd::sum_f64(t.data().data(), t.size());
}

double mean_value(const Tensor<double>& t) {
  return t.size() == 0 ? 0.0 : sum_value(t) / static_cast<double>(t.size());
}

void to_u8_normalized_into(const Tensor<double>& t, Tensor<uint8_t>& out) {
  assert(out.shape() == t.shape());
  if (t.size() == 0) return;
  MinMax mm = minmax_value(t);  // fused: one scan, not a min pass + max pass
  double scale = mm.max > mm.min ? 255.0 / (mm.max - mm.min) : 0.0;
  simd::scale_to_u8(t.data().data(), out.data().data(), t.size(), mm.min,
                    scale);
}

void to_u8_normalized_into(const Tensor<double>& t, Tensor<uint8_t>& out,
                           util::ThreadPool& pool) {
  assert(out.shape() == t.shape());
  if (t.size() == 0) return;
  MinMax mm = minmax_value(t, pool);
  double scale = mm.max > mm.min ? 255.0 / (mm.max - mm.min) : 0.0;
  auto src = t.data();
  auto dst = out.data();
  pool.parallel_chunks(src.size(), aligned_grain(src.size(), pool, kLineU8),
                       [&](size_t b, size_t e) {
                         simd::scale_to_u8(src.data() + b, dst.data() + b,
                                           e - b, mm.min, scale);
                       });
}

Tensor<uint8_t> to_u8_normalized(const Tensor<double>& t) {
  Tensor<uint8_t> out(t.shape());
  to_u8_normalized_into(t, out);
  return out;
}

Tensor<uint8_t> to_u8_normalized(const Tensor<double>& t,
                                 util::ThreadPool& pool) {
  Tensor<uint8_t> out(t.shape());
  to_u8_normalized_into(t, out, pool);
  return out;
}

namespace {
template <typename From, typename To>
Tensor<To> convert(const Tensor<From>& t) {
  Tensor<To> out(t.shape());
  auto src = t.data();
  auto dst = out.data();
  for (size_t i = 0; i < src.size(); ++i) dst[i] = static_cast<To>(src[i]);
  return out;
}
}  // namespace

Tensor<double> to_f64(const Tensor<uint8_t>& t) { return convert<uint8_t, double>(t); }
Tensor<double> to_f64(const Tensor<uint16_t>& t) { return convert<uint16_t, double>(t); }
Tensor<double> to_f64(const Tensor<uint32_t>& t) { return convert<uint32_t, double>(t); }
Tensor<float> to_f32(const Tensor<double>& t) { return convert<double, float>(t); }
Tensor<double> from_f32(const Tensor<float>& t) { return convert<float, double>(t); }

void add_inplace(Tensor<double>& a, const Tensor<double>& b) {
  assert(a.shape() == b.shape());
  simd::add_f64(a.data().data(), b.data().data(), a.size());
}

void scale_inplace(Tensor<double>& a, double k) {
  for (double& v : a.data()) v *= k;
}

}  // namespace pico::tensor

#pragma once
// Row-major N-D tensor. The data plane of every experiment flows through
// this type: hyperspectral cubes [H, W, E], spatiotemporal stacks [T, H, W],
// intensity maps [H, W], and spectra [E].
#include <cassert>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "tensor/dtype.hpp"

namespace pico::tensor {

using Shape = std::vector<size_t>;

inline size_t shape_elements(const Shape& shape) {
  size_t n = 1;
  for (size_t d : shape) n *= d;
  return n;
}

template <typename T>
class Tensor {
 public:
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)), data_(shape_elements(shape_)) {
    compute_strides();
  }

  /// Adopt existing data (must match the shape's element count).
  Tensor(Shape shape, std::vector<T> data)
      : shape_(std::move(shape)), data_(std::move(data)) {
    assert(data_.size() == shape_elements(shape_));
    compute_strides();
  }

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, T value) {
    Tensor t(std::move(shape));
    std::fill(t.data_.begin(), t.data_.end(), value);
    return t;
  }

  const Shape& shape() const { return shape_; }
  size_t rank() const { return shape_.size(); }
  size_t size() const { return data_.size(); }
  size_t dim(size_t axis) const { return shape_.at(axis); }

  std::span<T> data() { return data_; }
  std::span<const T> data() const { return data_; }
  std::vector<T>& storage() { return data_; }
  const std::vector<T>& storage() const { return data_; }

  /// Flat element access.
  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }

  /// Indexed access for the common ranks.
  T& operator()(size_t i) {
    assert(rank() == 1);
    return data_[i];
  }
  const T& operator()(size_t i) const {
    assert(rank() == 1);
    return data_[i];
  }
  T& operator()(size_t i, size_t j) {
    assert(rank() == 2);
    return data_[i * strides_[0] + j];
  }
  const T& operator()(size_t i, size_t j) const {
    assert(rank() == 2);
    return data_[i * strides_[0] + j];
  }
  T& operator()(size_t i, size_t j, size_t k) {
    assert(rank() == 3);
    return data_[i * strides_[0] + j * strides_[1] + k];
  }
  const T& operator()(size_t i, size_t j, size_t k) const {
    assert(rank() == 3);
    return data_[i * strides_[0] + j * strides_[1] + k];
  }

  /// Reinterpret the same elements with a new shape (element count must match).
  Tensor reshaped(Shape new_shape) const {
    assert(shape_elements(new_shape) == data_.size());
    Tensor t;
    t.shape_ = std::move(new_shape);
    t.data_ = data_;
    t.compute_strides();
    return t;
  }

  /// Contiguous sub-tensor along axis 0 (e.g. one video frame of [T,H,W]).
  Tensor slice0(size_t index) const {
    assert(rank() >= 1 && index < shape_[0]);
    Shape sub(shape_.begin() + 1, shape_.end());
    size_t n = shape_elements(sub);
    std::vector<T> out(data_.begin() + static_cast<ptrdiff_t>(index * n),
                       data_.begin() + static_cast<ptrdiff_t>((index + 1) * n));
    return Tensor(std::move(sub), std::move(out));
  }

  static constexpr DType dtype() { return dtype_of<T>(); }

 private:
  void compute_strides() {
    strides_.assign(shape_.size(), 1);
    for (size_t i = shape_.size(); i-- > 1;) {
      strides_[i - 1] = strides_[i] * shape_[i];
    }
  }

  Shape shape_;
  std::vector<size_t> strides_;
  std::vector<T> data_;
};

}  // namespace pico::tensor

#pragma once
// Tensor reductions and conversions backing the paper's analyses:
//  - sum along the spectral axis -> per-pixel intensity image (Fig. 2A)
//  - sum over both pixel axes    -> aggregate spectrum        (Fig. 2B)
//  - fp64 -> uint8 normalization -> video conversion          (Sec. 3.3)
#include <vector>

#include "tensor/tensor.hpp"
#include "util/threadpool.hpp"

namespace pico::tensor {

/// Sum a rank-3 tensor along one axis, producing the remaining rank-2 tensor
/// in f64. axis must be < 3.
Tensor<double> sum_axis3(const Tensor<double>& t, size_t axis);

/// Parallel twin of sum_axis3: output rows (or, for axis 0/2 reductions,
/// disjoint output ranges) are distributed over the pool while every output
/// element keeps the sequential accumulation order — bit-identical to
/// sum_axis3 for any pool width.
Tensor<double> sum_axis3(const Tensor<double>& t, size_t axis,
                         util::ThreadPool& pool);

/// Sum a rank-3 tensor over two axes, producing a rank-1 f64 tensor over the
/// remaining axis. keep < 3; the other two axes are reduced.
Tensor<double> sum_keep_axis3(const Tensor<double>& t, size_t keep);

/// Parallel twin of sum_keep_axis3 (bit-identical, see sum_axis3).
Tensor<double> sum_keep_axis3(const Tensor<double>& t, size_t keep,
                              util::ThreadPool& pool);

double min_value(const Tensor<double>& t);
double max_value(const Tensor<double>& t);
double sum_value(const Tensor<double>& t);
double mean_value(const Tensor<double>& t);

/// Fused single-pass min+max (one scan where min_value + max_value take two).
struct MinMax {
  double min = 0;
  double max = 0;
};
MinMax minmax_value(const Tensor<double>& t);

/// Parallel fused min+max. min/max combination is order-independent, so the
/// result equals the sequential scan exactly for any pool width.
MinMax minmax_value(const Tensor<double>& t, util::ThreadPool& pool);

/// Linear rescale of arbitrary range to [0, 255]; constant input maps to 0.
Tensor<uint8_t> to_u8_normalized(const Tensor<double>& t);

/// Parallel twin of to_u8_normalized: parallel fused min/max reduction, then
/// a parallel fused scale+cast pass. Bit-identical to the sequential path.
Tensor<uint8_t> to_u8_normalized(const Tensor<double>& t,
                                 util::ThreadPool& pool);

/// Output-reuse twins: write into a caller-owned tensor whose shape already
/// matches t (asserted). In the pooled steady state the destination comes
/// from an arena/pool lease, so reusing it skips the zero-fill page-fault
/// cost a fresh Tensor pays on every stack. Output bytes are identical to
/// the allocating overloads.
void to_u8_normalized_into(const Tensor<double>& t, Tensor<uint8_t>& out);
void to_u8_normalized_into(const Tensor<double>& t, Tensor<uint8_t>& out,
                           util::ThreadPool& pool);

/// Elementwise conversion helpers.
Tensor<double> to_f64(const Tensor<uint8_t>& t);
Tensor<double> to_f64(const Tensor<uint16_t>& t);
Tensor<double> to_f64(const Tensor<uint32_t>& t);
Tensor<float> to_f32(const Tensor<double>& t);
Tensor<double> from_f32(const Tensor<float>& t);

/// a += b (shapes must match).
void add_inplace(Tensor<double>& a, const Tensor<double>& b);

/// a *= k.
void scale_inplace(Tensor<double>& a, double k);

}  // namespace pico::tensor

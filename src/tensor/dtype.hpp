#pragma once
// Element types for N-D datasets, mirroring the numeric types HDF5/EMD files
// carry (the paper's spatiotemporal data arrives as fp64 and is downcast to
// uint8 for video encoding — both ends of that conversion live here).
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/result.hpp"

namespace pico::tensor {

enum class DType : uint8_t {
  U8 = 0,
  I8 = 1,
  U16 = 2,
  I16 = 3,
  U32 = 4,
  I32 = 5,
  U64 = 6,
  I64 = 7,
  F32 = 8,
  F64 = 9,
};

/// Size in bytes of one element.
size_t dtype_size(DType t);

/// Canonical name ("u8", "f64", ...).
std::string_view dtype_name(DType t);

/// Parse a canonical name back to a DType.
util::Result<DType> dtype_from_name(std::string_view name);

/// Map a C++ arithmetic type to its DType tag at compile time.
template <typename T>
constexpr DType dtype_of();

template <> constexpr DType dtype_of<uint8_t>() { return DType::U8; }
template <> constexpr DType dtype_of<int8_t>() { return DType::I8; }
template <> constexpr DType dtype_of<uint16_t>() { return DType::U16; }
template <> constexpr DType dtype_of<int16_t>() { return DType::I16; }
template <> constexpr DType dtype_of<uint32_t>() { return DType::U32; }
template <> constexpr DType dtype_of<int32_t>() { return DType::I32; }
template <> constexpr DType dtype_of<uint64_t>() { return DType::U64; }
template <> constexpr DType dtype_of<int64_t>() { return DType::I64; }
template <> constexpr DType dtype_of<float>() { return DType::F32; }
template <> constexpr DType dtype_of<double>() { return DType::F64; }

}  // namespace pico::tensor

#include "fault/schedule.hpp"

#include <algorithm>

namespace pico::fault {

using util::Json;

std::string fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::LinkDegrade: return "link_degrade";
    case FaultKind::LinkPartition: return "link_partition";
    case FaultKind::TransferOutage: return "transfer_outage";
    case FaultKind::ComputeOutage: return "compute_outage";
    case FaultKind::PbsDrain: return "pbs_drain";
    case FaultKind::AuthOutage: return "auth_outage";
    case FaultKind::TokenExpiry: return "token_expiry";
    case FaultKind::NodeFailureRate: return "node_failure_rate";
    case FaultKind::OrchestratorCrash: return "orchestrator_crash";
    case FaultKind::NotificationLoss: return "notification_loss";
    case FaultKind::WireBitFlip: return "wire_bit_flip";
    case FaultKind::StorageCorrupt: return "storage_corrupt";
    case FaultKind::TruncatedLanding: return "truncated_landing";
    case FaultKind::FrameDrop: return "frame_drop";
    case FaultKind::FrameReorder: return "frame_reorder";
    case FaultKind::FrameDuplicate: return "frame_duplicate";
    case FaultKind::ConsumerStall: return "consumer_stall";
    case FaultKind::SiteOutage: return "site_outage";
    case FaultKind::SitePartition: return "site_partition";
    case FaultKind::SiteBrownout: return "site_brownout";
  }
  return "?";
}

util::Result<FaultKind> fault_kind_from_name(const std::string& name) {
  using R = util::Result<FaultKind>;
  static const std::pair<const char*, FaultKind> kKinds[] = {
      {"link_degrade", FaultKind::LinkDegrade},
      {"link_partition", FaultKind::LinkPartition},
      {"transfer_outage", FaultKind::TransferOutage},
      {"compute_outage", FaultKind::ComputeOutage},
      {"pbs_drain", FaultKind::PbsDrain},
      {"auth_outage", FaultKind::AuthOutage},
      {"token_expiry", FaultKind::TokenExpiry},
      {"node_failure_rate", FaultKind::NodeFailureRate},
      {"orchestrator_crash", FaultKind::OrchestratorCrash},
      {"notification_loss", FaultKind::NotificationLoss},
      {"wire_bit_flip", FaultKind::WireBitFlip},
      {"storage_corrupt", FaultKind::StorageCorrupt},
      {"truncated_landing", FaultKind::TruncatedLanding},
      {"frame_drop", FaultKind::FrameDrop},
      {"frame_reorder", FaultKind::FrameReorder},
      {"frame_duplicate", FaultKind::FrameDuplicate},
      {"consumer_stall", FaultKind::ConsumerStall},
      {"site_outage", FaultKind::SiteOutage},
      {"site_partition", FaultKind::SitePartition},
      {"site_brownout", FaultKind::SiteBrownout},
  };
  for (const auto& [n, k] : kKinds) {
    if (name == n) return R::ok(k);
  }
  return R::err("unknown fault kind: " + name, "schema");
}

double FaultSchedule::downtime_s(FaultKind kind, double horizon_s) const {
  std::vector<std::pair<double, double>> windows;
  for (const FaultEvent& e : events) {
    if (e.kind != kind) continue;
    double lo = std::max(0.0, e.at_s);
    double hi = std::min(horizon_s, e.at_s + e.duration_s);
    if (hi > lo) windows.emplace_back(lo, hi);
  }
  std::sort(windows.begin(), windows.end());
  double total = 0, cur_lo = 0, cur_hi = -1;
  for (const auto& [lo, hi] : windows) {
    if (lo > cur_hi) {
      if (cur_hi > cur_lo) total += cur_hi - cur_lo;
      cur_lo = lo;
      cur_hi = hi;
    } else {
      cur_hi = std::max(cur_hi, hi);
    }
  }
  if (cur_hi > cur_lo) total += cur_hi - cur_lo;
  return total;
}

Json FaultSchedule::to_json() const {
  Json out = Json::array();
  for (const FaultEvent& e : events) {
    Json ev = Json::object({
        {"kind", fault_kind_name(e.kind)},
        {"at_s", e.at_s},
        {"duration_s", e.duration_s},
    });
    if (!e.target.empty()) ev["target"] = e.target;
    if (e.severity != 0) ev["severity"] = e.severity;
    out.push_back(std::move(ev));
  }
  return Json::object({{"name", name}, {"events", out}});
}

util::Result<FaultSchedule> FaultSchedule::from_json(const Json& doc) {
  using R = util::Result<FaultSchedule>;
  if (!doc.is_object()) return R::err("schedule must be an object", "schema");
  FaultSchedule schedule;
  schedule.name = doc.at("name").as_string("chaos");
  const Json& events = doc.at("events");
  if (!events.is_array()) {
    return R::err("schedule needs an events array", "schema");
  }
  for (const Json& ev : events.as_array()) {
    auto kind = fault_kind_from_name(ev.at("kind").as_string());
    if (!kind) return R::err(kind.error());
    FaultEvent e;
    e.kind = kind.value();
    e.at_s = ev.at("at_s").as_double(0.0);
    e.duration_s = ev.at("duration_s").as_double(0.0);
    e.target = ev.at("target").as_string("");
    e.severity = ev.at("severity").as_double(0.0);
    if (e.at_s < 0) return R::err("event at_s must be >= 0", "schema");
    if (e.duration_s < 0) {
      return R::err("event duration_s must be >= 0", "schema");
    }
    if (e.kind == FaultKind::LinkDegrade &&
        (e.severity <= 0 || e.severity > 1)) {
      return R::err("link_degrade severity must be in (0, 1]", "schema");
    }
    if (e.kind == FaultKind::NodeFailureRate &&
        (e.severity < 0 || e.severity > 1)) {
      return R::err("node_failure_rate severity must be in [0, 1]", "schema");
    }
    if (e.kind == FaultKind::NotificationLoss &&
        (e.severity < 0 || e.severity > 1)) {
      return R::err("notification_loss severity must be in [0, 1]", "schema");
    }
    if ((e.kind == FaultKind::WireBitFlip ||
         e.kind == FaultKind::StorageCorrupt ||
         e.kind == FaultKind::TruncatedLanding ||
         e.kind == FaultKind::FrameDrop ||
         e.kind == FaultKind::FrameReorder ||
         e.kind == FaultKind::FrameDuplicate) &&
        (e.severity <= 0 || e.severity > 1)) {
      return R::err(fault_kind_name(e.kind) + " severity must be in (0, 1]",
                    "schema");
    }
    if (e.kind == FaultKind::SiteBrownout &&
        (e.severity <= 0 || e.severity > 1)) {
      return R::err("site_brownout severity must be in (0, 1]", "schema");
    }
    schedule.events.push_back(std::move(e));
  }
  return R::ok(std::move(schedule));
}

util::Result<FaultSchedule> FaultSchedule::from_text(const std::string& text) {
  auto doc = Json::parse(text);
  if (!doc) return util::Result<FaultSchedule>::err(doc.error());
  return from_json(doc.value());
}

}  // namespace pico::fault

#pragma once
// Applies a FaultSchedule to live services by scheduling begin/end callbacks
// on the simulation engine. Overlapping windows of the same fault are
// reference-counted so the service is restored only when the last window
// closes. OrchestratorCrash events are *not* applied here — the campaign
// driver owns its own crash/replay behaviour and reads them directly from
// the schedule.
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "auth/auth.hpp"
#include "compute/service.hpp"
#include "fault/schedule.hpp"
#include "flow/service.hpp"
#include "hpcsim/pbs.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "sim/engine.hpp"
#include "storage/store.hpp"
#include "telemetry/telemetry.hpp"
#include "transfer/service.hpp"
#include "transfer/stream.hpp"
#include "util/rng.hpp"

namespace pico::fault {

/// One applied transition, for diagnostics and the robustness report.
struct AppliedFault {
  FaultKind kind;
  std::string target;
  double at_s = 0;
  bool begin = true;  ///< false = restoration
};

class FaultInjector {
 public:
  struct Services {
    sim::Engine* engine = nullptr;
    net::Topology* topology = nullptr;
    net::Network* network = nullptr;
    transfer::TransferService* transfer = nullptr;
    transfer::StreamService* stream = nullptr;
    compute::ComputeService* compute = nullptr;
    hpcsim::PbsScheduler* pbs = nullptr;
    auth::AuthService* auth = nullptr;
    flow::FlowService* flows = nullptr;
    /// TokenExpiry hook: revoke the campaign's current token. The recovery
    /// side (re-issuing) is the campaign driver's job.
    std::function<void()> expire_token;
    /// Compute endpoint used when a NodeFailureRate event has no target.
    std::string default_endpoint;
    /// Stores addressable by StorageCorrupt events, keyed by store name.
    std::map<std::string, storage::Store*> stores;
    /// Store used when a storage_corrupt event has no target.
    std::string default_store;
    /// Seed for the per-object corruption coins of StorageCorrupt events.
    uint64_t storage_seed = 0x5C0FFull;
    /// Site-level faults (SiteOutage / SitePartition / SiteBrownout) are
    /// delivered through this hook instead of a service pointer: the fault
    /// layer stays ignorant of the federation broker that interprets them.
    /// `site` is the event target (empty = the hook's default site),
    /// `severity` only matters for SiteBrownout. Overlapping windows of the
    /// same (kind, site) are ref-counted; the hook fires on the first begin
    /// and the last end.
    std::function<void(FaultKind kind, const std::string& site,
                       double severity, bool begin)>
        site_hook;
  };

  explicit FaultInjector(Services services) : s_(std::move(services)) {}

  /// Attach facility telemetry: every applied fault window becomes a span
  /// event on the current tracer context (the campaign root span when driven
  /// by a campaign) and bumps fault_injections_total{kind}.
  void set_telemetry(telemetry::Telemetry* telemetry) {
    telemetry_ = telemetry;
  }

  /// Schedule every event in virtual time. Call once, before engine.run().
  /// Errors on unknown link targets or missing service pointers for the
  /// kinds the schedule actually uses.
  util::Status install(const FaultSchedule& schedule);

  const FaultSchedule& schedule() const { return schedule_; }
  const std::vector<AppliedFault>& log() const { return log_; }

 private:
  void begin_event(const FaultEvent& event);
  void end_event(const FaultEvent& event);
  std::string overlap_key(const FaultEvent& event) const;

  Services s_;
  telemetry::Telemetry* telemetry_ = nullptr;
  /// Per-event salt stream for StorageCorrupt coins (deterministic: events
  /// fire in schedule order in virtual time).
  util::Rng rng_{0xFA17ull};
  FaultSchedule schedule_;
  std::map<std::string, int> depth_;  ///< overlap count per (kind, target)
  std::map<net::LinkId, double> saved_capacity_;
  std::map<std::string, double> saved_failure_prob_;
  /// Pre-window notification-loss probability (set while a window is open).
  std::optional<double> saved_notification_loss_;
  /// Pre-window silent-corruption probabilities (set while a window is open).
  std::optional<double> saved_wire_corruption_;
  std::optional<double> saved_truncation_;
  /// Pre-window frame-chaos probabilities (set while a window is open).
  std::optional<double> saved_frame_drop_;
  std::optional<double> saved_frame_reorder_;
  std::optional<double> saved_frame_duplicate_;
  std::vector<AppliedFault> log_;
};

}  // namespace pico::fault

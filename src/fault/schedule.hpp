#pragma once
// Deterministic chaos schedule: a list of timed, typed fault events that the
// FaultInjector applies to the facility's services in virtual time. Schedules
// are plain data — built programmatically or parsed from a small JSON DSL —
// so the same outage script replays identically across seeds and builds,
// which is what makes robustness reports comparable run to run.
//
// DSL example:
//   {"name": "beamtime-outage",
//    "events": [
//      {"kind": "transfer_outage", "at_s": 600, "duration_s": 300},
//      {"kind": "node_failure_rate", "at_s": 0, "duration_s": 3600,
//       "severity": 0.10},
//      {"kind": "token_expiry", "at_s": 1200}]}
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/result.hpp"

namespace pico::fault {

enum class FaultKind {
  LinkDegrade,        ///< link capacity *= severity for the window
  LinkPartition,      ///< link down for the window (route() avoids it)
  TransferOutage,     ///< transfer control plane rejects/stalls
  ComputeOutage,      ///< compute endpoint rejects submits
  PbsDrain,           ///< batch scheduler starts no new jobs
  AuthOutage,         ///< token validation fails facility-wide
  TokenExpiry,        ///< instantaneous: the campaign's token is revoked
  NodeFailureRate,    ///< endpoint node-death probability = severity
  OrchestratorCrash,  ///< campaign driver blackout + journal replay
  NotificationLoss,   ///< completion-notification drop probability = severity
  WireBitFlip,        ///< landing chunk/file bit-flip probability = severity
  StorageCorrupt,     ///< instantaneous: corrupt stored objects w.p. severity
  TruncatedLanding,   ///< delivered files land short w.p. severity
  FrameDrop,          ///< direct-stream frame loss probability = severity
  FrameReorder,       ///< direct-stream frame reorder probability = severity
  FrameDuplicate,     ///< direct-stream frame duplication prob. = severity
  ConsumerStall,      ///< direct-stream consumer stops taking frames
  SiteOutage,         ///< whole facility dark: broker fails flows over
  SitePartition,      ///< facility unreachable but alive; reconciled at heal
  SiteBrownout,       ///< facility derated by severity; optional steps drop
};

std::string fault_kind_name(FaultKind kind);
util::Result<FaultKind> fault_kind_from_name(const std::string& name);

struct FaultEvent {
  FaultKind kind = FaultKind::TransferOutage;
  double at_s = 0;        ///< onset, seconds of virtual time
  double duration_s = 0;  ///< window length; 0 = instantaneous
  /// Kind-specific target: link name for link faults, endpoint id for
  /// compute faults. Empty = the injector's configured default.
  std::string target;
  /// Kind-specific magnitude: remaining-capacity fraction for LinkDegrade,
  /// node-death probability for NodeFailureRate. Ignored elsewhere.
  double severity = 0;
};

struct FaultSchedule {
  std::string name;
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
  void add(FaultEvent event) { events.push_back(std::move(event)); }

  /// Total downtime attributable to `kind` within [0, horizon_s], with
  /// overlapping windows merged. Feeds the availability column of the
  /// robustness report.
  double downtime_s(FaultKind kind, double horizon_s) const;

  util::Json to_json() const;
  static util::Result<FaultSchedule> from_json(const util::Json& doc);
  static util::Result<FaultSchedule> from_text(const std::string& text);
};

}  // namespace pico::fault

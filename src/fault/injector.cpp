#include "fault/injector.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace pico::fault {
namespace {

util::Logger& logger() {
  static util::Logger kLogger("fault");
  return kLogger;
}

bool is_instant(FaultKind kind) {
  return kind == FaultKind::TokenExpiry ||
         kind == FaultKind::OrchestratorCrash ||
         kind == FaultKind::StorageCorrupt;
}

}  // namespace

std::string FaultInjector::overlap_key(const FaultEvent& event) const {
  return fault_kind_name(event.kind) + "|" + event.target;
}

util::Status FaultInjector::install(const FaultSchedule& schedule) {
  using S = util::Status;
  if (!s_.engine) return S::err("injector needs an engine", "invalid");
  for (const FaultEvent& e : schedule.events) {
    switch (e.kind) {
      case FaultKind::LinkDegrade:
      case FaultKind::LinkPartition: {
        if (!s_.topology || !s_.network) {
          return S::err("link faults need topology + network", "invalid");
        }
        auto link = s_.topology->link_by_name(e.target);
        if (!link) return S::err(link.error());
        break;
      }
      case FaultKind::TransferOutage:
        if (!s_.transfer) return S::err("transfer_outage needs the transfer service", "invalid");
        break;
      case FaultKind::ComputeOutage:
      case FaultKind::NodeFailureRate:
        if (!s_.compute) return S::err("compute faults need the compute service", "invalid");
        break;
      case FaultKind::PbsDrain:
        if (!s_.pbs) return S::err("pbs_drain needs the scheduler", "invalid");
        break;
      case FaultKind::AuthOutage:
        if (!s_.auth) return S::err("auth_outage needs the auth service", "invalid");
        break;
      case FaultKind::TokenExpiry:
        if (!s_.expire_token) return S::err("token_expiry needs an expire_token hook", "invalid");
        break;
      case FaultKind::NotificationLoss:
        if (!s_.flows) return S::err("notification_loss needs the flow service", "invalid");
        break;
      case FaultKind::WireBitFlip:
      case FaultKind::TruncatedLanding:
        if (!s_.transfer) {
          return S::err(fault_kind_name(e.kind) +
                            " needs the transfer service",
                        "invalid");
        }
        break;
      case FaultKind::StorageCorrupt: {
        std::string target = e.target.empty() ? s_.default_store : e.target;
        if (!s_.stores.count(target)) {
          return S::err("storage_corrupt targets unknown store: " + target,
                        "invalid");
        }
        break;
      }
      case FaultKind::FrameDrop:
      case FaultKind::FrameReorder:
      case FaultKind::FrameDuplicate:
      case FaultKind::ConsumerStall:
        if (!s_.stream) {
          return S::err(fault_kind_name(e.kind) +
                            " needs the stream service",
                        "invalid");
        }
        break;
      case FaultKind::SiteOutage:
      case FaultKind::SitePartition:
      case FaultKind::SiteBrownout:
        if (!s_.site_hook) {
          return S::err(fault_kind_name(e.kind) + " needs a site_hook",
                        "invalid");
        }
        break;
      case FaultKind::OrchestratorCrash:
        break;  // campaign-driver concern; the injector only carries it
    }
  }

  schedule_ = schedule;
  double now_s = s_.engine->now().seconds();
  for (const FaultEvent& e : schedule_.events) {
    if (e.kind == FaultKind::OrchestratorCrash) continue;
    double begin_delay = std::max(0.0, e.at_s - now_s);
    FaultEvent copy = e;
    s_.engine->schedule_after(sim::Duration::from_seconds(begin_delay),
                              [this, copy] { begin_event(copy); });
    if (!is_instant(e.kind) && e.duration_s > 0) {
      double end_delay = std::max(0.0, e.at_s + e.duration_s - now_s);
      s_.engine->schedule_after(sim::Duration::from_seconds(end_delay),
                                [this, copy] { end_event(copy); });
    }
  }
  logger().info("installed chaos schedule '%s' (%d events)",
                schedule_.name.c_str(),
                static_cast<int>(schedule_.events.size()));
  return S::ok();
}

void FaultInjector::begin_event(const FaultEvent& event) {
  log_.push_back(AppliedFault{event.kind, event.target,
                              s_.engine->now().seconds(), true});
  logger().info("t=%.1fs fault begin: %s %s", s_.engine->now().seconds(),
                fault_kind_name(event.kind).c_str(), event.target.c_str());
  if (telemetry_) {
    telemetry_->metrics
        .counter("fault_injections_total", "Fault windows applied, by kind",
                 {{"kind", fault_kind_name(event.kind)}})
        .inc();
    if (uint64_t span = telemetry_->tracer.current()) {
      telemetry_->tracer.event(span, "fault-begin", s_.engine->now(),
                               util::Json::object({
                                   {"kind", fault_kind_name(event.kind)},
                                   {"target", event.target},
                                   {"severity", event.severity},
                                   {"duration_s", event.duration_s},
                               }));
    }
    // The chaos timeline lives in one watchdog-exempt ring so a flow dump can
    // be correlated against which fault windows were open at the time.
    telemetry_->flight.record(
        "chaos", util::LogLevel::Info, "fault", "fault-begin",
        s_.engine->now(),
        util::Json::object({{"kind", fault_kind_name(event.kind)},
                            {"target", event.target},
                            {"severity", event.severity},
                            {"duration_s", event.duration_s}}));
  }

  if (event.kind == FaultKind::TokenExpiry) {
    s_.expire_token();
    return;
  }
  if (event.kind == FaultKind::StorageCorrupt) {
    // Instantaneous at-rest bit rot: flip bytes underneath the manifest on a
    // severity-probability coin per object. Detection is the scrubber's (or
    // a reader's) job — the damage itself is silent.
    std::string target = event.target.empty() ? s_.default_store : event.target;
    storage::Store* store = s_.stores.at(target);
    auto damaged = store->corrupt_random(
        event.severity, s_.storage_seed ^ rng_.next_u64());
    logger().info("storage_corrupt on %s damaged %d objects", target.c_str(),
                  static_cast<int>(damaged.size()));
    return;
  }

  int depth = ++depth_[overlap_key(event)];
  switch (event.kind) {
    case FaultKind::LinkDegrade: {
      net::LinkId id = s_.topology->link_by_name(event.target).value();
      if (!saved_capacity_.count(id)) {
        saved_capacity_[id] = s_.topology->link(id).capacity_bps;
      }
      s_.topology->mutable_link(id).capacity_bps =
          saved_capacity_[id] * event.severity;
      s_.network->rates_changed();
      break;
    }
    case FaultKind::LinkPartition: {
      if (depth > 1) break;
      net::LinkId id = s_.topology->link_by_name(event.target).value();
      s_.topology->set_link_up(id, false);
      s_.network->rates_changed();
      break;
    }
    case FaultKind::TransferOutage:
      if (depth == 1) s_.transfer->set_available(false);
      break;
    case FaultKind::ComputeOutage:
      if (depth == 1) s_.compute->set_available(false);
      break;
    case FaultKind::PbsDrain:
      if (depth == 1) s_.pbs->set_drain(true);
      break;
    case FaultKind::AuthOutage:
      if (depth == 1) s_.auth->set_available(false);
      break;
    case FaultKind::NodeFailureRate: {
      std::string endpoint =
          event.target.empty() ? s_.default_endpoint : event.target;
      if (!saved_failure_prob_.count(endpoint)) {
        saved_failure_prob_[endpoint] =
            s_.compute->node_failure_prob(endpoint);
      }
      s_.compute->set_node_failure_prob(endpoint, event.severity);
      break;
    }
    case FaultKind::NotificationLoss:
      if (!saved_notification_loss_) {
        saved_notification_loss_ = s_.flows->notification_loss_prob();
      }
      s_.flows->set_notification_loss_prob(event.severity);
      break;
    case FaultKind::WireBitFlip:
      if (!saved_wire_corruption_) {
        saved_wire_corruption_ = s_.transfer->wire_corruption_prob();
      }
      s_.transfer->set_wire_corruption_prob(event.severity);
      break;
    case FaultKind::TruncatedLanding:
      if (!saved_truncation_) {
        saved_truncation_ = s_.transfer->truncation_prob();
      }
      s_.transfer->set_truncation_prob(event.severity);
      break;
    case FaultKind::FrameDrop:
      if (!saved_frame_drop_) {
        saved_frame_drop_ = s_.stream->frame_drop_prob();
      }
      s_.stream->set_frame_drop_prob(event.severity);
      break;
    case FaultKind::FrameReorder:
      if (!saved_frame_reorder_) {
        saved_frame_reorder_ = s_.stream->frame_reorder_prob();
      }
      s_.stream->set_frame_reorder_prob(event.severity);
      break;
    case FaultKind::FrameDuplicate:
      if (!saved_frame_duplicate_) {
        saved_frame_duplicate_ = s_.stream->frame_duplicate_prob();
      }
      s_.stream->set_frame_duplicate_prob(event.severity);
      break;
    case FaultKind::ConsumerStall:
      if (depth == 1) s_.stream->set_consumer_stall(true);
      break;
    case FaultKind::SiteOutage:
    case FaultKind::SitePartition:
    case FaultKind::SiteBrownout:
      if (depth == 1) {
        s_.site_hook(event.kind, event.target, event.severity, true);
      }
      break;
    case FaultKind::TokenExpiry:
    case FaultKind::OrchestratorCrash:
    case FaultKind::StorageCorrupt:
      break;
  }
}

void FaultInjector::end_event(const FaultEvent& event) {
  log_.push_back(AppliedFault{event.kind, event.target,
                              s_.engine->now().seconds(), false});
  logger().info("t=%.1fs fault end: %s %s", s_.engine->now().seconds(),
                fault_kind_name(event.kind).c_str(), event.target.c_str());
  if (telemetry_) {
    if (uint64_t span = telemetry_->tracer.current()) {
      telemetry_->tracer.event(span, "fault-end", s_.engine->now(),
                               util::Json::object({
                                   {"kind", fault_kind_name(event.kind)},
                                   {"target", event.target},
                               }));
    }
    telemetry_->flight.record(
        "chaos", util::LogLevel::Info, "fault", "fault-end", s_.engine->now(),
        util::Json::object({{"kind", fault_kind_name(event.kind)},
                            {"target", event.target}}));
  }

  int depth = --depth_[overlap_key(event)];
  if (depth > 0 && event.kind != FaultKind::LinkDegrade) return;
  switch (event.kind) {
    case FaultKind::LinkDegrade: {
      net::LinkId id = s_.topology->link_by_name(event.target).value();
      if (depth <= 0) {
        s_.topology->mutable_link(id).capacity_bps = saved_capacity_[id];
        saved_capacity_.erase(id);
      }
      // Overlap remaining: leave the deeper window's degraded capacity.
      s_.network->rates_changed();
      break;
    }
    case FaultKind::LinkPartition: {
      net::LinkId id = s_.topology->link_by_name(event.target).value();
      s_.topology->set_link_up(id, true);
      s_.network->rates_changed();
      break;
    }
    case FaultKind::TransferOutage:
      s_.transfer->set_available(true);
      break;
    case FaultKind::ComputeOutage:
      s_.compute->set_available(true);
      break;
    case FaultKind::PbsDrain:
      s_.pbs->set_drain(false);
      break;
    case FaultKind::AuthOutage:
      s_.auth->set_available(true);
      break;
    case FaultKind::NodeFailureRate: {
      std::string endpoint =
          event.target.empty() ? s_.default_endpoint : event.target;
      s_.compute->set_node_failure_prob(endpoint,
                                        saved_failure_prob_[endpoint]);
      saved_failure_prob_.erase(endpoint);
      break;
    }
    case FaultKind::NotificationLoss:
      if (saved_notification_loss_) {
        s_.flows->set_notification_loss_prob(*saved_notification_loss_);
        saved_notification_loss_.reset();
      }
      break;
    case FaultKind::WireBitFlip:
      if (saved_wire_corruption_) {
        s_.transfer->set_wire_corruption_prob(*saved_wire_corruption_);
        saved_wire_corruption_.reset();
      }
      break;
    case FaultKind::TruncatedLanding:
      if (saved_truncation_) {
        s_.transfer->set_truncation_prob(*saved_truncation_);
        saved_truncation_.reset();
      }
      break;
    case FaultKind::FrameDrop:
      if (saved_frame_drop_) {
        s_.stream->set_frame_drop_prob(*saved_frame_drop_);
        saved_frame_drop_.reset();
      }
      break;
    case FaultKind::FrameReorder:
      if (saved_frame_reorder_) {
        s_.stream->set_frame_reorder_prob(*saved_frame_reorder_);
        saved_frame_reorder_.reset();
      }
      break;
    case FaultKind::FrameDuplicate:
      if (saved_frame_duplicate_) {
        s_.stream->set_frame_duplicate_prob(*saved_frame_duplicate_);
        saved_frame_duplicate_.reset();
      }
      break;
    case FaultKind::ConsumerStall:
      s_.stream->set_consumer_stall(false);
      break;
    case FaultKind::SiteOutage:
    case FaultKind::SitePartition:
    case FaultKind::SiteBrownout:
      s_.site_hook(event.kind, event.target, event.severity, false);
      break;
    case FaultKind::TokenExpiry:
    case FaultKind::OrchestratorCrash:
    case FaultKind::StorageCorrupt:
      break;
  }
}

}  // namespace pico::fault

#pragma once
// PBS-like batch scheduler over a simulated cluster (the ALCF Polaris profile
// in the paper: whole-node allocations granted FIFO after a provisioning
// delay). Globus Compute endpoints acquire nodes here; the provisioning
// latency of the *first* flow's node is what produces the paper's maximum
// flow runtimes (181 s hyperspectral / 274 s spatiotemporal).
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "util/result.hpp"

namespace pico::hpcsim {

using JobId = std::string;
using NodeId = uint32_t;

enum class JobState { Queued, Provisioning, Running, Completed, Cancelled };

std::string job_state_name(JobState s);

struct ClusterConfig {
  std::string name = "polaris";
  int node_count = 16;
  /// Queue wait + node boot + filesystem mount for a fresh allocation.
  double provision_delay_s = 60.0;
  double provision_jitter_s = 15.0;
  /// Hard walltime: running jobs are reclaimed when it expires.
  double default_walltime_s = 3600.0;
};

struct JobRequest {
  int nodes = 1;
  double walltime_s = 0;  ///< 0 = cluster default
  /// Fired when the allocation becomes usable.
  std::function<void(const JobId&, const std::vector<NodeId>&)> on_start;
  /// Fired if the walltime expires before release (nodes already reclaimed).
  std::function<void(const JobId&)> on_expire;
};

class PbsScheduler {
 public:
  PbsScheduler(sim::Engine* engine, ClusterConfig config, uint64_t seed = 0xBA7C4ull);

  /// Queue a job. FIFO order; starts when enough nodes free up.
  JobId submit(JobRequest request);

  /// Return an allocation's nodes to the pool (normal completion).
  util::Status release(const JobId& id);

  /// Remove a queued job (no effect on running jobs).
  util::Status cancel(const JobId& id);

  JobState state(const JobId& id) const;
  int free_nodes() const { return free_; }
  int total_nodes() const { return config_.node_count; }
  size_t queue_depth() const { return queue_.size(); }

  /// Jobs that reached Running over the scheduler's lifetime.
  uint64_t jobs_started() const { return jobs_started_; }

  /// Fault injection: a draining scheduler accepts submissions but starts no
  /// new jobs (maintenance drain). Running jobs are unaffected. Un-draining
  /// pumps the queue immediately.
  void set_drain(bool draining);
  bool draining() const { return draining_; }

 private:
  struct Job {
    JobRequest request;
    JobState state = JobState::Queued;
    std::vector<NodeId> nodes;
    sim::EventHandle walltime_event;
  };

  void pump();  ///< try to start queued jobs

  sim::Engine* engine_;
  ClusterConfig config_;
  util::Rng rng_;
  int free_;
  bool draining_ = false;
  uint64_t next_job_ = 1;
  uint64_t jobs_started_ = 0;
  NodeId next_node_tag_ = 0;
  std::deque<JobId> queue_;
  std::map<JobId, Job> jobs_;
};

}  // namespace pico::hpcsim

#include "hpcsim/pbs.hpp"

#include <algorithm>

#include "util/log.hpp"
#include "util/strings.hpp"

namespace pico::hpcsim {
namespace {
util::Logger& logger() {
  static util::Logger kLogger("pbs");
  return kLogger;
}
}  // namespace

std::string job_state_name(JobState s) {
  switch (s) {
    case JobState::Queued: return "Q";
    case JobState::Provisioning: return "P";
    case JobState::Running: return "R";
    case JobState::Completed: return "C";
    case JobState::Cancelled: return "X";
  }
  return "?";
}

PbsScheduler::PbsScheduler(sim::Engine* engine, ClusterConfig config,
                           uint64_t seed)
    : engine_(engine),
      config_(std::move(config)),
      rng_(seed),
      free_(config_.node_count) {}

JobId PbsScheduler::submit(JobRequest request) {
  JobId id = util::format("%s-job-%llu", config_.name.c_str(),
                          static_cast<unsigned long long>(next_job_++));
  Job job;
  job.request = std::move(request);
  jobs_[id] = std::move(job);
  queue_.push_back(id);
  pump();
  return id;
}

void PbsScheduler::pump() {
  if (draining_) return;  // maintenance drain: hold the queue
  // FIFO: the head job blocks later jobs even if they'd fit (conservative,
  // matches a no-backfill queue).
  while (!queue_.empty()) {
    const JobId id = queue_.front();
    auto it = jobs_.find(id);
    if (it == jobs_.end() || it->second.state != JobState::Queued) {
      queue_.pop_front();
      continue;
    }
    Job& job = it->second;
    if (job.request.nodes > free_) break;

    queue_.pop_front();
    free_ -= job.request.nodes;
    job.state = JobState::Provisioning;
    job.nodes.clear();
    for (int i = 0; i < job.request.nodes; ++i) {
      job.nodes.push_back(next_node_tag_++);
    }

    double delay = std::max(
        1.0, rng_.normal(config_.provision_delay_s, config_.provision_jitter_s));
    engine_->schedule_after(sim::Duration::from_seconds(delay), [this, id] {
      auto it2 = jobs_.find(id);
      if (it2 == jobs_.end() || it2->second.state != JobState::Provisioning) {
        return;
      }
      Job& j = it2->second;
      j.state = JobState::Running;
      ++jobs_started_;
      logger().debug("%s running on %d node(s)", id.c_str(),
                     static_cast<int>(j.nodes.size()));

      double walltime = j.request.walltime_s > 0 ? j.request.walltime_s
                                                 : config_.default_walltime_s;
      j.walltime_event = engine_->schedule_after(
          sim::Duration::from_seconds(walltime), [this, id] {
            auto it3 = jobs_.find(id);
            if (it3 == jobs_.end() || it3->second.state != JobState::Running) {
              return;
            }
            logger().debug("%s walltime expired", id.c_str());
            Job& jj = it3->second;
            jj.state = JobState::Completed;
            free_ += static_cast<int>(jj.nodes.size());
            auto on_expire = jj.request.on_expire;
            pump();
            if (on_expire) on_expire(id);
          });
      if (j.request.on_start) j.request.on_start(id, j.nodes);
    });
  }
}

util::Status PbsScheduler::release(const JobId& id) {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return util::Status::err("unknown job " + id, "not_found");
  Job& job = it->second;
  if (job.state != JobState::Running && job.state != JobState::Provisioning) {
    return util::Status::err("job " + id + " not active", "state");
  }
  job.walltime_event.cancel();
  job.state = JobState::Completed;
  free_ += static_cast<int>(job.nodes.size());
  pump();
  return util::Status::ok();
}

util::Status PbsScheduler::cancel(const JobId& id) {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return util::Status::err("unknown job " + id, "not_found");
  if (it->second.state != JobState::Queued) {
    return util::Status::err("job " + id + " already started", "state");
  }
  it->second.state = JobState::Cancelled;
  return util::Status::ok();
}

JobState PbsScheduler::state(const JobId& id) const {
  auto it = jobs_.find(id);
  return it == jobs_.end() ? JobState::Cancelled : it->second.state;
}

void PbsScheduler::set_drain(bool draining) {
  if (draining_ == draining) return;
  draining_ = draining;
  if (!draining_) pump();
}

}  // namespace pico::hpcsim

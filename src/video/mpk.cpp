#include "video/mpk.hpp"

#include <cassert>
#include <cmath>
#include <cstring>

#include "compress/codec.hpp"
#include "util/bytes.hpp"

namespace pico::video {
namespace {
constexpr char kMagic[4] = {'M', 'P', 'K', '1'};
}

MpkVideo MpkVideo::from_stack(const tensor::Tensor<uint8_t>& stack) {
  assert(stack.rank() == 3);
  MpkVideo video(stack.dim(1), stack.dim(2));
  for (size_t t = 0; t < stack.dim(0); ++t) {
    video.append_frame(stack.slice0(t));
  }
  return video;
}

void MpkVideo::append_frame(tensor::Tensor<uint8_t> frame) {
  assert(frame.rank() == 2);
  if (frames_.empty() && height_ == 0 && width_ == 0) {
    height_ = frame.dim(0);
    width_ = frame.dim(1);
  }
  assert(frame.dim(0) == height_ && frame.dim(1) == width_);
  frames_.push_back(std::move(frame));
}

std::vector<uint8_t> MpkVideo::to_bytes(bool compress) const {
  std::vector<uint8_t> out;
  util::ByteWriter w(&out);
  w.bytes(kMagic, 4);
  w.u8(compress ? 1 : 0);
  w.varint(height_);
  w.varint(width_);
  w.varint(frames_.size());
  compress::RleCodec rle;
  for (const auto& f : frames_) {
    std::vector<uint8_t> raw(f.data().begin(), f.data().end());
    if (compress) {
      std::vector<uint8_t> packed = rle.compress(raw);
      w.varint(packed.size());
      w.bytes(packed.data(), packed.size());
    } else {
      w.varint(raw.size());
      w.bytes(raw.data(), raw.size());
    }
  }
  return out;
}

util::Result<MpkVideo> MpkVideo::from_bytes(const std::vector<uint8_t>& data) {
  using R = util::Result<MpkVideo>;
  util::ByteReader r(data);
  const uint8_t* magic = nullptr;
  if (!r.view(&magic, 4) || std::memcmp(magic, kMagic, 4) != 0) {
    return R::err("not an MPK file", "parse");
  }
  uint8_t compressed = 0;
  uint64_t height = 0, width = 0, count = 0;
  if (!r.u8(&compressed) || !r.varint(&height) || !r.varint(&width) ||
      !r.varint(&count)) {
    return R::err("truncated MPK header", "parse");
  }
  if (height == 0 || width == 0 || height * width > (1ull << 32)) {
    return R::err("implausible MPK dimensions", "parse");
  }

  MpkVideo video(height, width);
  compress::RleCodec rle;
  for (uint64_t t = 0; t < count; ++t) {
    uint64_t n = 0;
    if (!r.varint(&n)) return R::err("truncated MPK frame header", "parse");
    std::vector<uint8_t> payload;
    if (!r.bytes(&payload, n)) return R::err("truncated MPK frame", "parse");
    if (compressed) {
      auto unpacked = rle.decompress(payload);
      if (!unpacked) return R::err("MPK frame: " + unpacked.error().message, "corrupt");
      payload = std::move(unpacked).value();
    }
    if (payload.size() != height * width) {
      return R::err("MPK frame size mismatch", "corrupt");
    }
    video.append_frame(tensor::Tensor<uint8_t>(
        tensor::Shape{height, width}, std::move(payload)));
  }
  return R::ok(std::move(video));
}

util::Status MpkVideo::save(const std::string& path, bool compress) const {
  return util::write_file(path, to_bytes(compress));
}

util::Result<MpkVideo> MpkVideo::load(const std::string& path) {
  auto data = util::read_file(path);
  if (!data) return util::Result<MpkVideo>::err(data.error());
  return from_bytes(data.value());
}

MpkVideo annotate(
    const MpkVideo& video,
    const std::vector<std::vector<vision::Detection>>& detections) {
  MpkVideo out(video.height(), video.width());
  const long h = static_cast<long>(video.height());
  const long w = static_cast<long>(video.width());
  for (size_t t = 0; t < video.frame_count(); ++t) {
    tensor::Tensor<uint8_t> frame = video.frame(t);
    if (t < detections.size()) {
      for (const auto& det : detections[t]) {
        uint8_t shade =
            static_cast<uint8_t>(128 + std::lround(det.confidence * 127));
        long x1 = static_cast<long>(std::lround(det.box.x));
        long y1 = static_cast<long>(std::lround(det.box.y));
        long x2 = static_cast<long>(std::lround(det.box.x2()));
        long y2 = static_cast<long>(std::lround(det.box.y2()));
        auto put = [&](long yy, long xx) {
          if (yy < 0 || xx < 0 || yy >= h || xx >= w) return;
          frame(static_cast<size_t>(yy), static_cast<size_t>(xx)) = shade;
        };
        for (long xx = x1; xx <= x2; ++xx) {
          put(y1, xx);
          put(y2, xx);
        }
        for (long yy = y1; yy <= y2; ++yy) {
          put(yy, x1);
          put(yy, x2);
        }
      }
    }
    out.append_frame(std::move(frame));
  }
  return out;
}

}  // namespace pico::video

#pragma once
// EMD -> video conversion. The paper identifies "a slow data type casting
// operation from fp64 to uint8" during EMD->MP4 conversion as the dominant
// cost of the spatiotemporal compute phase. Both the naive path (per-frame
// range rescan + branchy per-element conversion, what the Python pipeline
// effectively does) and an optimized single-pass path are implemented so the
// A4 ablation can quantify the difference.
#include <cstdint>

#include "tensor/tensor.hpp"
#include "util/threadpool.hpp"

namespace pico::video {

/// Naive conversion: for every frame, rescan the *entire stack* for min/max
/// (the pessimal global-normalization-per-frame behaviour of a naive
/// implementation), then convert elementwise with bounds checks.
tensor::Tensor<uint8_t> convert_naive(const tensor::Tensor<double>& stack);

/// Optimized conversion: one min/max pass over the stack, then a fused
/// scale+clamp loop. Identical output to convert_naive.
tensor::Tensor<uint8_t> convert_fast(const tensor::Tensor<double>& stack);

/// Node-parallel conversion: the min/max reduction and the scale+cast pass
/// both fan out over the pool (the paper's compute function owns a whole
/// Polaris node). min/max combination is order-independent and the cast is
/// elementwise, so the output is bit-identical to convert_fast (and hence
/// convert_naive) for any pool width.
tensor::Tensor<uint8_t> convert_parallel(const tensor::Tensor<double>& stack,
                                         util::ThreadPool& pool);

/// Output-reuse twins of convert_fast / convert_parallel: write into a
/// caller-owned tensor whose shape matches the stack (asserted). The pooled
/// streaming path hands frames the same destination buffers repeatedly, so
/// skipping the per-stack allocation (and its zero-fill page faults) is
/// where the steady-state throughput lives. Output bytes are identical to
/// the allocating overloads.
void convert_fast_into(const tensor::Tensor<double>& stack,
                       tensor::Tensor<uint8_t>& out);
void convert_parallel_into(const tensor::Tensor<double>& stack,
                           tensor::Tensor<uint8_t>& out,
                           util::ThreadPool& pool);

}  // namespace pico::video

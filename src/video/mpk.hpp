#pragma once
// MPK ("motion picture package"): the MP4 stand-in — a simple 8-bit grayscale
// video container with per-frame optional RLE compression and box-annotation
// burn-in. The spatiotemporal flow converts EMD stacks to MPK, runs the
// detector, and publishes an annotated MPK (paper Fig. 3's annotated MP4).
#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/geometry.hpp"
#include "util/result.hpp"
#include "vision/detect.hpp"

namespace pico::video {

class MpkVideo {
 public:
  MpkVideo() = default;
  MpkVideo(size_t height, size_t width) : height_(height), width_(width) {}

  /// Build from a [T, H, W] u8 stack.
  static MpkVideo from_stack(const tensor::Tensor<uint8_t>& stack);

  size_t frame_count() const { return frames_.size(); }
  size_t height() const { return height_; }
  size_t width() const { return width_; }

  void append_frame(tensor::Tensor<uint8_t> frame);
  const tensor::Tensor<uint8_t>& frame(size_t t) const { return frames_.at(t); }

  /// Serialize; compress=true RLE-encodes each frame.
  std::vector<uint8_t> to_bytes(bool compress = true) const;
  static util::Result<MpkVideo> from_bytes(const std::vector<uint8_t>& data);

  util::Status save(const std::string& path, bool compress = true) const;
  static util::Result<MpkVideo> load(const std::string& path);

 private:
  size_t height_ = 0, width_ = 0;
  std::vector<tensor::Tensor<uint8_t>> frames_;
};

/// Burn detection boxes into every frame (white 1-px rectangles; confidence
/// is encoded as box brightness: 128 + confidence*127).
MpkVideo annotate(const MpkVideo& video,
                  const std::vector<std::vector<vision::Detection>>& detections);

}  // namespace pico::video

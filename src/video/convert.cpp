#include "video/convert.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "tensor/ops.hpp"
#include "tensor/simd/simd.hpp"

namespace pico::video {

tensor::Tensor<uint8_t> convert_naive(const tensor::Tensor<double>& stack) {
  assert(stack.rank() == 3);
  const size_t frames = stack.dim(0);
  const size_t frame_px = stack.dim(1) * stack.dim(2);
  tensor::Tensor<uint8_t> out(stack.shape());
  auto src = stack.data();
  auto dst = out.data();

  for (size_t t = 0; t < frames; ++t) {
    // Pessimal: recompute the global range for every frame.
    double lo = src.empty() ? 0.0 : src[0];
    double hi = lo;
    for (size_t i = 0; i < src.size(); ++i) {
      if (src[i] < lo) lo = src[i];
      if (src[i] > hi) hi = src[i];
    }
    double span = hi - lo;
    for (size_t i = t * frame_px; i < (t + 1) * frame_px; ++i) {
      double v = src[i];
      double scaled;
      if (span <= 0) {
        scaled = 0;
      } else {
        scaled = (v - lo) / span * 255.0;
      }
      if (scaled < 0) scaled = 0;
      if (scaled > 255) scaled = 255;
      dst[i] = static_cast<uint8_t>(std::lround(scaled));
    }
  }
  return out;
}

void convert_fast_into(const tensor::Tensor<double>& stack,
                       tensor::Tensor<uint8_t>& out) {
  assert(stack.rank() == 3);
  assert(out.shape() == stack.shape());
  auto src = stack.data();
  auto dst = out.data();
  if (src.empty()) return;

  tensor::simd::MinMax64 mm = tensor::simd::minmax_f64(src.data(), src.size());
  double scale = mm.max > mm.min ? 255.0 / (mm.max - mm.min) : 0.0;
  tensor::simd::scale_to_u8(src.data(), dst.data(), src.size(), mm.min, scale);
}

void convert_parallel_into(const tensor::Tensor<double>& stack,
                           tensor::Tensor<uint8_t>& out,
                           util::ThreadPool& pool) {
  assert(stack.rank() == 3);
  assert(out.shape() == stack.shape());
  auto src = stack.data();
  auto dst = out.data();
  if (src.empty()) return;

  tensor::MinMax mm = tensor::minmax_value(stack, pool);
  double lo = mm.min;
  double scale = mm.max > lo ? 255.0 / (mm.max - lo) : 0.0;
  // Cache-line-aligned grain: chunk edges never split a 64-byte dst line.
  size_t grain = std::max<size_t>(1, src.size() / (4 * pool.thread_count()));
  grain = ((grain + 63) / 64) * 64;
  pool.parallel_chunks(src.size(), grain, [&](size_t b, size_t e) {
    tensor::simd::scale_to_u8(src.data() + b, dst.data() + b, e - b, lo, scale);
  });
}

tensor::Tensor<uint8_t> convert_fast(const tensor::Tensor<double>& stack) {
  tensor::Tensor<uint8_t> out(stack.shape());
  convert_fast_into(stack, out);
  return out;
}

tensor::Tensor<uint8_t> convert_parallel(const tensor::Tensor<double>& stack,
                                         util::ThreadPool& pool) {
  tensor::Tensor<uint8_t> out(stack.shape());
  convert_parallel_into(stack, out, pool);
  return out;
}

}  // namespace pico::video

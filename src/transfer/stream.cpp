#include "transfer/stream.hpp"

#include <algorithm>
#include <cassert>

#include "util/crc64.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace pico::transfer {
namespace {

util::Logger& logger() {
  static util::Logger kLogger("stream");
  return kLogger;
}

}  // namespace

std::string session_state_name(SessionState s) {
  switch (s) {
    case SessionState::Pending: return "PENDING";
    case SessionState::Active: return "ACTIVE";
    case SessionState::Succeeded: return "SUCCEEDED";
    case SessionState::Failed: return "FAILED";
  }
  return "?";
}

StreamService::StreamService(sim::Engine* engine, net::Network* network,
                             auth::AuthService* auth,
                             TransferService* transfer, StreamConfig config,
                             Wiring wiring, uint64_t seed)
    : engine_(engine),
      network_(network),
      auth_(auth),
      transfer_(transfer),
      config_(config),
      wiring_(std::move(wiring)),
      rng_(seed) {}

telemetry::Counter* StreamService::counter(const std::string& name,
                                           const std::string& help,
                                           const telemetry::Labels& labels) {
  if (!telemetry_) return nullptr;
  return &telemetry_->metrics.counter(name, help, labels);
}

void StreamService::flight(const Session& s, util::LogLevel level,
                           std::string name, util::Json attrs) {
  if (!telemetry_ || s.flight_subject.empty()) return;
  telemetry_->flight.record(s.flight_subject, level, "stream", std::move(name),
                            engine_->now(), std::move(attrs));
}

util::Result<SessionId> StreamService::submit(const StreamRequest& request,
                                              const auth::Token& token) {
  using R = util::Result<SessionId>;
  auto who = auth_->validate(token, "transfer");
  if (!who) return R::err(who.error());
  if (!wiring_.src_store || !wiring_.dst_store) {
    return R::err("stream service not wired to stores", "invalid");
  }
  auto obj = wiring_.src_store->get(request.src_path);
  if (!obj) return R::err(obj.error());

  SessionId id = util::format(
      "stream-%06llu", static_cast<unsigned long long>(next_session_++));
  Session s;
  s.request = request;
  s.token = token;
  s.source = std::make_unique<instrument::FrameSource>(
      obj.value()->size, config_.frame_bytes, obj.value()->crc64);
  s.channel = std::make_unique<net::FrameChannel>(config_.channel);
  s.sub = s.channel->subscribe();
  s.info.bytes_total = obj.value()->size;
  s.info.frames_total = s.source->frame_count();
  s.info.submitted = engine_->now();
  if (telemetry_) {
    s.span = telemetry_->tracer.open("stream", id);
    s.flight_subject = telemetry_->flight.current();
    telemetry_->metrics
        .counter("stream_sessions_total", "Streaming sessions by state",
                 {{"state", "submitted"}})
        .inc();
    flight(s, util::LogLevel::Info, "stream-open",
           util::Json::object({
               {"session", id},
               {"bytes", s.info.bytes_total},
               {"frames", s.info.frames_total},
           }));
  }
  sessions_[id] = std::move(s);

  engine_->schedule_after(sim::Duration::from_seconds(config_.setup_s),
                          [this, id] { activate(id); });
  logger().debug("submitted %s: %s -> node memory, %lld bytes, %lld frames",
                 id.c_str(), request.src_path.c_str(),
                 static_cast<long long>(obj.value()->size),
                 static_cast<long long>(sessions_[id].source->frame_count()));
  return R::ok(id);
}

void StreamService::activate(const SessionId& id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end() || finished(it->second)) return;
  Session& s = it->second;
  s.info.state = SessionState::Active;
  s.info.started = engine_->now();
  s.watch_cursor = 0;
  s.watchdog = engine_->schedule_after(
      sim::Duration::from_seconds(config_.nack_timeout_s),
      [this, id] { watchdog_tick(id); });
  if (stalled_ && config_.stall_fallback_s > 0) {
    engine_->schedule_after(
        sim::Duration::from_seconds(config_.stall_fallback_s), [this, id] {
          auto sit = sessions_.find(id);
          if (sit == sessions_.end() || finished(sit->second)) return;
          if (stalled_ && !sit->second.info.fallback) {
            trigger_fallback(id, "consumer stalled at session start");
          }
        });
  }
  if (s.source->frame_count() == 0) {
    complete(id);
    return;
  }
  if (config_.detector_rate_bps > 0) {
    publish_tick(id);
  } else {
    pump(id);
  }
}

std::vector<net::Frame> StreamService::publish_next(Session& s) {
  const instrument::FrameSpec spec = s.source->frame(s.next_publish);
  const int64_t off = s.source->offset(spec.index);
  ++s.next_publish;
  auto obj = wiring_.src_store->get(s.request.src_path);
  if (obj && obj.value()->has_content() &&
      off + spec.bytes <=
          static_cast<int64_t>(obj.value()->content->size())) {
    // Real staged bytes: land the slice into a pooled buffer with the CRC-64
    // stamp fused into the copy; every copy of the frame (ring, reorder
    // buffers, spill) then shares that one lease.
    if (auto* c = counter("stream_payload_frames_total",
                          "Frames published with pooled zero-copy payloads",
                          {})) {
      c->inc();
    }
    return s.channel->publish(std::span<const uint8_t>(
        obj.value()->content->data() + off, static_cast<size_t>(spec.bytes)));
  }
  return s.channel->publish(spec.bytes, spec.crc64);
}

void StreamService::publish_tick(const SessionId& id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end() || finished(it->second)) return;
  Session& s = it->second;
  if (s.info.fallback || s.next_publish >= s.source->frame_count()) return;

  std::vector<net::Frame> evicted = publish_next(s);
  absorb_spill(id, evicted);
  if (sessions_.find(id) == sessions_.end() || finished(it->second) ||
      it->second.info.fallback) {
    return;  // spill absorption may have escalated to fallback
  }
  pump(id);
  if (it->second.next_publish < it->second.source->frame_count()) {
    double interval =
        static_cast<double>(config_.frame_bytes) * 8.0 /
        config_.detector_rate_bps;
    it->second.cadence = engine_->schedule_after(
        sim::Duration::from_seconds(interval),
        [this, id] { publish_tick(id); });
  } else if (it->second.seg_first >= 0) {
    // The detector is done; the open spill segment can no longer grow.
    flush_spill(id);
  }
}

void StreamService::pump(const SessionId& id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end() || finished(it->second)) return;
  Session& s = it->second;
  if (s.info.fallback || s.info.state != SessionState::Active) return;
  const bool live = config_.detector_rate_bps > 0;
  const int64_t count = s.source->frame_count();

  while (s.inflight < config_.wire_pipeline) {
    while (s.next_send < count && s.spilled.count(s.next_send)) {
      ++s.next_send;  // the store path owns this frame
    }
    if (s.next_send >= count) break;
    if (!live && s.next_send >= s.next_publish) {
      // Paced replay: the detector emits exactly when the wire can take the
      // frame, so publish on demand.
      std::vector<net::Frame> evicted = publish_next(s);
      absorb_spill(id, evicted);
      if (sessions_.find(id) == sessions_.end() || finished(s) ||
          s.info.fallback) {
        return;
      }
      continue;  // re-check spill set: the new frame may have evicted ours
    }
    if (s.next_send >= s.next_publish) break;  // live mode: nothing new yet
    std::optional<net::Frame> f = s.channel->frame(s.next_send);
    if (!f) {
      // Evicted before it was ever sent and (races aside) recorded spilled;
      // skip — needed_by_any() routed it to the spill path at eviction.
      ++s.next_send;
      continue;
    }
    if (!s.channel->take_credit(s.sub, f->seq)) break;  // backpressure
    send_frame(id, *f, /*retransmit=*/false);
    if (finished(s)) return;  // an unroutable flow fails the session inline
    ++s.next_send;
  }
  if (!live && s.next_publish >= count && s.seg_first >= 0) {
    flush_spill(id);
  }
}

void StreamService::send_frame(const SessionId& id, const net::Frame& f,
                               bool retransmit) {
  Session& s = sessions_.at(id);
  ++s.inflight;
  if (retransmit) {
    ++s.info.retransmits;
    if (auto* c = counter("frames_retransmitted_total",
                          "Frames resent from the producer ring after a NACK"))
      c->inc();
    if (telemetry_ && s.span) {
      telemetry_->tracer.event(
          s.span, "retransmit", engine_->now(),
          util::Json::object({{"seq", f.seq}}));
    }
    flight(s, util::LogLevel::Warn, "frame-retransmit",
           util::Json::object({{"seq", f.seq}}));
  } else {
    ++s.info.frames_sent;
    if (auto* c = counter("stream_frames_sent_total",
                          "Original detector frames placed on the wire"))
      c->inc();
  }
  auto flow = network_->start_flow(
      wiring_.src_node, wiring_.dst_node, f.bytes, [this, id, f](net::FlowId) {
        auto it = sessions_.find(id);
        if (it == sessions_.end()) return;
        --it->second.inflight;
        arrival(id, f);
        pump(id);
      });
  if (!flow) {
    --s.inflight;
    fail(id, "no route for frame stream: " + flow.error().message);
  }
}

void StreamService::arrival(const SessionId& id, const net::Frame& f) {
  auto it = sessions_.find(id);
  if (it == sessions_.end() || finished(it->second)) return;
  Session& s = it->second;
  if (s.info.fallback) return;

  if (rng_.chance(frame_drop_prob_)) {
    if (auto* c = counter("frames_dropped_total",
                          "Frames lost on the direct streaming path"))
      c->inc();
    flight(s, util::LogLevel::Warn, "frame-drop",
           util::Json::object({{"seq", f.seq}}));
    logger().debug("%s: frame %lld dropped", id.c_str(),
                   static_cast<long long>(f.seq));
    return;  // the gap watchdog will NACK and retransmit
  }
  if (rng_.chance(frame_duplicate_prob_)) {
    engine_->schedule_after(sim::Duration::from_millis(50.0),
                            [this, id, f] { deliver_frame(id, f); });
  }
  if (rng_.chance(frame_reorder_prob_)) {
    engine_->schedule_after(
        sim::Duration::from_seconds(config_.reorder_hold_s),
        [this, id, f] { deliver_frame(id, f); });
    return;
  }
  deliver_frame(id, f);
}

void StreamService::deliver_frame(const SessionId& id, const net::Frame& f) {
  auto it = sessions_.find(id);
  if (it == sessions_.end() || finished(it->second)) return;
  Session& s = it->second;
  if (s.info.fallback) return;
  if (stalled_) {
    s.stall_queue.push_back(f);
    return;
  }
  auto res = s.channel->deliver(s.sub, f);
  switch (res.outcome) {
    case net::FrameChannel::Outcome::Consumed:
      after_progress(id);
      break;
    case net::FrameChannel::Outcome::Duplicate:
      if (auto* c = counter("stream_frame_duplicates_total",
                            "Duplicate frame arrivals discarded at the "
                            "consumer"))
        c->inc();
      break;
    case net::FrameChannel::Outcome::Buffered:
    case net::FrameChannel::Outcome::WindowOverflow:
      break;  // the gap watchdog recovers the missing predecessor
  }
}

void StreamService::after_progress(const SessionId& id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end() || finished(it->second)) return;
  Session& s = it->second;
  int64_t cursor = s.channel->cursor(s.sub);
  int64_t delivered = s.source->bytes_in_range(0, cursor - 1);
  if (delivered != s.info.bytes_delivered) {
    s.info.bytes_delivered = delivered;
    if (s.progress_cb) s.progress_cb(delivered);
  }
  if (cursor >= s.source->frame_count() && s.spills_inflight == 0 &&
      s.pending_satisfy.empty() && !s.info.fallback) {
    complete(id);
    return;
  }
  pump(id);  // the cursor advance released credits
}

void StreamService::watchdog_tick(const SessionId& id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end() || finished(it->second)) return;
  Session& s = it->second;
  if (s.info.fallback) return;
  s.watchdog = engine_->schedule_after(
      sim::Duration::from_seconds(config_.nack_timeout_s),
      [this, id] { watchdog_tick(id); });

  int64_t cursor = s.channel->cursor(s.sub);
  if (stalled_) {
    s.watch_cursor = cursor;
    return;  // the stall timer owns escalation
  }
  if (cursor >= s.source->frame_count()) return;
  if (cursor != s.watch_cursor) {
    s.watch_cursor = cursor;
    return;  // progress since the last tick — no gap aged out
  }
  if (cursor >= s.next_publish) return;  // the detector has not emitted it yet

  if (s.spilled.count(cursor)) {
    // The store path owns the missing frame; make sure its segment is moving.
    if (s.seg_first >= 0 && cursor >= s.seg_first && cursor <= s.seg_last) {
      flush_spill(id);
    }
    return;
  }
  std::optional<net::Frame> f = s.channel->frame(cursor);
  if (!f) {
    // Evicted from the ring without a spill record — unrecoverable in-band.
    trigger_fallback(id, util::format("frame %lld lost from the ring",
                                      static_cast<long long>(cursor)));
    return;
  }
  int& attempts = s.retransmit_counts[cursor];
  if (++attempts > config_.max_retransmits) {
    trigger_fallback(id,
                     util::format("frame %lld exhausted %d retransmits",
                                  static_cast<long long>(cursor),
                                  config_.max_retransmits));
    return;
  }
  mark_degraded(s);
  flight(s, util::LogLevel::Warn, "frame-nack",
         util::Json::object({{"seq", cursor}, {"attempt", attempts}}));
  s.channel->take_credit(s.sub, cursor);  // rides the original credit
  send_frame(id, *f, /*retransmit=*/true);
}

void StreamService::absorb_spill(const SessionId& id,
                                 const std::vector<net::Frame>& evicted) {
  if (evicted.empty()) return;
  Session& s = sessions_.at(id);
  for (const net::Frame& f : evicted) {
    if (s.spilled.count(f.seq)) continue;
    mark_degraded(s);
    if (s.seg_first < 0) {
      s.seg_first = s.seg_last = f.seq;
    } else if (f.seq == s.seg_last + 1) {
      s.seg_last = f.seq;
    } else {
      flush_spill(id);
      if (finished(s) || s.info.fallback) return;
      s.seg_first = s.seg_last = f.seq;
    }
    s.spilled.insert(f.seq);
    if (s.seg_last - s.seg_first + 1 >= config_.spill_flush_frames) {
      flush_spill(id);
      if (finished(s) || s.info.fallback) return;
    }
  }
}

void StreamService::flush_spill(const SessionId& id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end() || finished(it->second)) return;
  Session& s = it->second;
  if (s.info.fallback || s.seg_first < 0) return;
  if (s.spill_segments >= config_.max_spill_segments) {
    trigger_fallback(id, util::format("spill segment budget (%d) exhausted",
                                      config_.max_spill_segments));
    return;
  }
  const int64_t first = s.seg_first, last = s.seg_last;
  s.seg_first = s.seg_last = -1;
  ++s.spill_segments;

  const int64_t bytes = s.source->bytes_in_range(first, last);
  const int64_t index = next_spill_file_++;
  const std::string suffix =
      util::format(".spill-%04lld", static_cast<long long>(index));
  const std::string spill_src = s.request.src_path + suffix;
  const std::string spill_dst = s.request.dst_path + suffix;
  // Stage the segment as its own source object so the verified chunked
  // transfer path can move and checksum it independently of the stream.
  wiring_.src_store->put_virtual(spill_src, bytes, util::crc64(spill_src),
                                 engine_->now());

  TransferRequest req;
  req.src_endpoint = wiring_.src_endpoint;
  req.dst_endpoint = wiring_.store_endpoint;
  req.files = {{spill_src, spill_dst}};
  req.streaming_chunk_bytes = config_.spill_chunk_bytes;
  auto task = transfer_->submit(req, s.token);
  if (!task) {
    trigger_fallback(id, "spill transfer rejected: " + task.error().message);
    return;
  }
  ++s.info.spills;
  s.info.spilled_bytes += bytes;
  ++s.spills_inflight;
  if (auto* c = counter("stream_spills_total",
                        "Frame ranges diverted to the store landing path"))
    c->inc();
  if (auto* c = counter("stream_spilled_bytes_total",
                        "Bytes that reached the consumer via spill-to-store"))
    c->inc(static_cast<double>(bytes));
  if (telemetry_ && s.span) {
    telemetry_->tracer.event(
        s.span, "spill", engine_->now(),
        util::Json::object({{"first", first}, {"last", last},
                            {"bytes", bytes}}));
  }
  flight(s, util::LogLevel::Warn, "spill",
         util::Json::object(
             {{"first", first}, {"last", last}, {"bytes", bytes}}));
  logger().info("%s: spilling frames [%lld, %lld] (%lld bytes) via %s",
                id.c_str(), static_cast<long long>(first),
                static_cast<long long>(last), static_cast<long long>(bytes),
                task.value().c_str());

  transfer_->on_settled(task.value(), [this, id, first, last,
                                       bytes](const TaskInfo& info) {
    auto sit = sessions_.find(id);
    if (sit == sessions_.end() || finished(sit->second)) return;
    if (info.state != TaskState::Succeeded) {
      --sit->second.spills_inflight;
      trigger_fallback(id, "spill transfer failed: " + info.error);
      return;
    }
    // Segment landed (verified) on the store; backfill it to node memory.
    auto flow = network_->start_flow(
        wiring_.store_node, wiring_.dst_node, bytes,
        [this, id, first, last](net::FlowId) {
          apply_satisfy(id, first, last);
        });
    if (!flow) {
      --sit->second.spills_inflight;
      trigger_fallback(id, "spill backfill unroutable: " +
                               flow.error().message);
    }
  });
}

void StreamService::apply_satisfy(const SessionId& id, int64_t first,
                                  int64_t last) {
  auto it = sessions_.find(id);
  if (it == sessions_.end() || finished(it->second)) return;
  Session& s = it->second;
  --s.spills_inflight;
  if (s.info.fallback) return;
  if (stalled_) {
    // The consumer is not taking frames; remember the backfilled range and
    // apply it when the stall clears.
    s.pending_satisfy.emplace_back(first, last);
    return;
  }
  s.channel->satisfy_range(s.sub, first, last);
  after_progress(id);
}

void StreamService::set_consumer_stall(bool stalled) {
  if (stalled_ == stalled) return;
  stalled_ = stalled;
  if (stalled) {
    if (config_.stall_fallback_s <= 0) return;
    for (auto& [id, s] : sessions_) {
      if (finished(s) || s.info.fallback) continue;
      if (telemetry_ && s.span) {
        telemetry_->tracer.event(s.span, "consumer-stall", engine_->now());
      }
      flight(s, util::LogLevel::Warn, "consumer-stall",
             util::Json::object({{"budget_s", config_.stall_fallback_s}}));
      SessionId sid = id;
      engine_->schedule_after(
          sim::Duration::from_seconds(config_.stall_fallback_s),
          [this, sid] {
            auto sit = sessions_.find(sid);
            if (sit == sessions_.end() || finished(sit->second)) return;
            if (stalled_ && !sit->second.info.fallback) {
              trigger_fallback(sid, "consumer stall outlasted the budget");
            }
          });
    }
    return;
  }
  // Stall cleared: drain parked arrivals and backfills, then resume pumping.
  std::vector<SessionId> ids;
  ids.reserve(sessions_.size());
  for (auto& [id, s] : sessions_) ids.push_back(id);
  for (const SessionId& id : ids) {
    auto it = sessions_.find(id);
    if (it == sessions_.end() || finished(it->second)) continue;
    Session& s = it->second;
    if (s.info.fallback) continue;
    std::deque<net::Frame> queued;
    queued.swap(s.stall_queue);
    for (const net::Frame& f : queued) deliver_frame(id, f);
    std::vector<std::pair<int64_t, int64_t>> ranges;
    ranges.swap(s.pending_satisfy);
    for (auto& [first, last] : ranges) {
      if (finished(s) || s.info.fallback) break;
      s.channel->satisfy_range(s.sub, first, last);
    }
    after_progress(id);
  }
}

void StreamService::trigger_fallback(const SessionId& id,
                                     const std::string& reason) {
  auto it = sessions_.find(id);
  if (it == sessions_.end() || finished(it->second)) return;
  Session& s = it->second;
  if (s.info.fallback) return;
  s.info.fallback = true;
  s.info.mode = "fallback";
  mark_degraded(s);
  s.cadence.cancel();
  s.watchdog.cancel();
  s.stall_queue.clear();
  if (auto* c = counter("stream_fallbacks_total",
                        "Sessions re-routed whole-flow to the store path"))
    c->inc();
  if (telemetry_ && s.span) {
    telemetry_->tracer.event(s.span, "fallback", engine_->now(),
                             util::Json::object({{"reason", reason}}));
  }
  // Error level marks the owning run's ring dump-worthy: a fallback is the
  // ladder's last rung and exactly what a postmortem wants to replay.
  flight(s, util::LogLevel::Error, "stream-fallback",
         util::Json::object({{"session", id}, {"reason", reason}}));
  logger().warn("%s: falling back to store-mediated transfer (%s)",
                id.c_str(), reason.c_str());

  TransferRequest req;
  req.src_endpoint = wiring_.src_endpoint;
  req.dst_endpoint = wiring_.store_endpoint;
  req.files = {{s.request.src_path, s.request.dst_path}};
  req.streaming_chunk_bytes = config_.spill_chunk_bytes;
  auto task = transfer_->submit(req, s.token);
  if (!task) {
    fail(id, "fallback transfer rejected: " + task.error().message);
    return;
  }
  transfer_->on_settled(task.value(), [this, id](const TaskInfo& info) {
    auto sit = sessions_.find(id);
    if (sit == sessions_.end() || finished(sit->second)) return;
    if (info.state == TaskState::Succeeded) {
      // The science landed on the store, not in node memory — downstream
      // consumers resolve the object through the landing store.
      sit->second.info.bytes_delivered = sit->second.info.bytes_total;
      if (sit->second.progress_cb) {
        sit->second.progress_cb(sit->second.info.bytes_delivered);
      }
      finish(id, SessionState::Succeeded);
    } else {
      fail(id, "fallback transfer failed: " + info.error);
    }
  });
}

void StreamService::mark_degraded(Session& s) {
  if (s.first_degraded_set) return;
  s.first_degraded_set = true;
  s.first_degraded = engine_->now();
}

void StreamService::complete(const SessionId& id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end() || finished(it->second)) return;
  Session& s = it->second;
  // Materialize the assembled acquisition in node memory: every frame was
  // either consumed in-band (CRC-stamped) or satisfied by a verified spill.
  wiring_.dst_store->put_virtual(s.request.dst_path, s.info.bytes_total,
                                 s.source->content_crc(), engine_->now());
  s.info.bytes_delivered = s.info.bytes_total;
  if (s.info.retransmits > 0 || s.info.spills > 0) s.info.mode = "degraded";
  finish(id, SessionState::Succeeded);
}

void StreamService::fail(const SessionId& id, const std::string& error) {
  auto it = sessions_.find(id);
  if (it == sessions_.end() || finished(it->second)) return;
  it->second.info.error = error;
  logger().warn("%s failed: %s", id.c_str(), error.c_str());
  finish(id, SessionState::Failed);
}

void StreamService::finish(const SessionId& id, SessionState state) {
  Session& s = sessions_.at(id);
  s.info.state = state;
  s.info.completed = engine_->now();
  s.cadence.cancel();
  s.watchdog.cancel();
  if (telemetry_) {
    telemetry_->metrics
        .counter("stream_sessions_total", "Streaming sessions by state",
                 {{"state",
                   state == SessionState::Succeeded ? "succeeded" : "failed"}})
        .inc();
    if (s.first_degraded_set) {
      telemetry_->metrics
          .histogram("stream_degraded_seconds",
                     "Time a session spent in degraded mode before settling",
                     {}, telemetry::FixedHistogram::latency_buckets_s())
          .observe(
              sim::time_between(s.first_degraded, engine_->now()).seconds());
    }
    if (s.span) {
      telemetry_->tracer.close(
          s.span, state == SessionState::Succeeded ? "active" : "failed",
          s.info.submitted, engine_->now(),
          util::Json::object({{"bytes", s.info.bytes_total},
                              {"frames", s.info.frames_total},
                              {"retransmits", s.info.retransmits},
                              {"spills", s.info.spills},
                              {"mode", s.info.mode}}));
      s.span = 0;
    }
    flight(s,
           state == SessionState::Succeeded ? util::LogLevel::Info
                                            : util::LogLevel::Error,
           "stream-settled",
           util::Json::object({
               {"session", id},
               {"state", session_state_name(state)},
               {"mode", s.info.mode},
               {"retransmits", s.info.retransmits},
               {"spills", s.info.spills},
           }));
  }
  logger().debug("%s settled %s (mode %s, %lld retransmits, %lld spills)",
                 id.c_str(), session_state_name(state).c_str(),
                 s.info.mode.c_str(),
                 static_cast<long long>(s.info.retransmits),
                 static_cast<long long>(s.info.spills));
  if (s.settled_cb) s.settled_cb(s.info);
}

SessionInfo StreamService::status(const SessionId& id) const {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    SessionInfo info;
    info.state = SessionState::Failed;
    info.error = "unknown session";
    return info;
  }
  return it->second.info;
}

void StreamService::on_settled(const SessionId& id,
                               std::function<void(const SessionInfo&)> cb) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  if (finished(it->second)) {
    cb(it->second.info);
    return;
  }
  it->second.settled_cb = std::move(cb);
}

bool StreamService::on_progress(const SessionId& id,
                                std::function<void(int64_t)> cb) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  it->second.progress_cb = std::move(cb);
  return true;
}

}  // namespace pico::transfer

#pragma once
// Direct detector→compute frame streaming (DESIGN.md §13). The paper's
// pipeline lands every detector byte on Eagle before compute touches it;
// this service bypasses the landing store: an acquisition file is cut into
// sequence-numbered, CRC-64-stamped frames (instrument::FrameSource) and
// streamed over the facility network straight into compute-node memory
// through a bounded pub/sub ring (net::FrameChannel) with credit-based
// backpressure from the consumer.
//
// Robustness is the headline — a three-rung degradation ladder keeps frame
// chaos from corrupting science:
//   1. in-window retransmit: a gap at the consumer (dropped or reordered
//      frame) is NACKed after `nack_timeout_s` and resent from the producer
//      ring, riding the original credit;
//   2. spill-to-store: frames evicted from the ring before the consumer
//      could take them (live detector cadence + slow/stalled consumer) are
//      coalesced into contiguous segments and diverted through the existing
//      verified chunked-transfer landing path; when the segment settles on
//      the landing store a backfill flow moves it to the node and the
//      channel marks the range satisfied, closing the gap;
//   3. whole-flow fallback: when retransmits exhaust their budget, a spill
//      fails, the spill-segment budget is blown, or a consumer stall outlasts
//      `stall_fallback_s`, the session abandons the channel and re-routes the
//      entire file through the classic store-mediated transfer path.
// Every rung is visible in telemetry (frames_dropped_total,
// frames_retransmitted_total, stream_spills_total, stream_fallbacks_total,
// stream_degraded_seconds) and sessions report which mode delivered the
// science: "direct", "degraded" (direct with retransmits/spills), or
// "fallback".
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "auth/auth.hpp"
#include "instrument/frame_source.hpp"
#include "net/frame_channel.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"
#include "storage/store.hpp"
#include "telemetry/telemetry.hpp"
#include "transfer/service.hpp"
#include "util/rng.hpp"

namespace pico::transfer {

using SessionId = std::string;

enum class SessionState { Pending, Active, Succeeded, Failed };

std::string session_state_name(SessionState s);

struct StreamRequest {
  std::string src_path;  ///< acquisition file on the detector-side store
  std::string dst_path;  ///< object name materialized in node memory
};

struct SessionInfo {
  SessionState state = SessionState::Pending;
  int64_t bytes_total = 0;
  int64_t bytes_delivered = 0;  ///< logical bytes past the consumer cursor
  int64_t frames_total = 0;
  int64_t frames_sent = 0;
  int64_t retransmits = 0;
  int64_t spills = 0;          ///< spill segments diverted to the store path
  int64_t spilled_bytes = 0;
  bool fallback = false;
  /// "direct" (clean), "degraded" (retransmits/spills), or "fallback".
  std::string mode = "direct";
  std::string error;
  sim::SimTime submitted, started, completed;
};

struct StreamConfig {
  int64_t frame_bytes = 8'000'000;
  net::FrameChannelConfig channel;
  /// Detector emission rate. 0 = backpressure-paced replay (frames publish
  /// exactly when the channel can take them — a staged file has no deadline).
  /// > 0 = live cadence: the detector publishes on schedule no matter what,
  /// so a slow or stalled consumer overflows the ring and forces spills.
  double detector_rate_bps = 0;
  /// Session establishment: endpoint handshake + node-memory registration.
  /// Much cheaper than a cloud transfer-task setup — no task routing.
  double setup_s = 0.5;
  /// Gap age before the consumer NACKs and the producer retransmits.
  double nack_timeout_s = 1.0;
  /// Extra flight time a chaos-reordered frame spends in the weeds.
  double reorder_hold_s = 0.5;
  /// Retransmits allowed per frame before the session falls back.
  int max_retransmits = 8;
  /// Spill segments allowed before the session falls back entirely.
  int max_spill_segments = 4;
  /// Open spill segment flushes once it reaches this many frames.
  int spill_flush_frames = 16;
  /// Consumer stall longer than this forces whole-flow fallback.
  double stall_fallback_s = 30.0;
  /// Chunk size for spill/fallback transfers (verified resumable path).
  int64_t spill_chunk_bytes = 8'000'000;
  /// Max concurrent in-flight frame flows per session.
  int wire_pipeline = 4;
};

class StreamService {
 public:
  /// Everything the degradation ladder needs to reach around the channel:
  /// the detector-side store/node, the compute node and its memory store,
  /// and the landing-store route (endpoints of the TransferService) used by
  /// spill and fallback.
  struct Wiring {
    net::NodeId src_node = 0;
    storage::Store* src_store = nullptr;  ///< staged acquisition files
    net::NodeId dst_node = 0;
    storage::Store* dst_store = nullptr;  ///< compute-node memory
    net::NodeId store_node = 0;           ///< landing store's network node
    std::string src_endpoint;             ///< TransferService endpoint names
    std::string store_endpoint;
  };

  StreamService(sim::Engine* engine, net::Network* network,
                auth::AuthService* auth, TransferService* transfer,
                StreamConfig config, Wiring wiring, uint64_t seed = 0x57A3ull);

  void set_telemetry(telemetry::Telemetry* telemetry) {
    telemetry_ = telemetry;
  }

  /// Open a streaming session. Requires a token with scope "transfer" (the
  /// stream rides the same data-movement authority as the store path).
  util::Result<SessionId> submit(const StreamRequest& request,
                                 const auth::Token& token);

  SessionInfo status(const SessionId& id) const;

  void on_settled(const SessionId& id,
                  std::function<void(const SessionInfo&)> cb);
  /// Byte-progress hook: fired whenever the consumer cursor advances, with
  /// cumulative logical bytes delivered.
  bool on_progress(const SessionId& id, std::function<void(int64_t)> cb);

  // --- frame chaos surface (fault::FaultKind windows) ----------------------
  void set_frame_drop_prob(double p) { frame_drop_prob_ = p; }
  double frame_drop_prob() const { return frame_drop_prob_; }
  void set_frame_reorder_prob(double p) { frame_reorder_prob_ = p; }
  double frame_reorder_prob() const { return frame_reorder_prob_; }
  void set_frame_duplicate_prob(double p) { frame_duplicate_prob_ = p; }
  double frame_duplicate_prob() const { return frame_duplicate_prob_; }
  /// Consumer stall: frames queue at the consumer without being consumed, so
  /// credits stay held and the producer backpressures (paced mode) or
  /// overflows the ring into spills (live mode). A stall outlasting
  /// `stall_fallback_s` forces whole-flow fallback.
  void set_consumer_stall(bool stalled);
  bool consumer_stalled() const { return stalled_; }

  size_t session_count() const { return sessions_.size(); }
  const StreamConfig& config() const { return config_; }

 private:
  struct Session {
    StreamRequest request;
    auth::Token token;
    SessionInfo info;
    std::unique_ptr<instrument::FrameSource> source;
    std::unique_ptr<net::FrameChannel> channel;
    int sub = 0;                   ///< the single consumer's subscriber id
    int64_t next_publish = 0;      ///< next seq the detector emits
    int64_t next_send = 0;         ///< next seq the producer ships
    int inflight = 0;              ///< frame flows on the wire
    std::map<int64_t, int> retransmit_counts;
    std::set<int64_t> spilled;     ///< seqs routed (or routing) via the store
    int64_t seg_first = -1, seg_last = -1;  ///< open spill segment
    int spill_segments = 0;
    int spills_inflight = 0;
    std::deque<net::Frame> stall_queue;  ///< arrivals parked during a stall
    std::vector<std::pair<int64_t, int64_t>> pending_satisfy;
    int64_t watch_cursor = -1;     ///< consumer cursor at last watchdog tick
    sim::EventHandle cadence;      ///< live-mode publish tick
    sim::EventHandle watchdog;
    bool first_degraded_set = false;
    sim::SimTime first_degraded;
    std::function<void(int64_t)> progress_cb;
    std::function<void(const SessionInfo&)> settled_cb;
    uint64_t span = 0;
    /// Flight-recorder subject (the flow run id) captured at submit() from
    /// the recorder's context stack, so frame NACKs/spills landing seconds
    /// later still reach the owning run's ring.
    std::string flight_subject;
  };

  void activate(const SessionId& id);
  /// Paced-mode pump: publish+send frames while credits and the wire
  /// pipeline allow. Live mode only ships already-published frames here.
  void pump(const SessionId& id);
  void publish_tick(const SessionId& id);  ///< live-mode detector cadence
  /// Emit the next frame onto the session's channel. When the staged source
  /// object carries real bytes, the frame slice is published through the
  /// zero-copy pooled-payload path (CRC fused into the landing copy);
  /// otherwise the metadata-only overload is used. Advances next_publish and
  /// returns evicted frames the spill path must absorb.
  std::vector<net::Frame> publish_next(Session& s);
  void send_frame(const SessionId& id, const net::Frame& f, bool retransmit);
  void arrival(const SessionId& id, const net::Frame& f);
  void deliver_frame(const SessionId& id, const net::Frame& f);
  /// Consumer cursor bookkeeping after any delivery/satisfy: progress
  /// callback, completion check.
  void after_progress(const SessionId& id);
  void watchdog_tick(const SessionId& id);
  /// Route evicted frames into the open spill segment (flushing as needed).
  void absorb_spill(const SessionId& id, const std::vector<net::Frame>& ev);
  void flush_spill(const SessionId& id);
  void apply_satisfy(const SessionId& id, int64_t first, int64_t last);
  void trigger_fallback(const SessionId& id, const std::string& reason);
  void mark_degraded(Session& s);
  void complete(const SessionId& id);
  void fail(const SessionId& id, const std::string& error);
  void finish(const SessionId& id, SessionState state);
  bool finished(const Session& s) const {
    return s.info.state == SessionState::Succeeded ||
           s.info.state == SessionState::Failed;
  }
  telemetry::Counter* counter(const std::string& name, const std::string& help,
                              const telemetry::Labels& labels = {});
  /// Append to the owning run's flight ring (no-op without a subject).
  void flight(const Session& s, util::LogLevel level, std::string name,
              util::Json attrs = {});

  sim::Engine* engine_;
  net::Network* network_;
  auth::AuthService* auth_;
  TransferService* transfer_;
  StreamConfig config_;
  Wiring wiring_;
  util::Rng rng_;
  telemetry::Telemetry* telemetry_ = nullptr;
  std::map<SessionId, Session> sessions_;
  uint64_t next_session_ = 1;
  int64_t next_spill_file_ = 1;
  double frame_drop_prob_ = 0;
  double frame_reorder_prob_ = 0;
  double frame_duplicate_prob_ = 0;
  bool stalled_ = false;
};

}  // namespace pico::transfer

#pragma once
// Globus-Transfer-like service: moves files between registered endpoints over
// the simulated network, with authentication, task setup latency, optional
// per-file compression, integrity verification, fault injection, and
// automatic retries. Clients poll task status — exactly the interaction the
// paper's flow orchestrator has with the real Transfer service.
//
// Integrity layer (DESIGN.md Sec. 9): every streaming chunk carries a CRC-64
// and lands in a per-file chunk manifest that outlives the task, so a retry —
// whether the same task after a mid-flight fault or a brand-new task after a
// flow-level timeout — resumes from the last verified chunk instead of
// resending the whole file. Wire bit-flips and truncated landings are
// detected by the same checksums and surface as retries, and every
// successful delivery records provenance so the storage scrubber can request
// a repair re-transfer of a corrupt destination object.
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "auth/auth.hpp"
#include "compress/codec.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "storage/store.hpp"
#include "telemetry/telemetry.hpp"
#include "util/rng.hpp"

namespace pico::transfer {

using TaskId = std::string;

enum class TaskState { Pending, Active, Succeeded, Failed };

std::string task_state_name(TaskState s);

/// One file to move: source path at the source endpoint, destination path at
/// the destination endpoint.
struct FileSpec {
  std::string src_path;
  std::string dst_path;
};

struct TransferRequest {
  std::string src_endpoint;
  std::string dst_endpoint;
  std::vector<FileSpec> files;
  /// Optional codec name ("rle", "lz", ...); empty = no compression. Applied
  /// per file before the bytes enter the network (A3 ablation).
  std::string codec;
  /// Compression ratio assumed for size-only (virtual) objects when a codec
  /// is set; real-content objects are compressed for real.
  double assumed_virtual_ratio = 1.0;
  /// Cut-through streaming: move each file as consecutive chunk flows of
  /// this many wire bytes, firing on_progress() observers as each chunk
  /// lands, so a downstream consumer can start before the file completes.
  /// 0 (default) keeps the classic single-flow-per-file behaviour. Non-zero
  /// values are clamped at submit() to [1, largest source file size].
  int64_t streaming_chunk_bytes = 0;
};

struct TaskInfo {
  TaskState state = TaskState::Pending;
  int64_t bytes_total = 0;      ///< logical (uncompressed) bytes
  int64_t bytes_done = 0;       ///< completed files + live in-flight progress
  int64_t wire_bytes = 0;       ///< bytes that crossed the network
  int files_total = 0;
  int files_done = 0;
  int faults = 0;               ///< injected faults survived via retry
  int64_t chunks_resumed = 0;   ///< chunks skipped via a verified manifest
  int corruption_detected = 0;  ///< wire/landing integrity failures caught
  std::string error;
  sim::SimTime submitted, started, completed;
};

/// Knobs calibrated against the paper's environment (DESIGN.md Sec. 5).
struct TransferConfig {
  /// Cloud-service task setup: auth handshake + endpoint activation + task
  /// routing, charged once per task before any byte moves.
  double setup_mean_s = 4.0;
  double setup_jitter_s = 1.0;     ///< lognormal-ish spread around the mean
  /// Per-file bookkeeping (directory creation, checksum start/stop).
  double per_file_overhead_s = 0.8;
  /// Probability a file transfer faults mid-flight and restarts.
  double fault_prob = 0.0;
  int max_retries = 3;
  /// Base delay before a faulted file restarts. Attempt k waits
  /// min(cap, base * 2^(k-1)) * U(0.5, 1.5) — exponential with jitter, so
  /// concurrent faulted tasks do not retry in lockstep.
  double retry_backoff_s = 2.0;
  double retry_backoff_cap_s = 60.0;
  /// Per-flow end-host rate cap (bits/s); 0 = line rate. Models the
  /// single-stream TCP + source-disk ceiling of the user workstation that
  /// keeps observed Globus throughput well under the 1 Gbps switch.
  double per_flow_rate_cap_bps = 0;
  /// Run-to-run throughput variability: each task's effective cap is drawn
  /// from cap * N(1, cap_jitter_frac).
  double cap_jitter_frac = 0.08;
  /// Settling: after the last byte lands, the destination verifies checksums
  /// and the cloud service syncs task state before SUCCEEDED becomes visible
  /// to pollers. The service's reported activity interval covers the data
  /// movement only, so settling surfaces as orchestration overhead.
  double settle_base_s = 0.2;
  double settle_per_gb_s = 9.0;  ///< ~110 MB/s destination checksum rate
  /// Verified resumable streaming (chunked mode only): each chunk's CRC-64
  /// lands in a per-file manifest keyed by the full transfer identity, and a
  /// retry resumes from the last verified chunk. false = the pre-manifest
  /// whole-file restart (kept for the A9 ablation).
  bool verified_resume = true;
};

class TransferService {
 public:
  /// Per-file chunk manifest for verified resumable streaming. Keyed by the
  /// full transfer identity (route, paths, declared CRC, wire size, chunk
  /// size), so any task moving the same file — including a new task submitted
  /// after a flow-level timeout abandoned its predecessor — consults the same
  /// manifest and never resends a verified chunk.
  struct ChunkManifest {
    int64_t wire_bytes = 0;
    int64_t chunk_bytes = 0;
    uint64_t content_crc = 0;
    /// Creation stamp of the source object the manifest was built against.
    /// A mid-campaign re-acquisition can rewrite the same path with the same
    /// size and declared CRC; the fresh stamp invalidates the manifest so
    /// verified-resume cannot skip bytes that were never moved.
    sim::SimTime source_created;
    std::vector<uint64_t> chunk_crc;  ///< expected CRC-64 per chunk
    std::vector<bool> verified;       ///< chunk landed with a matching CRC
    std::vector<bool> claimed;        ///< chunk has an in-flight network flow

    int64_t chunk_count() const {
      return static_cast<int64_t>(verified.size());
    }
    int64_t verified_count() const;
    int64_t verified_wire() const;
    bool complete() const { return verified_count() == chunk_count(); }
    int64_t chunk_size(int64_t index) const;
  };

  TransferService(sim::Engine* engine, net::Network* network,
                  auth::AuthService* auth, TransferConfig config,
                  uint64_t seed = 0x7A4Full, sim::Trace* trace = nullptr);

  /// Register an endpoint: a network node with an attached store.
  void register_endpoint(const std::string& name, net::NodeId node,
                         storage::Store* store);

  /// Attach facility telemetry: task spans join the causal tree (parented to
  /// the flow attempt that submitted them via tracer context), injected
  /// faults/stalls become span events, and transfer_* metrics are maintained.
  void set_telemetry(telemetry::Telemetry* telemetry) {
    telemetry_ = telemetry;
  }

  /// Submit a transfer. Requires a token with scope "transfer".
  util::Result<TaskId> submit(const TransferRequest& request,
                              const auth::Token& token);

  /// Provenance-driven repair: resubmit a single-file transfer that re-lands
  /// a previously delivered destination object (the storage scrubber calls
  /// this after quarantining a corrupt copy). Fails when this service never
  /// delivered the object.
  util::Result<TaskId> repair(const std::string& dst_endpoint,
                              const std::string& dst_path,
                              const auth::Token& token);

  /// Poll task status (the flow engine's only view of progress).
  TaskInfo status(const TaskId& id) const;

  /// Completion hook (fired in virtual time when the task settles). Used by
  /// tests; the flow engine polls instead, as the real service requires.
  void on_settled(const TaskId& id, std::function<void(const TaskInfo&)> cb);

  /// Byte-progress hook for chunked (streaming) tasks: fired after each
  /// chunk lands with the cumulative *logical* bytes delivered so far.
  /// Returns false when the task is unknown or was not submitted with
  /// streaming_chunk_bytes > 0.
  bool on_progress(const TaskId& id, std::function<void(int64_t)> cb);

  size_t endpoint_count() const { return endpoints_.size(); }

  /// Fault injection: while unavailable, submit() is rejected with code
  /// "unavailable" and in-flight tasks stall between files (the current
  /// network flow, if any, drains normally — mirroring a cloud-service
  /// control-plane outage that leaves the data plane running). Restoring
  /// availability resumes every stalled task.
  void set_available(bool available);
  bool available() const { return available_; }

  /// Wire bit-flip fault model (fault::FaultKind::WireBitFlip): probability
  /// that a landed chunk (chunked mode) or whole file (classic mode) arrives
  /// with flipped bits. The per-chunk CRC-64 always catches it; the cost is
  /// the resend plus backoff.
  void set_wire_corruption_prob(double p) { wire_corruption_prob_ = p; }
  double wire_corruption_prob() const { return wire_corruption_prob_; }

  /// Truncated-landing fault model: probability a delivered file lands short
  /// at the destination store; landing verification catches it and the file
  /// retries (cheaply, when a manifest already verified every chunk).
  void set_truncation_prob(double p) { truncation_prob_ = p; }
  double truncation_prob() const { return truncation_prob_; }

  /// Toggle verified resumable streaming at runtime (the A9 ablation flips a
  /// live facility to pre-manifest whole-file-restart behaviour).
  void set_verified_resume(bool on) { config_.verified_resume = on; }
  bool verified_resume() const { return config_.verified_resume; }

  /// Manifest lookup for tests/diagnostics; nullptr when none exists for
  /// this (request, file) identity.
  const ChunkManifest* manifest(const TransferRequest& request,
                                const FileSpec& spec) const;
  size_t manifest_count() const { return manifests_.size(); }

  /// Federation manifest mirror: serialize every chunk manifest (keyed by the
  /// full transfer identity — endpoints, paths, content CRC, wire size, chunk
  /// size) so a peer facility can import them and resume a failed-over
  /// transfer from the verified chunks instead of restarting. Endpoint names
  /// are facility constants, so identities match across replicated sites.
  util::Json export_manifests() const;
  /// Merge a peer's exported manifests. `claimed` bits are dropped (the
  /// peer's in-flight network flows did not move with the checkpoint);
  /// `verified` chunks are trusted — they were CRC-checked at landing, and a
  /// mismatched source re-acquisition still invalidates via source_created.
  /// Existing local manifests win over imports. Returns manifests added.
  size_t import_manifests(const util::Json& doc);

 private:
  struct Endpoint {
    net::NodeId node;
    storage::Store* store;
  };
  struct ActiveTask {
    TransferRequest request;
    TaskInfo info;
    size_t next_file = 0;
    int attempts_this_file = 0;
    double effective_cap_bps = 0;
    net::FlowId current_flow = 0;    ///< active network flow, 0 = none
    int64_t current_file_bytes = 0;  ///< logical size of the in-flight file
    /// Chunked (streaming) bookkeeping for the in-flight file.
    int64_t current_file_wire_bytes = 0;
    int64_t chunk_wire_sent = 0;     ///< wire bytes of fully-landed chunks
    int64_t current_chunk = -1;      ///< manifest chunk in flight (-1 = none)
    int corrupt_streak = 0;          ///< consecutive corrupt chunk landings
    std::string manifest_key;        ///< manifest of the in-flight file
    /// Verified chunks already credited as "resumed" per manifest, so a
    /// within-task retry only counts chunks newly verified since its last
    /// attach (including its own earlier landings) — never the same chunk
    /// twice.
    std::map<std::string, int64_t> resume_credited;
    std::function<void(int64_t)> progress_cb;
    std::function<void(const TaskInfo&)> settled_cb;
    uint64_t span = 0;  ///< open telemetry span (0 = none)
    /// Flight-recorder subject (the owning flow run) captured at submit(), so
    /// retries and corruption hits land in that run's ring.
    std::string flight_subject;
  };
  /// How a delivered destination object was produced — enough to resubmit an
  /// equivalent single-file transfer when the scrubber quarantines the copy.
  struct Provenance {
    std::string src_endpoint;
    std::string src_path;
    std::string codec;
    double assumed_virtual_ratio = 1.0;
    int64_t streaming_chunk_bytes = 0;
  };

  void begin_next_file(const TaskId& id);
  /// Chunked path: send the next unverified chunk of the in-flight file as
  /// its own network flow, firing progress_cb per landed chunk.
  void send_next_chunk(const TaskId& id, const FileSpec& spec,
                       int64_t wire_bytes, int64_t logical_bytes);
  void finish_file(const TaskId& id, const FileSpec& spec, int64_t wire_delta);
  /// Shared retry path for mid-flight faults, wire corruption, truncated
  /// landings, and routeless chunk streams: burn one attempt, back off
  /// exponentially, re-enter begin_next_file. Returns false when the retry
  /// budget is exhausted (the task was failed).
  bool retry_file(const TaskId& id, const FileSpec& spec,
                  const std::string& reason);
  void fail_task(const TaskId& id, const std::string& error);
  void settle(const TaskId& id);
  /// Wire size of a file after optional compression; also yields the bytes
  /// to store at the destination.
  util::Result<int64_t> wire_size_for(const TransferRequest& request,
                                      const storage::Object& obj) const;
  std::string manifest_key_for(const TransferRequest& request,
                               const FileSpec& spec, uint64_t content_crc,
                               int64_t wire_bytes) const;
  /// Find-or-create the chunk manifest for the in-flight file, attach it to
  /// the task, and credit already-verified chunks as resumed. A manifest
  /// whose recorded source identity no longer matches `source_created` (the
  /// path was re-acquired between attempts) is reset before resuming.
  void attach_manifest(ActiveTask& task, const FileSpec& spec,
                       uint64_t content_crc, int64_t wire_bytes,
                       sim::SimTime source_created);
  void note_corruption(ActiveTask& task, const char* where,
                       const FileSpec& spec);
  /// Append to the owning run's flight ring (no-op without a subject).
  void flight(const ActiveTask& task, util::LogLevel level, std::string name,
              util::Json attrs = {});

  sim::Engine* engine_;
  net::Network* network_;
  auth::AuthService* auth_;
  TransferConfig config_;
  util::Rng rng_;
  sim::Trace* trace_;
  telemetry::Telemetry* telemetry_ = nullptr;
  std::map<std::string, Endpoint> endpoints_;
  std::map<TaskId, ActiveTask> tasks_;
  /// Chunk manifests keyed by transfer identity; they outlive tasks so
  /// timeout-spawned replacement tasks resume instead of restarting.
  std::map<std::string, ChunkManifest> manifests_;
  /// Delivery provenance keyed "dst_endpoint|dst_path", for repair().
  std::map<std::string, Provenance> provenance_;
  uint64_t next_task_ = 1;
  bool available_ = true;
  double wire_corruption_prob_ = 0;
  double truncation_prob_ = 0;
  std::vector<TaskId> stalled_;  ///< tasks parked while unavailable
};

}  // namespace pico::transfer

#pragma once
// Globus-Transfer-like service: moves files between registered endpoints over
// the simulated network, with authentication, task setup latency, optional
// per-file compression, integrity verification, fault injection, and
// automatic retries. Clients poll task status — exactly the interaction the
// paper's flow orchestrator has with the real Transfer service.
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "auth/auth.hpp"
#include "compress/codec.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "storage/store.hpp"
#include "telemetry/telemetry.hpp"
#include "util/rng.hpp"

namespace pico::transfer {

using TaskId = std::string;

enum class TaskState { Pending, Active, Succeeded, Failed };

std::string task_state_name(TaskState s);

/// One file to move: source path at the source endpoint, destination path at
/// the destination endpoint.
struct FileSpec {
  std::string src_path;
  std::string dst_path;
};

struct TransferRequest {
  std::string src_endpoint;
  std::string dst_endpoint;
  std::vector<FileSpec> files;
  /// Optional codec name ("rle", "lz", ...); empty = no compression. Applied
  /// per file before the bytes enter the network (A3 ablation).
  std::string codec;
  /// Compression ratio assumed for size-only (virtual) objects when a codec
  /// is set; real-content objects are compressed for real.
  double assumed_virtual_ratio = 1.0;
  /// Cut-through streaming: move each file as consecutive chunk flows of
  /// this many wire bytes, firing on_progress() observers as each chunk
  /// lands, so a downstream consumer can start before the file completes.
  /// 0 (default) keeps the classic single-flow-per-file behaviour.
  int64_t streaming_chunk_bytes = 0;
};

struct TaskInfo {
  TaskState state = TaskState::Pending;
  int64_t bytes_total = 0;      ///< logical (uncompressed) bytes
  int64_t bytes_done = 0;       ///< completed files + live in-flight progress
  int64_t wire_bytes = 0;       ///< bytes that crossed the network
  int files_total = 0;
  int files_done = 0;
  int faults = 0;               ///< injected faults survived via retry
  std::string error;
  sim::SimTime submitted, started, completed;
};

/// Knobs calibrated against the paper's environment (DESIGN.md Sec. 5).
struct TransferConfig {
  /// Cloud-service task setup: auth handshake + endpoint activation + task
  /// routing, charged once per task before any byte moves.
  double setup_mean_s = 4.0;
  double setup_jitter_s = 1.0;     ///< lognormal-ish spread around the mean
  /// Per-file bookkeeping (directory creation, checksum start/stop).
  double per_file_overhead_s = 0.8;
  /// Probability a file transfer faults mid-flight and restarts.
  double fault_prob = 0.0;
  int max_retries = 3;
  /// Base delay before a faulted file restarts. Attempt k waits
  /// min(cap, base * 2^(k-1)) * U(0.5, 1.5) — exponential with jitter, so
  /// concurrent faulted tasks do not retry in lockstep.
  double retry_backoff_s = 2.0;
  double retry_backoff_cap_s = 60.0;
  /// Per-flow end-host rate cap (bits/s); 0 = line rate. Models the
  /// single-stream TCP + source-disk ceiling of the user workstation that
  /// keeps observed Globus throughput well under the 1 Gbps switch.
  double per_flow_rate_cap_bps = 0;
  /// Run-to-run throughput variability: each task's effective cap is drawn
  /// from cap * N(1, cap_jitter_frac).
  double cap_jitter_frac = 0.08;
  /// Settling: after the last byte lands, the destination verifies checksums
  /// and the cloud service syncs task state before SUCCEEDED becomes visible
  /// to pollers. The service's reported activity interval covers the data
  /// movement only, so settling surfaces as orchestration overhead.
  double settle_base_s = 0.2;
  double settle_per_gb_s = 9.0;  ///< ~110 MB/s destination checksum rate
};

class TransferService {
 public:
  TransferService(sim::Engine* engine, net::Network* network,
                  auth::AuthService* auth, TransferConfig config,
                  uint64_t seed = 0x7A4Full, sim::Trace* trace = nullptr);

  /// Register an endpoint: a network node with an attached store.
  void register_endpoint(const std::string& name, net::NodeId node,
                         storage::Store* store);

  /// Attach facility telemetry: task spans join the causal tree (parented to
  /// the flow attempt that submitted them via tracer context), injected
  /// faults/stalls become span events, and transfer_* metrics are maintained.
  void set_telemetry(telemetry::Telemetry* telemetry) {
    telemetry_ = telemetry;
  }

  /// Submit a transfer. Requires a token with scope "transfer".
  util::Result<TaskId> submit(const TransferRequest& request,
                              const auth::Token& token);

  /// Poll task status (the flow engine's only view of progress).
  TaskInfo status(const TaskId& id) const;

  /// Completion hook (fired in virtual time when the task settles). Used by
  /// tests; the flow engine polls instead, as the real service requires.
  void on_settled(const TaskId& id, std::function<void(const TaskInfo&)> cb);

  /// Byte-progress hook for chunked (streaming) tasks: fired after each
  /// chunk lands with the cumulative *logical* bytes delivered so far.
  /// Returns false when the task is unknown or was not submitted with
  /// streaming_chunk_bytes > 0.
  bool on_progress(const TaskId& id, std::function<void(int64_t)> cb);

  size_t endpoint_count() const { return endpoints_.size(); }

  /// Fault injection: while unavailable, submit() is rejected with code
  /// "unavailable" and in-flight tasks stall between files (the current
  /// network flow, if any, drains normally — mirroring a cloud-service
  /// control-plane outage that leaves the data plane running). Restoring
  /// availability resumes every stalled task.
  void set_available(bool available);
  bool available() const { return available_; }

 private:
  struct Endpoint {
    net::NodeId node;
    storage::Store* store;
  };
  struct ActiveTask {
    TransferRequest request;
    TaskInfo info;
    size_t next_file = 0;
    int attempts_this_file = 0;
    double effective_cap_bps = 0;
    net::FlowId current_flow = 0;    ///< active network flow, 0 = none
    int64_t current_file_bytes = 0;  ///< logical size of the in-flight file
    /// Chunked (streaming) bookkeeping for the in-flight file.
    int64_t current_file_wire_bytes = 0;
    int64_t chunk_wire_sent = 0;     ///< wire bytes of fully-landed chunks
    std::function<void(int64_t)> progress_cb;
    std::function<void(const TaskInfo&)> settled_cb;
    uint64_t span = 0;  ///< open telemetry span (0 = none)
  };

  void begin_next_file(const TaskId& id);
  /// Chunked path: send the next streaming_chunk_bytes of the in-flight file
  /// as its own network flow, firing progress_cb per landed chunk.
  void send_next_chunk(const TaskId& id, const FileSpec& spec,
                       int64_t wire_bytes, int64_t logical_bytes);
  void finish_file(const TaskId& id, const FileSpec& spec, int64_t wire_bytes);
  void fail_task(const TaskId& id, const std::string& error);
  void settle(const TaskId& id);
  /// Wire size of a file after optional compression; also yields the bytes
  /// to store at the destination.
  util::Result<int64_t> wire_size_for(const TransferRequest& request,
                                      const storage::Object& obj) const;

  sim::Engine* engine_;
  net::Network* network_;
  auth::AuthService* auth_;
  TransferConfig config_;
  util::Rng rng_;
  sim::Trace* trace_;
  telemetry::Telemetry* telemetry_ = nullptr;
  std::map<std::string, Endpoint> endpoints_;
  std::map<TaskId, ActiveTask> tasks_;
  uint64_t next_task_ = 1;
  bool available_ = true;
  std::vector<TaskId> stalled_;  ///< tasks parked while unavailable
};

}  // namespace pico::transfer

#include "transfer/service.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>

#include "util/crc64.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace pico::transfer {
namespace {

util::Logger& logger() {
  static util::Logger kLogger("transfer");
  return kLogger;
}

}  // namespace

std::string task_state_name(TaskState s) {
  switch (s) {
    case TaskState::Pending: return "PENDING";
    case TaskState::Active: return "ACTIVE";
    case TaskState::Succeeded: return "SUCCEEDED";
    case TaskState::Failed: return "FAILED";
  }
  return "?";
}

int64_t TransferService::ChunkManifest::verified_count() const {
  int64_t n = 0;
  for (bool v : verified) n += v ? 1 : 0;
  return n;
}

int64_t TransferService::ChunkManifest::verified_wire() const {
  int64_t n = 0;
  for (int64_t i = 0; i < chunk_count(); ++i) {
    if (verified[static_cast<size_t>(i)]) n += chunk_size(i);
  }
  return n;
}

int64_t TransferService::ChunkManifest::chunk_size(int64_t index) const {
  int64_t start = index * chunk_bytes;
  return std::max<int64_t>(0, std::min(chunk_bytes, wire_bytes - start));
}

TransferService::TransferService(sim::Engine* engine, net::Network* network,
                                 auth::AuthService* auth,
                                 TransferConfig config, uint64_t seed,
                                 sim::Trace* trace)
    : engine_(engine),
      network_(network),
      auth_(auth),
      config_(config),
      rng_(seed),
      trace_(trace) {}

void TransferService::register_endpoint(const std::string& name,
                                        net::NodeId node,
                                        storage::Store* store) {
  endpoints_[name] = Endpoint{node, store};
}

util::Result<TaskId> TransferService::submit(const TransferRequest& request,
                                             const auth::Token& token) {
  using R = util::Result<TaskId>;
  if (!available_) {
    return R::err("transfer service unavailable", "unavailable");
  }
  auto who = auth_->validate(token, "transfer");
  if (!who) return R::err(who.error());

  auto src_it = endpoints_.find(request.src_endpoint);
  if (src_it == endpoints_.end()) {
    return R::err("unknown source endpoint: " + request.src_endpoint,
                  "not_found");
  }
  auto dst_it = endpoints_.find(request.dst_endpoint);
  if (dst_it == endpoints_.end()) {
    return R::err("unknown destination endpoint: " + request.dst_endpoint,
                  "not_found");
  }
  if (request.files.empty()) return R::err("empty file list", "invalid");
  if (!request.codec.empty() &&
      !compress::CodecRegistry::standard().find(request.codec)) {
    return R::err("unknown codec: " + request.codec, "invalid");
  }

  // Validate every source object exists before accepting the task.
  int64_t total = 0;
  int64_t largest = 0;
  for (const auto& f : request.files) {
    auto obj = src_it->second.store->get(f.src_path);
    if (!obj) return R::err(obj.error());
    total += obj.value()->size;
    largest = std::max(largest, obj.value()->size);
  }

  TaskId id = util::format("xfer-%06llu", static_cast<unsigned long long>(next_task_++));
  ActiveTask task;
  task.request = request;
  if (task.request.streaming_chunk_bytes != 0) {
    // Degenerate chunk sizes are clamped at validation time instead of
    // silently misbehaving: at least one byte per chunk, at most one
    // whole-file chunk of the largest file in the request.
    int64_t cap = std::max<int64_t>(1, largest);
    task.request.streaming_chunk_bytes = std::min(
        cap, std::max<int64_t>(1, task.request.streaming_chunk_bytes));
  }
  task.info.state = TaskState::Pending;
  task.info.bytes_total = total;
  task.info.files_total = static_cast<int>(request.files.size());
  task.info.submitted = engine_->now();
  if (config_.per_flow_rate_cap_bps > 0) {
    task.effective_cap_bps =
        std::max(config_.per_flow_rate_cap_bps * 0.2,
                 rng_.normal(config_.per_flow_rate_cap_bps,
                             config_.per_flow_rate_cap_bps * config_.cap_jitter_frac));
  }
  if (telemetry_) {
    // Context parent: the flow attempt span scoped around provider->start().
    task.span = telemetry_->tracer.open("transfer", id);
    telemetry_->metrics
        .counter("transfer_tasks_total", "Transfer tasks by terminal state",
                 {{"state", "submitted"}})
        .inc();
    task.flight_subject = telemetry_->flight.current();
    flight(task, util::LogLevel::Info, "transfer-open",
           util::Json::object({{"task", id},
                               {"bytes", total},
                               {"files", task.info.files_total}}));
  }
  tasks_[id] = std::move(task);

  // Task setup latency: auth handshake, endpoint activation, task routing.
  double setup = std::max(
      0.2, rng_.normal(config_.setup_mean_s, config_.setup_jitter_s));
  engine_->schedule_after(sim::Duration::from_seconds(setup), [this, id] {
    auto it = tasks_.find(id);
    if (it == tasks_.end()) return;
    it->second.info.state = TaskState::Active;
    it->second.info.started = engine_->now();
    begin_next_file(id);
  });
  logger().debug("submitted %s: %d files, %lld bytes", id.c_str(),
                 static_cast<int>(request.files.size()),
                 static_cast<long long>(total));
  return R::ok(id);
}

util::Result<TaskId> TransferService::repair(const std::string& dst_endpoint,
                                             const std::string& dst_path,
                                             const auth::Token& token) {
  using R = util::Result<TaskId>;
  auto pit = provenance_.find(dst_endpoint + "|" + dst_path);
  if (pit == provenance_.end()) {
    return R::err(
        "no delivery provenance for " + dst_endpoint + "/" + dst_path,
        "not_found");
  }
  const Provenance prov = pit->second;
  TransferRequest request;
  request.src_endpoint = prov.src_endpoint;
  request.dst_endpoint = dst_endpoint;
  request.files = {{prov.src_path, dst_path}};
  request.codec = prov.codec;
  request.assumed_virtual_ratio = prov.assumed_virtual_ratio;
  request.streaming_chunk_bytes = prov.streaming_chunk_bytes;

  // A repair must actually re-move the bytes: drop the completed chunk
  // manifest so verified-resume cannot shortcut the resend of an object we
  // just quarantined.
  auto src_it = endpoints_.find(prov.src_endpoint);
  if (src_it != endpoints_.end()) {
    auto obj = src_it->second.store->get(prov.src_path);
    if (obj) {
      auto wire = wire_size_for(request, *obj.value());
      if (wire) {
        manifests_.erase(manifest_key_for(request,
                                          {prov.src_path, dst_path},
                                          obj.value()->crc64, wire.value()));
      }
    }
  }
  auto task = submit(request, token);
  if (task) {
    logger().info("repair of %s/%s submitted as %s", dst_endpoint.c_str(),
                  dst_path.c_str(), task.value().c_str());
    if (telemetry_) {
      telemetry_->metrics
          .counter("transfer_repairs_total",
                   "Re-transfers submitted to repair quarantined objects")
          .inc();
    }
  }
  return task;
}

util::Result<int64_t> TransferService::wire_size_for(
    const TransferRequest& request, const storage::Object& obj) const {
  using R = util::Result<int64_t>;
  if (request.codec.empty()) return R::ok(obj.size);
  const auto* codec = compress::CodecRegistry::standard().find(request.codec);
  assert(codec);
  if (obj.has_content()) {
    compress::Bytes framed = compress::encode_frame(*codec, *obj.content);
    return R::ok(static_cast<int64_t>(framed.size()));
  }
  double ratio = std::max(1e-6, request.assumed_virtual_ratio);
  return R::ok(static_cast<int64_t>(static_cast<double>(obj.size) / ratio));
}

std::string TransferService::manifest_key_for(const TransferRequest& request,
                                              const FileSpec& spec,
                                              uint64_t content_crc,
                                              int64_t wire_bytes) const {
  return request.src_endpoint + "|" + spec.src_path + "|" +
         request.dst_endpoint + "|" + spec.dst_path + "|" +
         util::format("%016llx|%lld|%lld",
                      static_cast<unsigned long long>(content_crc),
                      static_cast<long long>(wire_bytes),
                      static_cast<long long>(request.streaming_chunk_bytes));
}

const TransferService::ChunkManifest* TransferService::manifest(
    const TransferRequest& request, const FileSpec& spec) const {
  auto src_it = endpoints_.find(request.src_endpoint);
  if (src_it == endpoints_.end()) return nullptr;
  auto obj = src_it->second.store->get(spec.src_path);
  if (!obj) return nullptr;
  auto wire = wire_size_for(request, *obj.value());
  if (!wire) return nullptr;
  auto it = manifests_.find(
      manifest_key_for(request, spec, obj.value()->crc64, wire.value()));
  return it == manifests_.end() ? nullptr : &it->second;
}

util::Json TransferService::export_manifests() const {
  util::Json out = util::Json::object();
  for (const auto& [key, m] : manifests_) {
    util::Json row = util::Json::object();
    row["wire_bytes"] = m.wire_bytes;
    row["chunk_bytes"] = m.chunk_bytes;
    // CRC-64 values ride as fixed-width hex: Json integers are signed, and a
    // high-bit CRC must round-trip bit-exactly.
    row["content_crc"] = util::format(
        "%016llx", static_cast<unsigned long long>(m.content_crc));
    row["source_created_ns"] = m.source_created.ns;
    util::Json crcs = util::Json::array();
    for (uint64_t c : m.chunk_crc) {
      crcs.push_back(
          util::format("%016llx", static_cast<unsigned long long>(c)));
    }
    row["chunk_crc"] = std::move(crcs);
    util::Json verified = util::Json::array();
    for (size_t i = 0; i < m.verified.size(); ++i) {
      verified.push_back(m.verified[i] ? 1 : 0);
    }
    row["verified"] = std::move(verified);
    out[key] = std::move(row);
  }
  return out;
}

size_t TransferService::import_manifests(const util::Json& doc) {
  if (!doc.is_object()) return 0;
  size_t added = 0;
  for (const auto& [key, row] : doc.as_object()) {
    if (manifests_.count(key)) continue;  // local knowledge wins
    if (!row.is_object()) continue;
    ChunkManifest m;
    m.wire_bytes = row.at("wire_bytes").as_int(0);
    m.chunk_bytes = row.at("chunk_bytes").as_int(0);
    m.content_crc = std::strtoull(
        row.at("content_crc").as_string("0").c_str(), nullptr, 16);
    m.source_created = sim::SimTime{row.at("source_created_ns").as_int(0)};
    for (const auto& c : row.at("chunk_crc").as_array()) {
      m.chunk_crc.push_back(
          std::strtoull(c.as_string("0").c_str(), nullptr, 16));
    }
    const auto& verified = row.at("verified").as_array();
    if (verified.size() != m.chunk_crc.size()) continue;  // malformed row
    for (const auto& v : verified) m.verified.push_back(v.as_int(0) != 0);
    // Claimed bits deliberately start clear: the exporter's in-flight flows
    // died with its site, so every unverified chunk is up for re-claim here.
    m.claimed.assign(m.verified.size(), false);
    manifests_.emplace(key, std::move(m));
    ++added;
  }
  if (added > 0 && telemetry_) {
    telemetry_->metrics
        .counter("transfer_manifests_imported_total",
                 "Chunk manifests adopted from a peer facility's export")
        .inc(static_cast<double>(added));
  }
  return added;
}

void TransferService::attach_manifest(ActiveTask& task, const FileSpec& spec,
                                      uint64_t content_crc,
                                      int64_t wire_bytes,
                                      sim::SimTime source_created) {
  const int64_t chunk_bytes = task.request.streaming_chunk_bytes;
  std::string key =
      manifest_key_for(task.request, spec, content_crc, wire_bytes);
  auto [mit, inserted] = manifests_.try_emplace(key);
  ChunkManifest& m = mit->second;
  if (!inserted && m.source_created != source_created) {
    // Same transfer identity, different source object: the path was
    // re-acquired mid-campaign. Every previously verified chunk belongs to
    // the old bytes, so the manifest restarts from scratch.
    m.verified.assign(m.verified.size(), false);
    m.claimed.assign(m.claimed.size(), false);
    task.resume_credited.erase(key);
    logger().info("manifest for %s invalidated: source re-acquired",
                  spec.src_path.c_str());
    if (telemetry_) {
      telemetry_->metrics
          .counter("transfer_manifests_invalidated_total",
                   "Chunk manifests reset because the source object changed "
                   "between attempts")
          .inc();
      telemetry_->tracer.event(
          task.span, "manifest-invalidated", engine_->now(),
          util::Json::object({{"file", spec.src_path}}));
    }
  }
  m.source_created = source_created;
  if (inserted) {
    m.wire_bytes = wire_bytes;
    m.chunk_bytes = chunk_bytes;
    m.content_crc = content_crc;
    int64_t count =
        chunk_bytes > 0 ? (wire_bytes + chunk_bytes - 1) / chunk_bytes : 0;
    m.chunk_crc.resize(static_cast<size_t>(count));
    m.verified.assign(static_cast<size_t>(count), false);
    m.claimed.assign(static_cast<size_t>(count), false);
    for (int64_t i = 0; i < count; ++i) {
      // The simulation derives each chunk's expected CRC-64 deterministically
      // from the file checksum, because size-only objects carry no bytes to
      // hash; a real deployment hashes the chunk payload. The property that
      // matters is the same either way: a damaged landing cannot reproduce
      // the manifest value.
      m.chunk_crc[static_cast<size_t>(i)] = util::crc64(util::format(
          "%016llx:%lld:%lld", static_cast<unsigned long long>(content_crc),
          static_cast<long long>(i), static_cast<long long>(m.chunk_size(i))));
    }
  }
  task.manifest_key = key;
  int64_t& credited = task.resume_credited[key];
  int64_t resumed = m.verified_count() - credited;
  credited = m.verified_count();
  if (resumed > 0) {
    task.info.chunks_resumed += resumed;
    task.chunk_wire_sent = m.verified_wire();
    if (telemetry_) {
      telemetry_->metrics
          .counter("transfer_chunks_resumed_total",
                   "Chunks skipped on retry because the manifest already "
                   "verified them")
          .inc(static_cast<double>(resumed));
      telemetry_->tracer.event(
          task.span, "chunk-resume", engine_->now(),
          util::Json::object({{"file", spec.src_path},
                              {"chunks", resumed},
                              {"wire_bytes_skipped", m.verified_wire()}}));
    }
    logger().debug("resuming %s from manifest: %lld/%lld chunks verified",
                   spec.src_path.c_str(), static_cast<long long>(resumed),
                   static_cast<long long>(m.chunk_count()));
  }
}

void TransferService::note_corruption(ActiveTask& task, const char* where,
                                      const FileSpec& spec) {
  ++task.info.corruption_detected;
  if (!telemetry_) return;
  telemetry_->metrics
      .counter("corruption_detected_total",
               "Integrity violations detected, by location",
               {{"where", where}})
      .inc();
  telemetry_->tracer.event(
      task.span, "corruption-detected", engine_->now(),
      util::Json::object({{"where", where}, {"file", spec.src_path}}));
  flight(task, util::LogLevel::Warn, "corruption-detected",
         util::Json::object({{"where", where}, {"file", spec.src_path}}));
}

void TransferService::flight(const ActiveTask& task, util::LogLevel level,
                             std::string name, util::Json attrs) {
  if (!telemetry_ || task.flight_subject.empty()) return;
  telemetry_->flight.record(task.flight_subject, level, "transfer",
                            std::move(name), engine_->now(),
                            std::move(attrs));
}

void TransferService::begin_next_file(const TaskId& id) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return;
  ActiveTask& task = it->second;
  if (!available_) {
    // Control-plane outage: park the task; set_available(true) resumes it.
    stalled_.push_back(id);
    if (telemetry_) {
      telemetry_->metrics
          .counter("transfer_stalls_total",
                   "Tasks parked by a control-plane outage")
          .inc();
      telemetry_->tracer.event(task.span, "stalled", engine_->now());
      flight(task, util::LogLevel::Warn, "transfer-stalled",
             util::Json::object({{"task", id}}));
    }
    logger().debug("%s stalled: service unavailable", id.c_str());
    return;
  }
  if (task.next_file >= task.request.files.size()) {
    // Data movement done: record the activity end now, then settle (checksum
    // verification + status sync) before SUCCEEDED becomes pollable.
    task.info.completed = engine_->now();
    double settle_s =
        config_.settle_base_s +
        config_.settle_per_gb_s * static_cast<double>(task.info.bytes_total) / 1e9;
    engine_->schedule_after(sim::Duration::from_seconds(settle_s),
                            [this, id] { settle(id); });
    return;
  }

  const FileSpec spec = task.request.files[task.next_file];
  const Endpoint& src = endpoints_.at(task.request.src_endpoint);
  const Endpoint& dst = endpoints_.at(task.request.dst_endpoint);

  auto obj = src.store->get(spec.src_path);
  if (!obj) {
    fail_task(id, obj.error().message);
    return;
  }
  auto wire = wire_size_for(task.request, *obj.value());
  if (!wire) {
    fail_task(id, wire.error().message);
    return;
  }
  int64_t wire_bytes = wire.value();
  uint64_t content_crc = obj.value()->crc64;
  sim::SimTime source_created = obj.value()->created;

  // Per-file bookkeeping delay, then the network flow(s).
  int64_t logical_bytes = obj.value()->size;
  engine_->schedule_after(
      sim::Duration::from_seconds(config_.per_file_overhead_s),
      [this, id, spec, wire_bytes, logical_bytes, content_crc,
       source_created] {
        auto it2 = tasks_.find(id);
        if (it2 == tasks_.end()) return;
        if (it2->second.request.streaming_chunk_bytes > 0) {
          // Chunked (cut-through) path: the file moves as consecutive chunk
          // flows. With verified_resume, a per-file manifest records each
          // verified chunk so a retry — or a replacement task for the same
          // file — resumes instead of restarting from the first chunk.
          ActiveTask& t = it2->second;
          t.current_file_bytes = logical_bytes;
          t.current_file_wire_bytes = wire_bytes;
          t.chunk_wire_sent = 0;
          t.current_chunk = -1;
          t.corrupt_streak = 0;
          if (config_.verified_resume) {
            attach_manifest(t, spec, content_crc, wire_bytes, source_created);
          } else {
            t.manifest_key.clear();
          }
          send_next_chunk(id, spec, wire_bytes, logical_bytes);
          return;
        }
        auto flow = network_->start_flow(
            endpoints_.at(it2->second.request.src_endpoint).node,
            endpoints_.at(it2->second.request.dst_endpoint).node, wire_bytes,
            [this, id, spec, wire_bytes](net::FlowId) {
              finish_file(id, spec, wire_bytes);
            },
            it2->second.effective_cap_bps);
        if (!flow) {
          fail_task(id, flow.error().message);
          return;
        }
        it2->second.current_flow = flow.value();
        it2->second.current_file_bytes = logical_bytes;
      });
  (void)dst;
}

void TransferService::send_next_chunk(const TaskId& id, const FileSpec& spec,
                                      int64_t wire_bytes,
                                      int64_t logical_bytes) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return;
  ActiveTask& task = it->second;
  ChunkManifest* m = nullptr;
  if (!task.manifest_key.empty()) {
    auto mit = manifests_.find(task.manifest_key);
    if (mit != manifests_.end()) m = &mit->second;
  }
  int64_t index = -1;
  int64_t chunk = 0;
  if (m) {
    // Pick the first unverified, unclaimed chunk. If every unverified chunk
    // is claimed by another task's in-flight flow, duplicate the first
    // unverified one rather than idling — bounded waste that keeps this task
    // from waiting on a flow it does not own (e.g. one stalled by a link
    // partition).
    int64_t first_unverified = -1;
    for (int64_t i = 0; i < m->chunk_count(); ++i) {
      if (m->verified[static_cast<size_t>(i)]) continue;
      if (first_unverified < 0) first_unverified = i;
      if (!m->claimed[static_cast<size_t>(i)]) {
        index = i;
        break;
      }
    }
    if (index < 0) index = first_unverified;
    if (index < 0) {
      // Every chunk verified: the file is fully landed.
      task.current_flow = 0;
      task.current_chunk = -1;
      finish_file(id, spec, 0);
      return;
    }
    chunk = m->chunk_size(index);
  } else {
    int64_t remaining = wire_bytes - task.chunk_wire_sent;
    if (remaining <= 0) {
      task.current_flow = 0;
      finish_file(id, spec, 0);
      return;
    }
    chunk = std::min(remaining, task.request.streaming_chunk_bytes);
    index = task.chunk_wire_sent /
            std::max<int64_t>(1, task.request.streaming_chunk_bytes);
  }
  auto flow = network_->start_flow(
      endpoints_.at(task.request.src_endpoint).node,
      endpoints_.at(task.request.dst_endpoint).node, chunk,
      [this, id, spec, wire_bytes, logical_bytes, chunk, index](net::FlowId) {
        auto it2 = tasks_.find(id);
        if (it2 == tasks_.end()) return;
        ActiveTask& t = it2->second;
        // A flow severed from its task (the task failed while this chunk
        // drained) must not resurrect it.
        if (t.info.state == TaskState::Failed) return;
        ChunkManifest* m2 = nullptr;
        if (!t.manifest_key.empty()) {
          auto mit2 = manifests_.find(t.manifest_key);
          if (mit2 != manifests_.end()) m2 = &mit2->second;
        }
        t.current_flow = 0;
        t.current_chunk = -1;
        // Every chunk that crossed the wire counts as moved bytes, corrupt
        // or duplicated or not — exactly the waste resume exists to bound.
        t.info.wire_bytes += chunk;
        const bool in_manifest = m2 && index < m2->chunk_count();
        if (in_manifest) m2->claimed[static_cast<size_t>(index)] = false;
        // CRC check at landing: a clean chunk reproduces the manifest CRC-64,
        // a wire bit-flip cannot.
        if (wire_corruption_prob_ > 0 && rng_.chance(wire_corruption_prob_)) {
          note_corruption(t, "wire", spec);
          ++t.corrupt_streak;
          if (t.corrupt_streak > config_.max_retries) {
            fail_task(id, "chunk " + util::format("%lld", static_cast<long long>(index)) +
                              " of " + spec.src_path +
                              " failed CRC verification " +
                              util::format("%d", t.corrupt_streak) +
                              " consecutive times");
            return;
          }
          // Immediate resend: selection re-picks the still-unverified chunk.
          send_next_chunk(id, spec, wire_bytes, logical_bytes);
          return;
        }
        t.corrupt_streak = 0;
        bool fresh = true;
        if (in_manifest) {
          fresh = !m2->verified[static_cast<size_t>(index)];
          m2->verified[static_cast<size_t>(index)] = true;
        }
        if (fresh) t.chunk_wire_sent += chunk;
        if (telemetry_) {
          telemetry_->metrics
              .counter("transfer_chunks_total",
                       "Streaming chunks landed across all chunked tasks")
              .inc();
        }
        if (t.progress_cb) {
          double frac = wire_bytes > 0 ? static_cast<double>(t.chunk_wire_sent) /
                                             static_cast<double>(wire_bytes)
                                       : 1.0;
          t.progress_cb(t.info.bytes_done +
                        static_cast<int64_t>(
                            frac * static_cast<double>(logical_bytes)));
        }
        send_next_chunk(id, spec, wire_bytes, logical_bytes);
      },
      task.effective_cap_bps);
  if (!flow) {
    // A chunked stream that cannot route (mid-transfer link partition) is a
    // transient wire fault: back off and retry the file. With a manifest the
    // retry resumes from the verified chunks, so the partition costs backoff
    // time, not resent bytes.
    ++task.info.faults;
    retry_file(id, spec, "no route: " + flow.error().message);
    return;
  }
  task.current_flow = flow.value();
  task.current_chunk = index;
  if (m) m->claimed[static_cast<size_t>(index)] = true;
}

void TransferService::finish_file(const TaskId& id, const FileSpec& spec,
                                  int64_t wire_delta) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return;
  ActiveTask& task = it->second;
  const bool chunked = task.request.streaming_chunk_bytes > 0;
  task.current_flow = 0;
  task.current_file_bytes = 0;
  task.current_file_wire_bytes = 0;
  task.chunk_wire_sent = 0;
  task.current_chunk = -1;
  task.corrupt_streak = 0;
  task.manifest_key.clear();

  // Wire bit-flip on a classic (single-flow) landing: the whole file arrived
  // with flipped bits and the destination CRC catches it, so the whole file
  // resends. Chunked tasks detect per chunk in send_next_chunk instead and
  // only resend the damaged chunk.
  if (!chunked && wire_corruption_prob_ > 0 &&
      rng_.chance(wire_corruption_prob_)) {
    note_corruption(task, "wire", spec);
    ++task.info.faults;
    retry_file(id, spec, "wire corruption");
    return;
  }

  // Fault injection: the file arrived corrupt / the stream broke. Retry the
  // whole file after a backoff, as Globus does. With verified_resume the
  // manifest survives, so the retry resends only unverified chunks.
  if (config_.fault_prob > 0 && rng_.chance(config_.fault_prob)) {
    ++task.info.faults;
    retry_file(id, spec, "injected fault");
    return;
  }

  const Endpoint& src = endpoints_.at(task.request.src_endpoint);
  const Endpoint& dst = endpoints_.at(task.request.dst_endpoint);
  auto obj = src.store->get(spec.src_path);
  if (!obj) {
    fail_task(id, obj.error().message);
    return;
  }

  // Deliver to the destination store. Real content rides along (and survives
  // a compression round-trip bit-exactly); virtual objects carry size + crc.
  // Either way the landing checksum is produced by the pass that lands the
  // bytes (crc64_copy, or the decode verify scan) instead of a second
  // land-then-scan traversal inside Store::put.
  util::Status put = util::Status::ok();
  if (obj.value()->has_content()) {
    const std::vector<uint8_t>& src_bytes = *obj.value()->content;
    std::vector<uint8_t> content;
    uint64_t landed_crc = 0;
    if (!task.request.codec.empty()) {
      const auto* codec =
          compress::CodecRegistry::standard().find(task.request.codec);
      auto round_trip = compress::decode_frame(
          compress::CodecRegistry::standard(),
          compress::encode_frame(*codec, src_bytes), &landed_crc);
      if (!round_trip) {
        fail_task(id, "codec round-trip failed: " + round_trip.error().message);
        return;
      }
      content = std::move(round_trip).value();
    } else {
      content.resize(src_bytes.size());
      landed_crc =
          util::crc64_copy(content.data(), src_bytes.data(), src_bytes.size());
    }
    put = dst.store->put_with_crc(spec.dst_path, std::move(content),
                                  landed_crc, engine_->now());
    if (put && telemetry_ != nullptr) {
      telemetry_->metrics
          .counter("transfer_crc_fused_total",
                   "Landings whose checksum was fused into the landing pass "
                   "(full re-scan traversals saved)")
          .inc();
    }
  } else {
    put = dst.store->put_virtual(spec.dst_path, obj.value()->size,
                                 obj.value()->crc64, engine_->now());
  }
  if (!put) {
    fail_task(id, put.error().message);
    return;
  }

  // Truncated-landing fault: some tail bytes never reach the media even
  // though the flow completed. The landing verification below catches it.
  if (truncation_prob_ > 0 && obj.value()->size > 0 &&
      rng_.chance(truncation_prob_)) {
    int64_t lost = std::max<int64_t>(1, obj.value()->size / 8);
    dst.store->truncate(spec.dst_path, obj.value()->size - lost);
  }

  // Integrity verification: the destination copy must both match the source
  // checksum and be intact on media (a truncated landing keeps the declared
  // checksum but cannot reproduce it from the stored bytes).
  auto delivered = dst.store->get(spec.dst_path);
  if (!delivered || delivered.value()->crc64 != obj.value()->crc64) {
    fail_task(id, "checksum mismatch after transfer of " + spec.src_path);
    return;
  }
  if (!delivered.value()->intact()) {
    note_corruption(task, "landing", spec);
    ++task.info.faults;
    retry_file(id, spec, "truncated landing");
    return;
  }

  // Record provenance so the storage scrubber can request a repair
  // re-transfer if this copy later rots at rest.
  provenance_[task.request.dst_endpoint + "|" + spec.dst_path] =
      Provenance{task.request.src_endpoint, spec.src_path, task.request.codec,
                 task.request.assumed_virtual_ratio,
                 task.request.streaming_chunk_bytes};

  task.info.bytes_done += obj.value()->size;
  task.info.wire_bytes += wire_delta;
  task.info.files_done += 1;
  task.next_file += 1;
  task.attempts_this_file = 0;
  begin_next_file(id);
}

bool TransferService::retry_file(const TaskId& id, const FileSpec& spec,
                                 const std::string& reason) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return false;
  ActiveTask& task = it->second;
  ++task.attempts_this_file;
  if (task.attempts_this_file > config_.max_retries) {
    fail_task(id, "file " + spec.src_path + " exceeded retry limit after " +
                      util::format("%d", task.attempts_this_file) +
                      " attempts (" + reason + ")");
    return false;
  }
  double backoff = std::min(
      config_.retry_backoff_cap_s,
      config_.retry_backoff_s *
          std::pow(2.0, static_cast<double>(task.attempts_this_file - 1)));
  backoff *= rng_.uniform(0.5, 1.5);
  if (telemetry_) {
    telemetry_->metrics
        .counter("transfer_retries_total",
                 "File re-transfers after a mid-flight fault or integrity "
                 "failure")
        .inc();
    telemetry_->tracer.event(task.span, "fault-retry", engine_->now(),
                             util::Json::object({
                                 {"file", spec.src_path},
                                 {"attempt", task.attempts_this_file},
                                 {"backoff_s", backoff},
                                 {"reason", reason},
                             }));
    flight(task, util::LogLevel::Warn, "transfer-retry",
           util::Json::object({{"file", spec.src_path},
                               {"attempt", task.attempts_this_file},
                               {"reason", reason}}));
  }
  logger().debug("%s: %s on %s (attempt %d), retrying in %.1fs", id.c_str(),
                 reason.c_str(), spec.src_path.c_str(),
                 task.attempts_this_file, backoff);
  engine_->schedule_after(sim::Duration::from_seconds(backoff),
                          [this, id] { begin_next_file(id); });
  return true;
}

void TransferService::fail_task(const TaskId& id, const std::string& error) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return;
  // Release any manifest claim held by the in-flight chunk, so sibling tasks
  // resuming the same file are not starved by a dead claim.
  if (!it->second.manifest_key.empty() && it->second.current_chunk >= 0) {
    auto mit = manifests_.find(it->second.manifest_key);
    if (mit != manifests_.end() &&
        it->second.current_chunk < mit->second.chunk_count()) {
      mit->second.claimed[static_cast<size_t>(it->second.current_chunk)] =
          false;
    }
  }
  it->second.info.state = TaskState::Failed;
  it->second.info.error = error;
  it->second.info.completed = engine_->now();
  logger().warn("%s failed: %s", id.c_str(), error.c_str());
  if (telemetry_) {
    telemetry_->tracer.close(it->second.span, "failed",
                             it->second.info.submitted, engine_->now(),
                             util::Json::object({{"error", error}}));
    it->second.span = 0;
    flight(it->second, util::LogLevel::Error, "transfer-failed",
           util::Json::object({{"task", id}, {"error", error}}));
    telemetry_->metrics
        .counter("transfer_tasks_total", "Transfer tasks by terminal state",
                 {{"state", "failed"}})
        .inc();
  } else if (trace_) {
    trace_->add(sim::Span{"transfer", "failed", id, it->second.info.submitted,
                          engine_->now(), util::Json::object({{"error", error}})});
  }
  if (it->second.settled_cb) it->second.settled_cb(it->second.info);
}

void TransferService::settle(const TaskId& id) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return;
  it->second.info.state = TaskState::Succeeded;
  // info.completed was stamped when the last byte landed (activity end).
  if (telemetry_) {
    const TaskInfo& info = it->second.info;
    telemetry_->tracer.close(
        it->second.span, "active", info.submitted, engine_->now(),
        util::Json::object({{"bytes", info.bytes_total},
                            {"wire_bytes", info.wire_bytes},
                            {"files", info.files_total}}));
    it->second.span = 0;
    telemetry_->metrics
        .counter("transfer_tasks_total", "Transfer tasks by terminal state",
                 {{"state", "succeeded"}})
        .inc();
    telemetry_->metrics
        .counter("transfer_bytes_total",
                 "Logical bytes delivered by settled transfer tasks")
        .inc(static_cast<double>(info.bytes_total));
    telemetry_->metrics
        .counter("transfer_wire_bytes_total",
                 "Bytes that crossed the network (after compression)")
        .inc(static_cast<double>(info.wire_bytes));
    telemetry_->metrics
        .histogram("transfer_task_bytes", "Logical bytes per settled task", {},
                   telemetry::FixedHistogram::byte_buckets())
        .observe(static_cast<double>(info.bytes_total));
  } else if (trace_) {
    trace_->add(sim::Span{
        "transfer", "active", id, it->second.info.submitted, engine_->now(),
        util::Json::object(
            {{"bytes", it->second.info.bytes_total},
             {"wire_bytes", it->second.info.wire_bytes},
             {"files", it->second.info.files_total}})});
  }
  logger().debug("%s succeeded (%lld bytes)", id.c_str(),
                 static_cast<long long>(it->second.info.bytes_total));
  if (it->second.settled_cb) it->second.settled_cb(it->second.info);
}

TaskInfo TransferService::status(const TaskId& id) const {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) {
    TaskInfo info;
    info.state = TaskState::Failed;
    info.error = "unknown task";
    return info;
  }
  TaskInfo info = it->second.info;
  // Live in-flight progress, as the real service exposes bytes_transferred
  // while a task runs (clients observe it changing between polls).
  if (it->second.current_flow != 0) {
    net::FlowStatus fs = network_->status(it->second.current_flow);
    if (it->second.request.streaming_chunk_bytes > 0) {
      // Chunked task: landed chunks plus the live chunk's in-flight bytes,
      // scaled from wire to logical size.
      double landed_wire =
          static_cast<double>(it->second.chunk_wire_sent) +
          (fs.active ? static_cast<double>(fs.transferred_bytes) : 0.0);
      if (it->second.current_file_wire_bytes > 0) {
        double frac =
            landed_wire /
            static_cast<double>(it->second.current_file_wire_bytes);
        info.bytes_done += static_cast<int64_t>(
            frac * static_cast<double>(it->second.current_file_bytes));
      }
    } else if (fs.active && fs.total_bytes > 0) {
      double frac = static_cast<double>(fs.transferred_bytes) /
                    static_cast<double>(fs.total_bytes);
      info.bytes_done += static_cast<int64_t>(
          frac * static_cast<double>(it->second.current_file_bytes));
    }
  }
  return info;
}

void TransferService::set_available(bool available) {
  if (available_ == available) return;
  available_ = available;
  logger().info("transfer service %s", available ? "restored" : "unavailable");
  if (!available_) return;
  std::vector<TaskId> resume;
  resume.swap(stalled_);
  for (const TaskId& id : resume) {
    engine_->schedule_after(sim::Duration::zero(),
                            [this, id] { begin_next_file(id); });
  }
}

bool TransferService::on_progress(const TaskId& id,
                                  std::function<void(int64_t)> cb) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return false;
  if (it->second.request.streaming_chunk_bytes <= 0) return false;
  it->second.progress_cb = std::move(cb);
  return true;
}

void TransferService::on_settled(const TaskId& id,
                                 std::function<void(const TaskInfo&)> cb) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return;
  if (it->second.info.state == TaskState::Succeeded ||
      it->second.info.state == TaskState::Failed) {
    cb(it->second.info);
  } else {
    it->second.settled_cb = std::move(cb);
  }
}

}  // namespace pico::transfer

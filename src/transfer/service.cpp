#include "transfer/service.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/log.hpp"
#include "util/strings.hpp"

namespace pico::transfer {
namespace {

util::Logger& logger() {
  static util::Logger kLogger("transfer");
  return kLogger;
}

}  // namespace

std::string task_state_name(TaskState s) {
  switch (s) {
    case TaskState::Pending: return "PENDING";
    case TaskState::Active: return "ACTIVE";
    case TaskState::Succeeded: return "SUCCEEDED";
    case TaskState::Failed: return "FAILED";
  }
  return "?";
}

TransferService::TransferService(sim::Engine* engine, net::Network* network,
                                 auth::AuthService* auth,
                                 TransferConfig config, uint64_t seed,
                                 sim::Trace* trace)
    : engine_(engine),
      network_(network),
      auth_(auth),
      config_(config),
      rng_(seed),
      trace_(trace) {}

void TransferService::register_endpoint(const std::string& name,
                                        net::NodeId node,
                                        storage::Store* store) {
  endpoints_[name] = Endpoint{node, store};
}

util::Result<TaskId> TransferService::submit(const TransferRequest& request,
                                             const auth::Token& token) {
  using R = util::Result<TaskId>;
  if (!available_) {
    return R::err("transfer service unavailable", "unavailable");
  }
  auto who = auth_->validate(token, "transfer");
  if (!who) return R::err(who.error());

  auto src_it = endpoints_.find(request.src_endpoint);
  if (src_it == endpoints_.end()) {
    return R::err("unknown source endpoint: " + request.src_endpoint,
                  "not_found");
  }
  auto dst_it = endpoints_.find(request.dst_endpoint);
  if (dst_it == endpoints_.end()) {
    return R::err("unknown destination endpoint: " + request.dst_endpoint,
                  "not_found");
  }
  if (request.files.empty()) return R::err("empty file list", "invalid");
  if (!request.codec.empty() &&
      !compress::CodecRegistry::standard().find(request.codec)) {
    return R::err("unknown codec: " + request.codec, "invalid");
  }

  // Validate every source object exists before accepting the task.
  int64_t total = 0;
  for (const auto& f : request.files) {
    auto obj = src_it->second.store->get(f.src_path);
    if (!obj) return R::err(obj.error());
    total += obj.value()->size;
  }

  TaskId id = util::format("xfer-%06llu", static_cast<unsigned long long>(next_task_++));
  ActiveTask task;
  task.request = request;
  task.info.state = TaskState::Pending;
  task.info.bytes_total = total;
  task.info.files_total = static_cast<int>(request.files.size());
  task.info.submitted = engine_->now();
  if (config_.per_flow_rate_cap_bps > 0) {
    task.effective_cap_bps =
        std::max(config_.per_flow_rate_cap_bps * 0.2,
                 rng_.normal(config_.per_flow_rate_cap_bps,
                             config_.per_flow_rate_cap_bps * config_.cap_jitter_frac));
  }
  if (telemetry_) {
    // Context parent: the flow attempt span scoped around provider->start().
    task.span = telemetry_->tracer.open("transfer", id);
    telemetry_->metrics
        .counter("transfer_tasks_total", "Transfer tasks by terminal state",
                 {{"state", "submitted"}})
        .inc();
  }
  tasks_[id] = std::move(task);

  // Task setup latency: auth handshake, endpoint activation, task routing.
  double setup = std::max(
      0.2, rng_.normal(config_.setup_mean_s, config_.setup_jitter_s));
  engine_->schedule_after(sim::Duration::from_seconds(setup), [this, id] {
    auto it = tasks_.find(id);
    if (it == tasks_.end()) return;
    it->second.info.state = TaskState::Active;
    it->second.info.started = engine_->now();
    begin_next_file(id);
  });
  logger().debug("submitted %s: %d files, %lld bytes", id.c_str(),
                 static_cast<int>(request.files.size()),
                 static_cast<long long>(total));
  return R::ok(id);
}

util::Result<int64_t> TransferService::wire_size_for(
    const TransferRequest& request, const storage::Object& obj) const {
  using R = util::Result<int64_t>;
  if (request.codec.empty()) return R::ok(obj.size);
  const auto* codec = compress::CodecRegistry::standard().find(request.codec);
  assert(codec);
  if (obj.has_content()) {
    compress::Bytes framed = compress::encode_frame(*codec, *obj.content);
    return R::ok(static_cast<int64_t>(framed.size()));
  }
  double ratio = std::max(1e-6, request.assumed_virtual_ratio);
  return R::ok(static_cast<int64_t>(static_cast<double>(obj.size) / ratio));
}

void TransferService::begin_next_file(const TaskId& id) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return;
  ActiveTask& task = it->second;
  if (!available_) {
    // Control-plane outage: park the task; set_available(true) resumes it.
    stalled_.push_back(id);
    if (telemetry_) {
      telemetry_->metrics
          .counter("transfer_stalls_total",
                   "Tasks parked by a control-plane outage")
          .inc();
      telemetry_->tracer.event(task.span, "stalled", engine_->now());
    }
    logger().debug("%s stalled: service unavailable", id.c_str());
    return;
  }
  if (task.next_file >= task.request.files.size()) {
    // Data movement done: record the activity end now, then settle (checksum
    // verification + status sync) before SUCCEEDED becomes pollable.
    task.info.completed = engine_->now();
    double settle_s =
        config_.settle_base_s +
        config_.settle_per_gb_s * static_cast<double>(task.info.bytes_total) / 1e9;
    engine_->schedule_after(sim::Duration::from_seconds(settle_s),
                            [this, id] { settle(id); });
    return;
  }

  const FileSpec spec = task.request.files[task.next_file];
  const Endpoint& src = endpoints_.at(task.request.src_endpoint);
  const Endpoint& dst = endpoints_.at(task.request.dst_endpoint);

  auto obj = src.store->get(spec.src_path);
  if (!obj) {
    fail_task(id, obj.error().message);
    return;
  }
  auto wire = wire_size_for(task.request, *obj.value());
  if (!wire) {
    fail_task(id, wire.error().message);
    return;
  }
  int64_t wire_bytes = wire.value();

  // Per-file bookkeeping delay, then the network flow(s).
  int64_t logical_bytes = obj.value()->size;
  engine_->schedule_after(
      sim::Duration::from_seconds(config_.per_file_overhead_s),
      [this, id, spec, wire_bytes, logical_bytes] {
        auto it2 = tasks_.find(id);
        if (it2 == tasks_.end()) return;
        if (it2->second.request.streaming_chunk_bytes > 0) {
          // Chunked (cut-through) path: the file moves as consecutive chunk
          // flows; a retry after a fault restarts it from the first chunk.
          it2->second.current_file_bytes = logical_bytes;
          it2->second.current_file_wire_bytes = wire_bytes;
          it2->second.chunk_wire_sent = 0;
          send_next_chunk(id, spec, wire_bytes, logical_bytes);
          return;
        }
        auto flow = network_->start_flow(
            endpoints_.at(it2->second.request.src_endpoint).node,
            endpoints_.at(it2->second.request.dst_endpoint).node, wire_bytes,
            [this, id, spec, wire_bytes](net::FlowId) {
              finish_file(id, spec, wire_bytes);
            },
            it2->second.effective_cap_bps);
        if (!flow) {
          fail_task(id, flow.error().message);
          return;
        }
        it2->second.current_flow = flow.value();
        it2->second.current_file_bytes = logical_bytes;
      });
  (void)dst;
}

void TransferService::send_next_chunk(const TaskId& id, const FileSpec& spec,
                                      int64_t wire_bytes,
                                      int64_t logical_bytes) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return;
  ActiveTask& task = it->second;
  int64_t remaining = wire_bytes - task.chunk_wire_sent;
  if (remaining <= 0) {
    task.current_flow = 0;
    finish_file(id, spec, wire_bytes);
    return;
  }
  int64_t chunk = std::min(remaining, task.request.streaming_chunk_bytes);
  auto flow = network_->start_flow(
      endpoints_.at(task.request.src_endpoint).node,
      endpoints_.at(task.request.dst_endpoint).node, chunk,
      [this, id, spec, wire_bytes, logical_bytes, chunk](net::FlowId) {
        auto it2 = tasks_.find(id);
        if (it2 == tasks_.end()) return;
        ActiveTask& t = it2->second;
        t.chunk_wire_sent += chunk;
        if (telemetry_) {
          telemetry_->metrics
              .counter("transfer_chunks_total",
                       "Streaming chunks landed across all chunked tasks")
              .inc();
        }
        if (t.progress_cb) {
          double frac = wire_bytes > 0 ? static_cast<double>(t.chunk_wire_sent) /
                                             static_cast<double>(wire_bytes)
                                       : 1.0;
          t.progress_cb(t.info.bytes_done +
                        static_cast<int64_t>(
                            frac * static_cast<double>(logical_bytes)));
        }
        send_next_chunk(id, spec, wire_bytes, logical_bytes);
      },
      task.effective_cap_bps);
  if (!flow) {
    fail_task(id, flow.error().message);
    return;
  }
  task.current_flow = flow.value();
}

void TransferService::finish_file(const TaskId& id, const FileSpec& spec,
                                  int64_t wire_bytes) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return;
  ActiveTask& task = it->second;
  task.current_flow = 0;
  task.current_file_bytes = 0;
  task.current_file_wire_bytes = 0;
  task.chunk_wire_sent = 0;

  // Fault injection: the file arrived corrupt / the stream broke. Retry the
  // whole file after a backoff, as Globus does.
  if (config_.fault_prob > 0 && rng_.chance(config_.fault_prob)) {
    ++task.info.faults;
    ++task.attempts_this_file;
    if (task.attempts_this_file > config_.max_retries) {
      fail_task(id, "file " + spec.src_path + " exceeded retry limit after " +
                        util::format("%d", task.attempts_this_file) +
                        " attempts");
      return;
    }
    double backoff = std::min(
        config_.retry_backoff_cap_s,
        config_.retry_backoff_s *
            std::pow(2.0, static_cast<double>(task.attempts_this_file - 1)));
    backoff *= rng_.uniform(0.5, 1.5);
    if (telemetry_) {
      telemetry_->metrics
          .counter("transfer_retries_total",
                   "File re-transfers after an injected mid-flight fault")
          .inc();
      telemetry_->tracer.event(task.span, "fault-retry", engine_->now(),
                               util::Json::object({
                                   {"file", spec.src_path},
                                   {"attempt", task.attempts_this_file},
                                   {"backoff_s", backoff},
                               }));
    }
    logger().debug("%s: fault on %s (attempt %d), retrying in %.1fs",
                   id.c_str(), spec.src_path.c_str(), task.attempts_this_file,
                   backoff);
    engine_->schedule_after(sim::Duration::from_seconds(backoff),
                            [this, id] { begin_next_file(id); });
    return;
  }

  const Endpoint& src = endpoints_.at(task.request.src_endpoint);
  const Endpoint& dst = endpoints_.at(task.request.dst_endpoint);
  auto obj = src.store->get(spec.src_path);
  if (!obj) {
    fail_task(id, obj.error().message);
    return;
  }

  // Deliver to the destination store. Real content rides along (and survives
  // a compression round-trip bit-exactly); virtual objects carry size + crc.
  util::Status put = util::Status::ok();
  if (obj.value()->has_content()) {
    std::vector<uint8_t> content = *obj.value()->content;
    if (!task.request.codec.empty()) {
      const auto* codec =
          compress::CodecRegistry::standard().find(task.request.codec);
      auto round_trip = compress::decode_frame(
          compress::CodecRegistry::standard(),
          compress::encode_frame(*codec, content));
      if (!round_trip) {
        fail_task(id, "codec round-trip failed: " + round_trip.error().message);
        return;
      }
      content = std::move(round_trip).value();
    }
    put = dst.store->put(spec.dst_path, std::move(content), engine_->now());
  } else {
    put = dst.store->put_virtual(spec.dst_path, obj.value()->size,
                                 obj.value()->crc64, engine_->now());
  }
  if (!put) {
    fail_task(id, put.error().message);
    return;
  }

  // Integrity verification: destination checksum must match the source.
  auto delivered = dst.store->get(spec.dst_path);
  if (!delivered || delivered.value()->crc64 != obj.value()->crc64) {
    fail_task(id, "checksum mismatch after transfer of " + spec.src_path);
    return;
  }

  task.info.bytes_done += obj.value()->size;
  task.info.wire_bytes += wire_bytes;
  task.info.files_done += 1;
  task.next_file += 1;
  task.attempts_this_file = 0;
  begin_next_file(id);
}

void TransferService::fail_task(const TaskId& id, const std::string& error) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return;
  it->second.info.state = TaskState::Failed;
  it->second.info.error = error;
  it->second.info.completed = engine_->now();
  logger().warn("%s failed: %s", id.c_str(), error.c_str());
  if (telemetry_) {
    telemetry_->tracer.close(it->second.span, "failed",
                             it->second.info.submitted, engine_->now(),
                             util::Json::object({{"error", error}}));
    it->second.span = 0;
    telemetry_->metrics
        .counter("transfer_tasks_total", "Transfer tasks by terminal state",
                 {{"state", "failed"}})
        .inc();
  } else if (trace_) {
    trace_->add(sim::Span{"transfer", "failed", id, it->second.info.submitted,
                          engine_->now(), util::Json::object({{"error", error}})});
  }
  if (it->second.settled_cb) it->second.settled_cb(it->second.info);
}

void TransferService::settle(const TaskId& id) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return;
  it->second.info.state = TaskState::Succeeded;
  // info.completed was stamped when the last byte landed (activity end).
  if (telemetry_) {
    const TaskInfo& info = it->second.info;
    telemetry_->tracer.close(
        it->second.span, "active", info.submitted, engine_->now(),
        util::Json::object({{"bytes", info.bytes_total},
                            {"wire_bytes", info.wire_bytes},
                            {"files", info.files_total}}));
    it->second.span = 0;
    telemetry_->metrics
        .counter("transfer_tasks_total", "Transfer tasks by terminal state",
                 {{"state", "succeeded"}})
        .inc();
    telemetry_->metrics
        .counter("transfer_bytes_total",
                 "Logical bytes delivered by settled transfer tasks")
        .inc(static_cast<double>(info.bytes_total));
    telemetry_->metrics
        .counter("transfer_wire_bytes_total",
                 "Bytes that crossed the network (after compression)")
        .inc(static_cast<double>(info.wire_bytes));
    telemetry_->metrics
        .histogram("transfer_task_bytes", "Logical bytes per settled task", {},
                   telemetry::FixedHistogram::byte_buckets())
        .observe(static_cast<double>(info.bytes_total));
  } else if (trace_) {
    trace_->add(sim::Span{
        "transfer", "active", id, it->second.info.submitted, engine_->now(),
        util::Json::object(
            {{"bytes", it->second.info.bytes_total},
             {"wire_bytes", it->second.info.wire_bytes},
             {"files", it->second.info.files_total}})});
  }
  logger().debug("%s succeeded (%lld bytes)", id.c_str(),
                 static_cast<long long>(it->second.info.bytes_total));
  if (it->second.settled_cb) it->second.settled_cb(it->second.info);
}

TaskInfo TransferService::status(const TaskId& id) const {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) {
    TaskInfo info;
    info.state = TaskState::Failed;
    info.error = "unknown task";
    return info;
  }
  TaskInfo info = it->second.info;
  // Live in-flight progress, as the real service exposes bytes_transferred
  // while a task runs (clients observe it changing between polls).
  if (it->second.current_flow != 0) {
    net::FlowStatus fs = network_->status(it->second.current_flow);
    if (it->second.request.streaming_chunk_bytes > 0) {
      // Chunked task: landed chunks plus the live chunk's in-flight bytes,
      // scaled from wire to logical size.
      double landed_wire =
          static_cast<double>(it->second.chunk_wire_sent) +
          (fs.active ? static_cast<double>(fs.transferred_bytes) : 0.0);
      if (it->second.current_file_wire_bytes > 0) {
        double frac =
            landed_wire /
            static_cast<double>(it->second.current_file_wire_bytes);
        info.bytes_done += static_cast<int64_t>(
            frac * static_cast<double>(it->second.current_file_bytes));
      }
    } else if (fs.active && fs.total_bytes > 0) {
      double frac = static_cast<double>(fs.transferred_bytes) /
                    static_cast<double>(fs.total_bytes);
      info.bytes_done += static_cast<int64_t>(
          frac * static_cast<double>(it->second.current_file_bytes));
    }
  }
  return info;
}

void TransferService::set_available(bool available) {
  if (available_ == available) return;
  available_ = available;
  logger().info("transfer service %s", available ? "restored" : "unavailable");
  if (!available_) return;
  std::vector<TaskId> resume;
  resume.swap(stalled_);
  for (const TaskId& id : resume) {
    engine_->schedule_after(sim::Duration::zero(),
                            [this, id] { begin_next_file(id); });
  }
}

bool TransferService::on_progress(const TaskId& id,
                                  std::function<void(int64_t)> cb) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return false;
  if (it->second.request.streaming_chunk_bytes <= 0) return false;
  it->second.progress_cb = std::move(cb);
  return true;
}

void TransferService::on_settled(const TaskId& id,
                                 std::function<void(const TaskInfo&)> cb) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return;
  if (it->second.info.state == TaskState::Succeeded ||
      it->second.info.state == TaskState::Failed) {
    cb(it->second.info);
  } else {
    it->second.settled_cb = std::move(cb);
  }
}

}  // namespace pico::transfer

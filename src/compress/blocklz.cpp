#include "compress/codec.hpp"

#include <algorithm>

#include "util/bytes.hpp"
#include "util/threadpool.hpp"

namespace pico::compress {
namespace {

/// Private registry holding just the inner "lz" codec, so block frames reuse
/// the standard stream-framing container (magic, codec name, original size,
/// CRC-64) without touching the global registry during its construction.
const CodecRegistry& inner_registry() {
  static const CodecRegistry* kRegistry = [] {
    auto* r = new CodecRegistry();
    r->add(std::make_unique<LzCodec>());
    return r;
  }();
  return *kRegistry;
}

}  // namespace

Bytes BlockLzCodec::compress(ByteView input) const {
  // Stream layout: varint(block_size) varint(nblocks), then per block
  // varint(frame_len) + frame. Block boundaries are a pure function of
  // (input size, block_size): output bytes are identical for any pool width.
  const size_t nblocks =
      input.empty() ? 0 : (input.size() + block_size_ - 1) / block_size_;
  LzCodec lz;
  std::vector<Bytes> frames(nblocks);
  auto compress_block = [&](size_t b) {
    size_t begin = b * block_size_;
    size_t end = std::min(input.size(), begin + block_size_);
    // Zero-copy: the block is framed straight out of the caller's buffer.
    frames[b] = encode_frame(lz, input.subspan(begin, end - begin));
  };
  util::ThreadPool& pool = pool_ ? *pool_ : util::shared_pool();
  pool.parallel_for(nblocks, compress_block);

  Bytes out;
  util::ByteWriter w(&out);
  w.varint(block_size_);
  w.varint(nblocks);
  for (const Bytes& f : frames) {
    w.varint(f.size());
    w.bytes(f.data(), f.size());
  }
  return out;
}

util::Result<Bytes> BlockLzCodec::decompress(const Bytes& input) const {
  using R = util::Result<Bytes>;
  util::ByteReader r(input);
  uint64_t block_size = 0, nblocks = 0;
  if (!r.varint(&block_size) || !r.varint(&nblocks)) {
    return R::err("lz-par truncated header", "corrupt");
  }
  if (block_size == 0 || block_size > (64ull << 20)) {
    return R::err("lz-par block size out of range", "corrupt");
  }
  if (nblocks > (1ull << 32)) {
    return R::err("lz-par block count absurd", "corrupt");
  }

  // Slice out the frames sequentially (cheap), then decode them in parallel;
  // every block but the last must decode to exactly block_size bytes, so
  // output offsets are known up front.
  std::vector<std::pair<const uint8_t*, size_t>> frames;
  frames.reserve(static_cast<size_t>(nblocks));
  for (uint64_t b = 0; b < nblocks; ++b) {
    uint64_t frame_len = 0;
    if (!r.varint(&frame_len)) return R::err("lz-par truncated frame length", "corrupt");
    const uint8_t* p = nullptr;
    if (!r.view(&p, frame_len)) return R::err("lz-par frame overruns input", "corrupt");
    frames.emplace_back(p, static_cast<size_t>(frame_len));
  }
  if (!r.exhausted()) return R::err("lz-par trailing bytes", "corrupt");

  std::vector<Bytes> blocks(frames.size());
  std::vector<std::string> errors(frames.size());
  auto decode_block = [&](size_t b) {
    auto decoded = decode_frame_view(inner_registry(),
                                     ByteView(frames[b].first, frames[b].second));
    if (!decoded) {
      errors[b] = decoded.error().message;
      return;
    }
    blocks[b] = std::move(decoded.value());
  };
  util::ThreadPool& pool = pool_ ? *pool_ : util::shared_pool();
  pool.parallel_for(blocks.size(), decode_block);

  Bytes out;
  for (size_t b = 0; b < blocks.size(); ++b) {
    if (!errors[b].empty()) {
      return R::err("lz-par block " + std::to_string(b) + ": " + errors[b],
                    "corrupt");
    }
    bool last = b + 1 == blocks.size();
    if (!last && blocks[b].size() != block_size) {
      return R::err("lz-par interior block has wrong size", "corrupt");
    }
    if (last && (blocks[b].empty() || blocks[b].size() > block_size)) {
      return R::err("lz-par final block has wrong size", "corrupt");
    }
    out.insert(out.end(), blocks[b].begin(), blocks[b].end());
  }
  return R::ok(std::move(out));
}

}  // namespace pico::compress

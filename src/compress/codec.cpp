#include "compress/codec.hpp"

#include <cstring>

#include "util/bytes.hpp"
#include "util/crc64.hpp"

namespace pico::compress {

namespace {
constexpr char kFrameMagic[4] = {'P', 'C', 'Z', '1'};
}

const CodecRegistry& CodecRegistry::standard() {
  static const CodecRegistry* kRegistry = [] {
    auto* r = new CodecRegistry();
    r->add(std::make_unique<NullCodec>());
    r->add(std::make_unique<RleCodec>());
    r->add(std::make_unique<DeltaCodec>());
    r->add(std::make_unique<LzCodec>());
    r->add(std::make_unique<ShuffleLzCodec>());
    r->add(std::make_unique<BlockLzCodec>());
    return r;
  }();
  return *kRegistry;
}

const Codec* CodecRegistry::find(const std::string& name) const {
  for (const auto& c : codecs_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

std::vector<std::string> CodecRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(codecs_.size());
  for (const auto& c : codecs_) out.push_back(c->name());
  return out;
}

void CodecRegistry::add(std::unique_ptr<Codec> codec) {
  codecs_.push_back(std::move(codec));
}

Bytes encode_frame(const Codec& codec, ByteView input) {
  Bytes body = codec.compress(input);
  Bytes out;
  out.reserve(body.size() + 32);
  util::ByteWriter w(&out);
  w.bytes(kFrameMagic, 4);
  w.str(codec.name());
  w.varint(input.size());
  w.u64(util::crc64(input.data(), input.size()));
  w.varint(body.size());
  w.bytes(body.data(), body.size());
  return out;
}

util::Result<Bytes> decode_frame(const CodecRegistry& registry,
                                 const Bytes& frame, uint64_t* crc_out) {
  return decode_frame_view(registry, ByteView(frame), crc_out);
}

util::Result<Bytes> decode_frame_view(const CodecRegistry& registry,
                                      ByteView frame, uint64_t* crc_out) {
  using R = util::Result<Bytes>;
  util::ByteReader r(frame.data(), frame.size());
  const uint8_t* magic = nullptr;
  if (!r.view(&magic, 4) || std::memcmp(magic, kFrameMagic, 4) != 0) {
    return R::err("bad compression frame magic", "parse");
  }
  std::string codec_name;
  uint64_t original_size = 0, body_size = 0, crc = 0;
  if (!r.str(&codec_name) || !r.varint(&original_size) || !r.u64(&crc) ||
      !r.varint(&body_size)) {
    return R::err("truncated compression frame header", "parse");
  }
  const Codec* codec = registry.find(codec_name);
  if (!codec) return R::err("unknown codec: " + codec_name, "not_found");
  Bytes body;
  if (!r.bytes(&body, body_size)) {
    return R::err("truncated compression frame body", "parse");
  }
  auto decoded = codec->decompress(body);
  if (!decoded) return decoded;
  if (decoded.value().size() != original_size) {
    return R::err("decompressed size mismatch", "corrupt");
  }
  if (util::crc64(decoded.value()) != crc) {
    return R::err("decompressed CRC mismatch", "corrupt");
  }
  if (crc_out != nullptr) *crc_out = crc;
  return decoded;
}

}  // namespace pico::compress

#pragma once
// Compression codecs. The paper lists "data compression algorithms" as future
// work to relieve the transfer bottleneck; the A3 ablation bench uses these
// codecs on real EMD payloads to quantify the trade. Frames are
// self-describing (codec name, original size, CRC-64), so a transfer can
// negotiate per-file compression and verify integrity after decode.
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/result.hpp"

namespace pico::util {
class ThreadPool;
}

namespace pico::compress {

using Bytes = std::vector<uint8_t>;
/// Non-owning input view: codecs compress straight out of mapped files,
/// store objects, or arena buffers without staging a Bytes copy first.
/// A Bytes lvalue converts implicitly.
using ByteView = std::span<const uint8_t>;

/// Stateless codec interface. Implementations must be inverse pairs:
/// decompress(compress(x)) == x for every byte string x.
class Codec {
 public:
  virtual ~Codec() = default;
  virtual std::string name() const = 0;
  virtual Bytes compress(ByteView input) const = 0;
  /// Fails on malformed streams (fuzz-safe: never reads out of bounds).
  virtual util::Result<Bytes> decompress(const Bytes& input) const = 0;
};

/// Identity codec (baseline for the ablation).
class NullCodec final : public Codec {
 public:
  std::string name() const override { return "null"; }
  Bytes compress(ByteView input) const override {
    return Bytes(input.begin(), input.end());
  }
  util::Result<Bytes> decompress(const Bytes& input) const override {
    return util::Result<Bytes>::ok(input);
  }
};

/// Byte-level run-length encoding; wins on sparse detector frames.
class RleCodec final : public Codec {
 public:
  std::string name() const override { return "rle"; }
  Bytes compress(ByteView input) const override;
  util::Result<Bytes> decompress(const Bytes& input) const override;
};

/// Per-byte delta + RLE of the deltas; wins on smooth image rows.
class DeltaCodec final : public Codec {
 public:
  std::string name() const override { return "delta"; }
  Bytes compress(ByteView input) const override;
  util::Result<Bytes> decompress(const Bytes& input) const override;
};

/// LZ77 with a 64 KiB window and hash-chain matching ("lz-lite").
class LzCodec final : public Codec {
 public:
  std::string name() const override { return "lz"; }
  Bytes compress(ByteView input) const override;
  util::Result<Bytes> decompress(const Bytes& input) const override;
};

/// Byte-shuffle (HDF5-style filter for f64 words) + LZ: the right codec for
/// the floating-point detector counts EMD files carry.
class ShuffleLzCodec final : public Codec {
 public:
  std::string name() const override { return "shuffle-lz"; }
  Bytes compress(ByteView input) const override;
  util::Result<Bytes> decompress(const Bytes& input) const override;
};

/// Block-parallel LZ ("lz-par"): the input is split into fixed-size blocks,
/// each compressed independently (and concurrently, on the shared data-plane
/// pool) and carried as a standard self-describing "lz" frame inside the
/// stream. Block boundaries depend only on the input size, so the output is
/// byte-identical for any pool width. Blocks cost a little ratio (no
/// cross-block matches) and buy node-level compression throughput — the
/// trade the paper's future-work compression needs for the 65 GB/s detector.
class BlockLzCodec final : public Codec {
 public:
  /// pool == nullptr compresses blocks on the shared data-plane pool.
  explicit BlockLzCodec(size_t block_size = kDefaultBlockSize,
                        util::ThreadPool* pool = nullptr)
      : block_size_(block_size == 0 ? kDefaultBlockSize : block_size),
        pool_(pool) {}

  static constexpr size_t kDefaultBlockSize = 256 * 1024;

  std::string name() const override { return "lz-par"; }
  Bytes compress(ByteView input) const override;
  util::Result<Bytes> decompress(const Bytes& input) const override;

 private:
  size_t block_size_;
  util::ThreadPool* pool_;
};

/// Registry of known codecs by name.
class CodecRegistry {
 public:
  /// The default registry with null/rle/delta/lz registered.
  static const CodecRegistry& standard();

  const Codec* find(const std::string& name) const;
  std::vector<std::string> names() const;

  void add(std::unique_ptr<Codec> codec);

 private:
  std::vector<std::unique_ptr<Codec>> codecs_;
};

/// Self-describing frame: "PCZ1" | codec name | original size | crc64 | body.
/// Reads the input exactly once: the frame checksum is computed by the same
/// pass that frames the body.
Bytes encode_frame(const Codec& codec, ByteView input);

/// Decode a frame, looking up the codec in `registry`; validates size + CRC.
/// When `crc_out` is non-null it receives the verified payload checksum, so
/// callers landing the result can skip their own scan (fused-CRC contract).
util::Result<Bytes> decode_frame(const CodecRegistry& registry,
                                 const Bytes& frame,
                                 uint64_t* crc_out = nullptr);

/// decode_frame over a non-owning view (e.g. a slice of a block stream).
util::Result<Bytes> decode_frame_view(const CodecRegistry& registry,
                                      ByteView frame,
                                      uint64_t* crc_out = nullptr);

/// Convenience stats for benches.
struct CompressionStats {
  std::string codec;
  size_t input_bytes = 0;
  size_t output_bytes = 0;
  double ratio() const {
    return output_bytes == 0 ? 0.0
                             : static_cast<double>(input_bytes) /
                                   static_cast<double>(output_bytes);
  }
};

}  // namespace pico::compress

#include "compress/codec.hpp"

#include "util/arena.hpp"
#include "util/bytes.hpp"

namespace pico::compress {

// Byte-shuffle preconditioning + LZ. Scientific floats (f64 detector counts)
// have highly redundant exponent/high-mantissa bytes; transposing the stream
// so byte k of every 8-byte word is contiguous turns that redundancy into
// long runs the LZ stage collapses. This is the "shuffle" filter HDF5
// deploys in front of its compressors — exactly the data the paper's EMD
// files carry.
//
// Stream layout: varint original_size | varint stride | LZ(transposed).
Bytes ShuffleLzCodec::compress(ByteView input) const {
  const size_t stride = 8;  // f64-oriented; stride survives in the header
  const size_t n = input.size();
  const size_t words = n / stride;

  // Arena scratch: the transpose buffer is pure staging, so it comes from a
  // per-thread bump arena instead of a zero-initialized heap vector — the
  // slab is reused across calls and never hits malloc in steady state.
  static thread_local util::Arena scratch_arena;
  scratch_arena.reset();
  std::span<uint8_t> transposed = scratch_arena.allocate_span(n);
  // Full words transpose; the tail (n % stride bytes) is appended raw.
  for (size_t w = 0; w < words; ++w) {
    for (size_t k = 0; k < stride; ++k) {
      transposed[k * words + w] = input[w * stride + k];
    }
  }
  std::copy(input.begin() + static_cast<ptrdiff_t>(words * stride), input.end(),
            transposed.begin() + static_cast<ptrdiff_t>(words * stride));

  Bytes packed = LzCodec{}.compress(ByteView(transposed));
  Bytes out;
  util::ByteWriter writer(&out);
  writer.varint(n);
  writer.varint(stride);
  writer.bytes(packed.data(), packed.size());
  return out;
}

util::Result<Bytes> ShuffleLzCodec::decompress(const Bytes& input) const {
  using R = util::Result<Bytes>;
  util::ByteReader reader(input);
  uint64_t n = 0, stride = 0;
  if (!reader.varint(&n) || !reader.varint(&stride)) {
    return R::err("shuffle: truncated header", "corrupt");
  }
  if (stride == 0 || stride > 64) {
    return R::err("shuffle: implausible stride", "corrupt");
  }
  Bytes packed;
  if (!reader.bytes(&packed, reader.remaining())) {
    return R::err("shuffle: truncated body", "corrupt");
  }
  auto transposed = LzCodec{}.decompress(packed);
  if (!transposed) return transposed;
  if (transposed.value().size() != n) {
    return R::err("shuffle: size mismatch after LZ", "corrupt");
  }

  const Bytes& t = transposed.value();
  Bytes out(n);
  const size_t words = n / stride;
  for (size_t w = 0; w < words; ++w) {
    for (size_t k = 0; k < stride; ++k) {
      out[w * stride + k] = t[k * words + w];
    }
  }
  std::copy(t.begin() + static_cast<ptrdiff_t>(words * stride), t.end(),
            out.begin() + static_cast<ptrdiff_t>(words * stride));
  return R::ok(std::move(out));
}

}  // namespace pico::compress

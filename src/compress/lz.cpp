#include "compress/codec.hpp"

#include <array>

#include "util/bytes.hpp"

namespace pico::compress {
namespace {

// LZ77 with a 64 KiB window. Token stream:
//   0x00 len  <len+1 literal bytes>            (len 0..254 -> 1..255 bytes)
//   0x01 dist(varint) len(varint)              (match: copy len from dist back)
// Matching uses a 3-byte hash chained through a head/prev table (greedy, with
// a bounded chain walk). ~gzip-class behaviour without the bit packing.
constexpr size_t kWindow = 64 * 1024;
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxChain = 64;
constexpr size_t kHashBits = 15;
constexpr size_t kHashSize = 1u << kHashBits;

inline uint32_t hash3(const uint8_t* p) {
  uint32_t v = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
               (static_cast<uint32_t>(p[2]) << 16);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void flush_literals(Bytes& out, ByteView input, size_t start, size_t end) {
  while (start < end) {
    size_t n = std::min<size_t>(end - start, 255);
    out.push_back(0x00);
    out.push_back(static_cast<uint8_t>(n - 1));
    out.insert(out.end(), input.data() + start, input.data() + start + n);
    start += n;
  }
}

}  // namespace

Bytes LzCodec::compress(ByteView input) const {
  Bytes out;
  out.reserve(input.size() / 2 + 16);
  const size_t n = input.size();
  if (n < kMinMatch) {
    flush_literals(out, input, 0, n);
    return out;
  }

  std::vector<int64_t> head(kHashSize, -1);
  std::vector<int64_t> prev(n, -1);

  size_t lit_start = 0;
  size_t i = 0;
  while (i + kMinMatch <= n) {
    uint32_t h = hash3(&input[i]);
    int64_t candidate = head[h];
    size_t best_len = 0;
    size_t best_dist = 0;
    size_t chain = 0;
    while (candidate >= 0 && chain < kMaxChain) {
      size_t dist = i - static_cast<size_t>(candidate);
      if (dist > kWindow) break;
      size_t len = 0;
      size_t max_len = n - i;
      const uint8_t* a = &input[static_cast<size_t>(candidate)];
      const uint8_t* b = &input[i];
      while (len < max_len && a[len] == b[len]) ++len;
      if (len > best_len) {
        best_len = len;
        best_dist = dist;
      }
      candidate = prev[static_cast<size_t>(candidate)];
      ++chain;
    }

    if (best_len >= kMinMatch) {
      flush_literals(out, input, lit_start, i);
      out.push_back(0x01);
      util::ByteWriter w(&out);
      w.varint(best_dist);
      w.varint(best_len);
      // Insert hash entries for every position the match covers so later
      // matches can anchor inside it.
      size_t stop = std::min(i + best_len, n - kMinMatch + 1);
      for (size_t j = i; j < stop; ++j) {
        uint32_t hj = hash3(&input[j]);
        prev[j] = head[hj];
        head[hj] = static_cast<int64_t>(j);
      }
      i += best_len;
      lit_start = i;
    } else {
      prev[i] = head[h];
      head[h] = static_cast<int64_t>(i);
      ++i;
    }
  }
  flush_literals(out, input, lit_start, n);
  return out;
}

util::Result<Bytes> LzCodec::decompress(const Bytes& input) const {
  using R = util::Result<Bytes>;
  Bytes out;
  util::ByteReader r(input);
  while (!r.exhausted()) {
    uint8_t tag = 0;
    if (!r.u8(&tag)) return R::err("LZ truncated tag", "corrupt");
    if (tag == 0x00) {
      uint8_t len_m1 = 0;
      if (!r.u8(&len_m1)) return R::err("LZ truncated literal length", "corrupt");
      size_t len = static_cast<size_t>(len_m1) + 1;
      const uint8_t* p = nullptr;
      if (!r.view(&p, len)) return R::err("LZ literal overruns input", "corrupt");
      out.insert(out.end(), p, p + len);
    } else if (tag == 0x01) {
      uint64_t dist = 0, len = 0;
      if (!r.varint(&dist) || !r.varint(&len)) {
        return R::err("LZ truncated match", "corrupt");
      }
      if (dist == 0 || dist > out.size()) {
        return R::err("LZ match distance out of range", "corrupt");
      }
      if (len > (1ull << 32)) return R::err("LZ match length absurd", "corrupt");
      size_t src = out.size() - dist;
      // Byte-by-byte copy: matches may overlap their own output.
      for (uint64_t k = 0; k < len; ++k) out.push_back(out[src + k]);
    } else {
      return R::err("LZ unknown tag", "corrupt");
    }
  }
  return R::ok(std::move(out));
}

}  // namespace pico::compress

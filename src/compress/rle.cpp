#include "compress/codec.hpp"

namespace pico::compress {

// Format: sequence of (control, payload) records.
//   control 0x00..0x7F: literal run of (control+1) bytes follows
//   control 0x80..0xFF: repeat next byte (control-0x7F+1) times, i.e. runs of
//                       2..129 identical bytes
Bytes RleCodec::compress(ByteView input) const {
  Bytes out;
  out.reserve(input.size() / 2 + 16);
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    // Measure the run starting at i (cap 129: control byte is 0x7F + run-1).
    size_t run = 1;
    while (i + run < n && input[i + run] == input[i] && run < 129) ++run;
    if (run >= 2) {
      out.push_back(static_cast<uint8_t>(0x7F + run - 1));
      out.push_back(input[i]);
      i += run;
      continue;
    }
    // Collect a literal stretch until the next run of >= 3 (short runs of 2
    // are cheaper as literals than breaking the literal record).
    size_t lit_start = i;
    while (i < n && (i - lit_start) < 128) {
      size_t r = 1;
      while (i + r < n && input[i + r] == input[i] && r < 3) ++r;
      if (r >= 3) break;
      ++i;
    }
    size_t lit_len = i - lit_start;
    if (lit_len == 0) {  // ended exactly on a run boundary
      continue;
    }
    out.push_back(static_cast<uint8_t>(lit_len - 1));
    out.insert(out.end(), input.data() + lit_start, input.data() + i);
  }
  return out;
}

util::Result<Bytes> RleCodec::decompress(const Bytes& input) const {
  using R = util::Result<Bytes>;
  Bytes out;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    uint8_t control = input[i++];
    if (control < 0x80) {
      size_t lit_len = static_cast<size_t>(control) + 1;
      if (i + lit_len > n) return R::err("RLE literal overruns input", "corrupt");
      out.insert(out.end(), input.begin() + static_cast<ptrdiff_t>(i),
                 input.begin() + static_cast<ptrdiff_t>(i + lit_len));
      i += lit_len;
    } else {
      if (i >= n) return R::err("RLE run missing byte", "corrupt");
      size_t run = static_cast<size_t>(control) - 0x7F + 1;
      out.insert(out.end(), run, input[i++]);
    }
  }
  return R::ok(std::move(out));
}

}  // namespace pico::compress

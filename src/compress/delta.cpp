#include "compress/codec.hpp"

namespace pico::compress {

// Byte-delta transform followed by RLE. Smooth detector images have slowly
// varying intensities, so deltas cluster near zero and RLE collapses them.
Bytes DeltaCodec::compress(ByteView input) const {
  Bytes deltas(input.size());
  uint8_t prev = 0;
  for (size_t i = 0; i < input.size(); ++i) {
    deltas[i] = static_cast<uint8_t>(input[i] - prev);
    prev = input[i];
  }
  return RleCodec{}.compress(deltas);
}

util::Result<Bytes> DeltaCodec::decompress(const Bytes& input) const {
  auto deltas = RleCodec{}.decompress(input);
  if (!deltas) return deltas;
  Bytes out = std::move(deltas).value();
  uint8_t prev = 0;
  for (auto& b : out) {
    b = static_cast<uint8_t>(b + prev);
    prev = b;
  }
  return util::Result<Bytes>::ok(std::move(out));
}

}  // namespace pico::compress

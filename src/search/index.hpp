#pragma once
// Globus-Search-like metadata index: an inverted index over JSON documents
// with free-text queries, field filters, date ranges, TF-IDF ranking, and
// visibility ACLs (results are filtered to what the caller may discover).
// This is the publication target of every flow (Sec. 2.2.3) and the backing
// store of the DGPF portal.
//
// Storage layout (million-doc control plane):
//   - Documents live in append-only slots (std::deque, so Document* from
//     get()/snapshot() stay stable); a slot is tombstoned on remove/update
//     instead of erased, and `doc_ids_` maps live external ids to slots.
//   - Terms are interned to dense u32 ids. Each term's postings are
//     (slot, tf) pairs sorted by slot: a delta+varint packed segment with a
//     skip entry every 128 postings, plus a small sorted append tail that is
//     merged (a pure append, since new slots are monotonically increasing)
//     once it reaches 64 entries.
//   - Queries intersect rarest-term-first with galloping cursors over the
//     packed segments; scores still accumulate in query-term order, so
//     ranking stays bit-identical to the previous map-of-maps index.
//   - remove() is O(terms of the doc): postings keep tombstoned entries
//     (filtered against the slot alive bit on read, purged once they
//     outnumber live ones) and the ingest-order list marks the position dead
//     via the slot's stored order position instead of an O(n) scan.
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "auth/auth.hpp"
#include "util/json.hpp"
#include "util/result.hpp"

namespace pico::search {

using DocId = std::string;

struct Document {
  DocId id;
  util::Json content;
  /// Identities allowed to see this record; empty = public.
  std::set<auth::Identity> visible_to;
  int64_t ingested_unix = 0;
};

struct Query {
  /// Free text; all terms must match (AND semantics).
  std::string text;
  /// Exact-match filters on dotted JSON paths (value compared as string).
  std::vector<std::pair<std::string, std::string>> field_filters;
  /// Inclusive range filter on a dotted path holding ISO-8601 timestamps.
  std::string date_field;  ///< e.g. "dates.created"; empty = no date filter
  std::optional<int64_t> date_from_unix;
  std::optional<int64_t> date_to_unix;
  size_t limit = 50;
};

struct Hit {
  DocId id;
  double score = 0;
};

class Index {
 public:
  explicit Index(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Insert or replace a document (re-ingest updates the index in place:
  /// the document keeps its original ingest-order position).
  void ingest(Document doc);

  util::Status remove(const DocId& id);

  /// Ranked search, visibility-filtered for `caller` (empty = anonymous: only
  /// public records).
  std::vector<Hit> search(const Query& query,
                          const auth::Identity& caller = "") const;

  util::Result<const Document*> get(const DocId& id,
                                    const auth::Identity& caller = "") const;

  size_t size() const { return live_; }

  /// Distinct values of a dotted string field among visible docs (facets).
  std::map<std::string, size_t> facet(const std::string& dotted_path,
                                      const auth::Identity& caller = "") const;

  /// All visible document ids (portal listing order: ingest order).
  std::vector<DocId> all_ids(const auth::Identity& caller = "") const;

  /// Administrative snapshot: every document in ingest order, bypassing
  /// visibility filtering. For persistence/backup tooling only.
  std::vector<const Document*> snapshot() const;

  /// Content fingerprint: CRC-64 over (id, content) pairs in id order.
  /// Ingest timestamps, arrival order, and ACLs are excluded, so two indexes
  /// that published identical records — regardless of retries, replays, or
  /// chaos-induced timing — fingerprint identically. The byte-identical-
  /// publication acceptance checks compare this value.
  uint64_t fingerprint() const;

 private:
  /// One document slot. Slots are append-only and never reused; a tombstoned
  /// slot keeps its position bookkeeping but drops the document payload.
  struct Slot {
    Document doc;
    bool alive = false;
    uint32_t order_pos = 0;  ///< index into ingest_order_
  };

  /// Postings for one term: packed delta+varint (slot_delta, tf) pairs with
  /// skip entries, plus the sorted append tail awaiting merge.
  struct TermPostings {
    uint32_t df_live = 0;       ///< entries whose slot is still alive
    uint32_t entries = 0;       ///< total entries (packed + tail)
    uint32_t packed_count = 0;  ///< entries in `packed`
    uint32_t packed_last = 0;   ///< slot of the last packed entry
    std::vector<uint8_t> packed;
    /// skips[i] = {slot base, byte offset} of packed entry i*kSkipEvery:
    /// decoding from offset with prev=base yields that block's entries.
    std::vector<std::pair<uint32_t, uint32_t>> skips;
    std::vector<std::pair<uint32_t, uint32_t>> tail;  ///< (slot, tf), sorted
  };

  /// Forward-only reader over one term's postings; seek targets must be
  /// ascending. Skip entries let seek() jump whole blocks (galloping).
  struct Cursor {
    const TermPostings* tp = nullptr;
    size_t off = 0;        ///< byte offset of the next packed entry
    uint32_t prev = 0;     ///< cumulative slot base at `off`
    uint32_t idx = 0;      ///< packed entries consumed
    size_t block = 0;      ///< current skip block
    size_t tail_i = 0;
    bool has_peek = false;
    uint32_t peek_slot = 0;
    uint32_t peek_tf = 0;

    explicit Cursor(const TermPostings& t) : tp(&t) {}
    /// True (with *tf set) iff the term contains `slot`.
    bool seek(uint32_t slot, uint32_t* tf);
    /// Decode the next entry in order; false at end.
    bool next(uint32_t* slot, uint32_t* tf);
  };

  static constexpr uint32_t kSkipEvery = 128;
  static constexpr size_t kTailMerge = 64;

  bool visible(const Document& doc, const auth::Identity& caller) const;
  bool alive(uint32_t slot) const { return slots_[slot].alive; }
  void index_document(uint32_t slot);
  /// Drop the doc from its terms' live counts (entries stay until purge).
  void tombstone_terms(const Document& doc);
  void append_posting(TermPostings& tp, uint32_t slot, uint32_t tf);
  void merge_tail(TermPostings& tp);
  /// Rewrite a term's postings without its dead entries.
  void purge_term(TermPostings& tp);
  void maybe_compact_order();

  std::string name_;
  std::deque<Slot> slots_;
  std::unordered_map<DocId, uint32_t> doc_ids_;  ///< live docs only
  std::unordered_map<std::string, uint32_t> term_ids_;
  std::vector<TermPostings> terms_;
  std::vector<uint32_t> ingest_order_;  ///< slot per position; dead skipped
  uint32_t order_dead_ = 0;             ///< tombstoned positions
  size_t live_ = 0;
};

/// Lowercased alphanumeric tokens of a string.
std::vector<std::string> tokenize(const std::string& text);

/// All text tokens of a JSON document (keys excluded, values included).
std::vector<std::string> tokenize_json(const util::Json& doc);

}  // namespace pico::search

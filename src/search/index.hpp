#pragma once
// Globus-Search-like metadata index: an inverted index over JSON documents
// with free-text queries, field filters, date ranges, TF-IDF ranking, and
// visibility ACLs (results are filtered to what the caller may discover).
// This is the publication target of every flow (Sec. 2.2.3) and the backing
// store of the DGPF portal.
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "auth/auth.hpp"
#include "util/json.hpp"
#include "util/result.hpp"

namespace pico::search {

using DocId = std::string;

struct Document {
  DocId id;
  util::Json content;
  /// Identities allowed to see this record; empty = public.
  std::set<auth::Identity> visible_to;
  int64_t ingested_unix = 0;
};

struct Query {
  /// Free text; all terms must match (AND semantics).
  std::string text;
  /// Exact-match filters on dotted JSON paths (value compared as string).
  std::vector<std::pair<std::string, std::string>> field_filters;
  /// Inclusive range filter on a dotted path holding ISO-8601 timestamps.
  std::string date_field;  ///< e.g. "dates.created"; empty = no date filter
  std::optional<int64_t> date_from_unix;
  std::optional<int64_t> date_to_unix;
  size_t limit = 50;
};

struct Hit {
  DocId id;
  double score = 0;
};

class Index {
 public:
  explicit Index(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Insert or replace a document (re-ingest updates the index).
  void ingest(Document doc);

  util::Status remove(const DocId& id);

  /// Ranked search, visibility-filtered for `caller` (empty = anonymous: only
  /// public records).
  std::vector<Hit> search(const Query& query,
                          const auth::Identity& caller = "") const;

  util::Result<const Document*> get(const DocId& id,
                                    const auth::Identity& caller = "") const;

  size_t size() const { return docs_.size(); }

  /// Distinct values of a dotted string field among visible docs (facets).
  std::map<std::string, size_t> facet(const std::string& dotted_path,
                                      const auth::Identity& caller = "") const;

  /// All visible document ids (portal listing order: ingest order).
  std::vector<DocId> all_ids(const auth::Identity& caller = "") const;

  /// Administrative snapshot: every document in ingest order, bypassing
  /// visibility filtering. For persistence/backup tooling only.
  std::vector<const Document*> snapshot() const;

  /// Content fingerprint: CRC-64 over (id, content) pairs in id order.
  /// Ingest timestamps, arrival order, and ACLs are excluded, so two indexes
  /// that published identical records — regardless of retries, replays, or
  /// chaos-induced timing — fingerprint identically. The byte-identical-
  /// publication acceptance checks compare this value.
  uint64_t fingerprint() const;

 private:
  bool visible(const Document& doc, const auth::Identity& caller) const;
  void index_document(const Document& doc);
  void unindex_document(const Document& doc);

  std::string name_;
  std::map<DocId, Document> docs_;
  std::vector<DocId> ingest_order_;
  /// term -> (doc -> term frequency)
  std::map<std::string, std::map<DocId, uint32_t>> inverted_;
};

/// Lowercased alphanumeric tokens of a string.
std::vector<std::string> tokenize(const std::string& text);

/// All text tokens of a JSON document (keys excluded, values included).
std::vector<std::string> tokenize_json(const util::Json& doc);

}  // namespace pico::search

#pragma once
// DataCite-style metadata schema for experiment records (the paper publishes
// records "defined by using an extensible schema based on DataCite"). The
// flows build records with build_record(); ingestion validates them so the
// portal can rely on the fields being present.
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/result.hpp"

namespace pico::search {

/// Validate the required DataCite-ish fields:
///   title (string), creators (non-empty array of {name}),
///   dates.created (ISO-8601 string), resource_type (string),
///   subjects (array of strings).
util::Status validate_record(const util::Json& record);

/// Inputs for a standard PicoProbe experiment record.
struct RecordInputs {
  std::string title;
  std::vector<std::string> creators;
  std::string created_iso8601;
  std::string resource_type;          ///< "hyperspectral" / "spatiotemporal"
  std::vector<std::string> subjects;  ///< e.g. detected elements
  util::Json instrument_metadata;     ///< HyperSpy-style extraction output
  util::Json analysis;                ///< analysis products summary
  std::vector<std::string> artifact_paths;  ///< plots, annotated videos
};

/// Build a schema-valid record.
util::Json build_record(const RecordInputs& inputs);

}  // namespace pico::search

#include "search/persist.hpp"

#include "util/bytes.hpp"

namespace pico::search {

using util::Json;

std::string index_to_json(const Index& index) {
  Json docs = Json::array();
  for (const Document* doc : index.snapshot()) {
    Json visible = Json::array();
    for (const auto& who : doc->visible_to) visible.push_back(who);
    docs.push_back(Json::object({
        {"id", doc->id},
        {"content", doc->content},
        {"visible_to", visible},
        {"ingested_unix", doc->ingested_unix},
    }));
  }
  return Json::object({
             {"index", index.name()},
             {"format", "picoflow-search-snapshot-1"},
             {"documents", docs},
         })
      .dump(2);
}

util::Result<Index> index_from_json(const std::string& text) {
  using R = util::Result<Index>;
  auto doc = Json::parse(text);
  if (!doc) return R::err("snapshot: " + doc.error().message, "parse");
  const Json& root = doc.value();
  if (root.at("format").as_string() != "picoflow-search-snapshot-1") {
    return R::err("not a search snapshot (bad format field)", "schema");
  }
  std::string name = root.at("index").as_string();
  if (name.empty()) return R::err("snapshot missing index name", "schema");

  Index index(name);
  for (const auto& entry : root.at("documents").as_array()) {
    Document d;
    d.id = entry.at("id").as_string();
    if (d.id.empty()) return R::err("snapshot document missing id", "schema");
    d.content = entry.at("content");
    for (const auto& who : entry.at("visible_to").as_array()) {
      d.visible_to.insert(who.as_string());
    }
    d.ingested_unix = entry.at("ingested_unix").as_int(0);
    index.ingest(std::move(d));
  }
  return R::ok(std::move(index));
}

util::Status save_index(const Index& index, const std::string& path) {
  return util::write_file(path, index_to_json(index));
}

util::Result<Index> load_index(const std::string& path) {
  auto data = util::read_file(path);
  if (!data) return util::Result<Index>::err(data.error());
  return index_from_json(std::string(data.value().begin(), data.value().end()));
}

}  // namespace pico::search

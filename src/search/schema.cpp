#include "search/schema.hpp"

#include "util/timefmt.hpp"

namespace pico::search {

using util::Json;

util::Status validate_record(const Json& record) {
  if (!record.is_object()) {
    return util::Status::err("record must be an object", "schema");
  }
  if (!record.at("title").is_string() || record.at("title").as_string().empty()) {
    return util::Status::err("record missing title", "schema");
  }
  const Json& creators = record.at("creators");
  if (!creators.is_array() || creators.size() == 0) {
    return util::Status::err("record missing creators", "schema");
  }
  for (const auto& c : creators.as_array()) {
    if (!c.at("name").is_string() || c.at("name").as_string().empty()) {
      return util::Status::err("creator entry missing name", "schema");
    }
  }
  const Json& created = record.at_path("dates.created");
  int64_t unused = 0;
  if (!created.is_string() || !util::parse_iso8601(created.as_string(), &unused)) {
    return util::Status::err("record missing valid dates.created", "schema");
  }
  if (!record.at("resource_type").is_string() ||
      record.at("resource_type").as_string().empty()) {
    return util::Status::err("record missing resource_type", "schema");
  }
  if (!record.at("subjects").is_array()) {
    return util::Status::err("record missing subjects array", "schema");
  }
  return util::Status::ok();
}

Json build_record(const RecordInputs& in) {
  Json creators = Json::array();
  for (const auto& name : in.creators) {
    creators.push_back(Json::object({{"name", name}}));
  }
  Json subjects = Json::array();
  for (const auto& s : in.subjects) subjects.push_back(s);
  Json artifacts = Json::array();
  for (const auto& p : in.artifact_paths) artifacts.push_back(p);

  return Json::object({
      {"title", in.title},
      {"creators", creators},
      {"dates", Json::object({{"created", in.created_iso8601}})},
      {"resource_type", in.resource_type},
      {"subjects", subjects},
      {"instrument", in.instrument_metadata},
      {"analysis", in.analysis},
      {"artifacts", artifacts},
      {"schema", "picoflow-datacite-1.0"},
  });
}

}  // namespace pico::search

#pragma once
// Search index persistence: snapshot the full document set (content, ACLs,
// ingest order) to a JSON file and restore it. The real Globus Search index
// is durable cloud state; this lets a PicoFlow portal be regenerated across
// process restarts and lets campaigns hand their catalog to later tooling.
#include <string>

#include "search/index.hpp"
#include "util/result.hpp"

namespace pico::search {

/// Serialize every document (bypassing visibility: a snapshot is an
/// administrative operation) to a JSON document string.
std::string index_to_json(const Index& index);

/// Rebuild an index from a snapshot. The index name comes from the snapshot.
util::Result<Index> index_from_json(const std::string& text);

util::Status save_index(const Index& index, const std::string& path);
util::Result<Index> load_index(const std::string& path);

}  // namespace pico::search

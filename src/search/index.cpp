#include "search/index.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <numeric>

#include "util/crc64.hpp"
#include "util/timefmt.hpp"

namespace pico::search {

std::vector<std::string> tokenize(const std::string& text) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      cur.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!cur.empty()) {
      out.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

namespace {
void tokenize_json_rec(const util::Json& j, std::vector<std::string>* out) {
  switch (j.type()) {
    case util::Json::Type::String: {
      auto toks = tokenize(j.as_string());
      out->insert(out->end(), toks.begin(), toks.end());
      break;
    }
    case util::Json::Type::Int:
      out->push_back(std::to_string(j.as_int()));
      break;
    case util::Json::Type::Array:
      for (const auto& v : j.as_array()) tokenize_json_rec(v, out);
      break;
    case util::Json::Type::Object:
      for (const auto& [k, v] : j.as_object()) tokenize_json_rec(v, out);
      break;
    default:
      break;  // bool/double/null don't contribute search terms
  }
}

/// Render a JSON leaf as the comparison string used by field filters.
std::string leaf_to_string(const util::Json& j) {
  switch (j.type()) {
    case util::Json::Type::String: return j.as_string();
    case util::Json::Type::Int: return std::to_string(j.as_int());
    case util::Json::Type::Bool: return j.as_bool() ? "true" : "false";
    case util::Json::Type::Double: return j.dump();
    default: return j.dump();
  }
}

/// Distinct terms of a document with their occurrence counts.
std::unordered_map<std::string, uint32_t> term_counts(const util::Json& content) {
  std::unordered_map<std::string, uint32_t> tf;
  for (auto& term : tokenize_json(content)) ++tf[term];
  return tf;
}

inline void put_varint(std::vector<uint8_t>* out, uint32_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

inline uint32_t get_varint(const std::vector<uint8_t>& buf, size_t* off) {
  uint32_t v = 0;
  int shift = 0;
  for (;;) {
    uint8_t b = buf[(*off)++];
    v |= static_cast<uint32_t>(b & 0x7F) << shift;
    if (!(b & 0x80)) return v;
    shift += 7;
  }
}
}  // namespace

std::vector<std::string> tokenize_json(const util::Json& doc) {
  std::vector<std::string> out;
  tokenize_json_rec(doc, &out);
  return out;
}

// ---------------------------------------------------------------------------
// Postings cursor

bool Index::Cursor::next(uint32_t* slot, uint32_t* tf) {
  if (has_peek) {
    *slot = peek_slot;
    *tf = peek_tf;
    has_peek = false;
    return true;
  }
  if (idx < tp->packed_count) {
    prev += get_varint(tp->packed, &off);
    *tf = get_varint(tp->packed, &off);
    ++idx;
    *slot = prev;
    return true;
  }
  if (tail_i < tp->tail.size()) {
    *slot = tp->tail[tail_i].first;
    *tf = tp->tail[tail_i].second;
    ++tail_i;
    return true;
  }
  return false;
}

bool Index::Cursor::seek(uint32_t target, uint32_t* tf) {
  if (has_peek && peek_slot >= target) {
    if (peek_slot == target) {
      *tf = peek_tf;
      has_peek = false;
      return true;
    }
    return false;  // peeked entry is still ahead of this target
  }
  has_peek = false;
  // Gallop: skips[b].first is the last slot BEFORE block b, so while the next
  // block's base is below the target, everything in the current block is too
  // and the whole block can be jumped.
  if (idx < tp->packed_count) {
    while (block + 1 < tp->skips.size() && tp->skips[block + 1].first < target) {
      ++block;
      prev = tp->skips[block].first;
      off = tp->skips[block].second;
      idx = static_cast<uint32_t>(block) * kSkipEvery;
    }
  }
  uint32_t s = 0, t = 0;
  while (next(&s, &t)) {
    if (s < target) continue;
    if (s == target) {
      *tf = t;
      return true;
    }
    has_peek = true;  // overshoot: stash for the next (larger) target
    peek_slot = s;
    peek_tf = t;
    return false;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Mutation path

void Index::ingest(Document doc) {
  uint32_t pos;
  auto it = doc_ids_.find(doc.id);
  if (it != doc_ids_.end()) {
    // Replace: tombstone the old slot; the fresh slot inherits the original
    // ingest-order position so listing order is unchanged by updates.
    Slot& old = slots_[it->second];
    tombstone_terms(old.doc);
    old.alive = false;
    pos = old.order_pos;
    old.doc = Document{};  // release the payload
    doc_ids_.erase(it);
    --live_;
  } else {
    pos = static_cast<uint32_t>(ingest_order_.size());
    ingest_order_.push_back(0);  // patched below
  }
  uint32_t slot = static_cast<uint32_t>(slots_.size());
  slots_.push_back(Slot{std::move(doc), true, pos});
  ingest_order_[pos] = slot;
  doc_ids_.emplace(slots_[slot].doc.id, slot);
  ++live_;
  index_document(slot);
}

util::Status Index::remove(const DocId& id) {
  auto it = doc_ids_.find(id);
  if (it == doc_ids_.end()) return util::Status::err("no document " + id, "not_found");
  Slot& s = slots_[it->second];
  tombstone_terms(s.doc);
  s.alive = false;
  s.doc = Document{};
  ++order_dead_;
  doc_ids_.erase(it);
  --live_;
  maybe_compact_order();
  return util::Status::ok();
}

void Index::index_document(uint32_t slot) {
  for (auto& [term, count] : term_counts(slots_[slot].doc.content)) {
    auto [it, fresh] =
        term_ids_.try_emplace(term, static_cast<uint32_t>(terms_.size()));
    if (fresh) terms_.emplace_back();
    append_posting(terms_[it->second], slot, count);
  }
}

void Index::tombstone_terms(const Document& doc) {
  for (auto& [term, count] : term_counts(doc.content)) {
    auto it = term_ids_.find(term);
    if (it == term_ids_.end()) continue;
    TermPostings& tp = terms_[it->second];
    if (tp.df_live == 0) continue;
    --tp.df_live;
    if (tp.df_live == 0) {
      tp = TermPostings{};  // term fully dead: drop its storage outright
    } else if (tp.entries >= 64 && (tp.entries - tp.df_live) * 2 > tp.entries) {
      purge_term(tp);
    }
  }
}

void Index::append_posting(TermPostings& tp, uint32_t slot, uint32_t tf) {
  // Slots are allocated monotonically, so appends arrive in sorted order and
  // the tail stays sorted by construction.
  tp.tail.emplace_back(slot, tf);
  ++tp.entries;
  ++tp.df_live;
  if (tp.tail.size() >= kTailMerge) merge_tail(tp);
}

void Index::merge_tail(TermPostings& tp) {
  // Every tail slot exceeds packed_last, so the merge is a pure append.
  for (const auto& [slot, tf] : tp.tail) {
    if (tp.packed_count % kSkipEvery == 0) {
      tp.skips.emplace_back(tp.packed_last,
                            static_cast<uint32_t>(tp.packed.size()));
    }
    put_varint(&tp.packed, slot - tp.packed_last);
    put_varint(&tp.packed, tf);
    tp.packed_last = slot;
    ++tp.packed_count;
  }
  tp.tail.clear();
}

void Index::purge_term(TermPostings& tp) {
  std::vector<std::pair<uint32_t, uint32_t>> kept;
  kept.reserve(tp.df_live);
  Cursor cur(tp);
  uint32_t slot = 0, tf = 0;
  while (cur.next(&slot, &tf)) {
    if (alive(slot)) kept.emplace_back(slot, tf);
  }
  tp.packed.clear();
  tp.skips.clear();
  tp.packed_count = 0;
  tp.packed_last = 0;
  tp.entries = static_cast<uint32_t>(kept.size());
  tp.df_live = tp.entries;
  tp.tail = std::move(kept);
  merge_tail(tp);
}

void Index::maybe_compact_order() {
  if (order_dead_ < 64 || order_dead_ * 2 <= ingest_order_.size()) return;
  std::vector<uint32_t> next;
  next.reserve(ingest_order_.size() - order_dead_);
  for (uint32_t slot : ingest_order_) {
    if (!slots_[slot].alive) continue;
    slots_[slot].order_pos = static_cast<uint32_t>(next.size());
    next.push_back(slot);
  }
  ingest_order_.swap(next);
  order_dead_ = 0;
}

// ---------------------------------------------------------------------------
// Query path

bool Index::visible(const Document& doc, const auth::Identity& caller) const {
  if (doc.visible_to.empty()) return true;  // public record
  return !caller.empty() && doc.visible_to.count(caller) > 0;
}

std::vector<Hit> Index::search(const Query& query,
                               const auth::Identity& caller) const {
  // Candidate scoring: TF-IDF over the free-text terms; documents must match
  // every term (AND). With no text, every visible document is a candidate.
  // The intersection runs rarest-term-first with galloping cursors, but each
  // document's score is still accumulated in query-term order so the doubles
  // come out bit-identical to the naive per-term walk.
  auto terms = tokenize(query.text);
  std::vector<uint32_t> cand;  // candidate slots, ascending
  std::vector<double> cand_scores;
  if (terms.empty()) {
    cand.reserve(live_);
    for (uint32_t slot : ingest_order_) {
      if (slots_[slot].alive) cand.push_back(slot);
    }
    cand_scores.assign(cand.size(), 1.0);
  } else {
    const double n_docs = static_cast<double>(std::max<size_t>(live_, 1));
    std::vector<uint32_t> uniq;  // distinct term ids, first-appearance order
    std::vector<size_t> term_uniq(terms.size());
    for (size_t i = 0; i < terms.size(); ++i) {
      auto it = term_ids_.find(terms[i]);
      if (it == term_ids_.end() || terms_[it->second].df_live == 0) {
        return {};  // AND semantics: no match at all
      }
      size_t u = 0;
      while (u < uniq.size() && uniq[u] != it->second) ++u;
      if (u == uniq.size()) uniq.push_back(it->second);
      term_uniq[i] = u;
    }
    std::vector<double> idf(uniq.size());
    for (size_t u = 0; u < uniq.size(); ++u) {
      idf[u] = std::log(
          1.0 + n_docs / static_cast<double>(terms_[uniq[u]].df_live));
    }
    std::vector<size_t> order(uniq.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return terms_[uniq[a]].df_live < terms_[uniq[b]].df_live;
    });

    // Seed with the rarest term (tombstoned slots filtered here once: later
    // terms only ever confirm already-live candidates).
    std::vector<std::vector<uint32_t>> tfs(uniq.size());
    {
      Cursor cur(terms_[uniq[order[0]]]);
      uint32_t slot = 0, tf = 0;
      while (cur.next(&slot, &tf)) {
        if (!alive(slot)) continue;
        cand.push_back(slot);
        tfs[order[0]].push_back(tf);
      }
    }
    for (size_t k = 1; k < order.size() && !cand.empty(); ++k) {
      size_t u = order[k];
      Cursor cur(terms_[uniq[u]]);
      std::vector<uint32_t> keep_slots, keep_tf, keep_idx;
      for (size_t i = 0; i < cand.size(); ++i) {
        uint32_t tf = 0;
        if (cur.seek(cand[i], &tf)) {
          keep_idx.push_back(static_cast<uint32_t>(i));
          keep_slots.push_back(cand[i]);
          keep_tf.push_back(tf);
        }
      }
      for (size_t j = 0; j < k; ++j) {
        auto& col = tfs[order[j]];
        std::vector<uint32_t> ncol;
        ncol.reserve(keep_idx.size());
        for (uint32_t ix : keep_idx) ncol.push_back(col[ix]);
        col.swap(ncol);
      }
      tfs[u].swap(keep_tf);
      cand.swap(keep_slots);
    }
    if (cand.empty()) return {};
    cand_scores.assign(cand.size(), 0.0);
    for (size_t qi = 0; qi < terms.size(); ++qi) {
      size_t u = term_uniq[qi];
      const auto& col = tfs[u];
      for (size_t i = 0; i < cand.size(); ++i) {
        cand_scores[i] +=
            (1.0 + std::log(static_cast<double>(col[i]))) * idf[u];
      }
    }
  }

  std::vector<Hit> hits;
  for (size_t i = 0; i < cand.size(); ++i) {
    const Document& doc = slots_[cand[i]].doc;
    if (!visible(doc, caller)) continue;

    bool keep = true;
    for (const auto& [path, want] : query.field_filters) {
      const util::Json& v = doc.content.at_path(path);
      if (v.is_array()) {
        // Arrays match if any element equals the wanted value.
        bool any = false;
        for (const auto& el : v.as_array()) {
          if (leaf_to_string(el) == want) {
            any = true;
            break;
          }
        }
        keep = any;
      } else {
        keep = leaf_to_string(v) == want;
      }
      if (!keep) break;
    }
    if (!keep) continue;

    if (!query.date_field.empty()) {
      const util::Json& v = doc.content.at_path(query.date_field);
      int64_t when = 0;
      if (!v.is_string() || !util::parse_iso8601(v.as_string(), &when)) continue;
      if (query.date_from_unix && when < *query.date_from_unix) continue;
      if (query.date_to_unix && when > *query.date_to_unix) continue;
    }

    hits.push_back(Hit{doc.id, cand_scores[i]});
  }

  std::sort(hits.begin(), hits.end(), [](const Hit& a, const Hit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  });
  if (hits.size() > query.limit) hits.resize(query.limit);
  return hits;
}

util::Result<const Document*> Index::get(const DocId& id,
                                         const auth::Identity& caller) const {
  using R = util::Result<const Document*>;
  auto it = doc_ids_.find(id);
  if (it == doc_ids_.end()) return R::err("no document " + id, "not_found");
  const Document& doc = slots_[it->second].doc;
  if (!visible(doc, caller)) {
    return R::err("document " + id + " not visible to caller", "denied");
  }
  return R::ok(&doc);
}

std::map<std::string, size_t> Index::facet(const std::string& dotted_path,
                                           const auth::Identity& caller) const {
  std::map<std::string, size_t> out;
  for (const auto& [id, slot] : doc_ids_) {
    const Document& doc = slots_[slot].doc;
    if (!visible(doc, caller)) continue;
    const util::Json& v = doc.content.at_path(dotted_path);
    if (v.is_null()) continue;
    out[leaf_to_string(v)] += 1;
  }
  return out;
}

std::vector<const Document*> Index::snapshot() const {
  std::vector<const Document*> out;
  out.reserve(live_);
  for (uint32_t slot : ingest_order_) {
    if (slots_[slot].alive) out.push_back(&slots_[slot].doc);
  }
  return out;
}

uint64_t Index::fingerprint() const {
  // Canonical order is by external id, independent of slot allocation.
  std::vector<uint32_t> order;
  order.reserve(live_);
  for (const auto& [id, slot] : doc_ids_) order.push_back(slot);
  std::sort(order.begin(), order.end(), [this](uint32_t a, uint32_t b) {
    return slots_[a].doc.id < slots_[b].doc.id;
  });
  util::Crc64 crc;
  for (uint32_t slot : order) {
    const Document& doc = slots_[slot].doc;
    crc.update(doc.id.data(), doc.id.size());
    std::string content = doc.content.dump();
    crc.update(content.data(), content.size());
  }
  return crc.value();
}

std::vector<DocId> Index::all_ids(const auth::Identity& caller) const {
  std::vector<DocId> out;
  for (uint32_t slot : ingest_order_) {
    if (slots_[slot].alive && visible(slots_[slot].doc, caller)) {
      out.push_back(slots_[slot].doc.id);
    }
  }
  return out;
}

}  // namespace pico::search

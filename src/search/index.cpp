#include "search/index.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "util/crc64.hpp"
#include "util/timefmt.hpp"

namespace pico::search {

std::vector<std::string> tokenize(const std::string& text) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      cur.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!cur.empty()) {
      out.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

namespace {
void tokenize_json_rec(const util::Json& j, std::vector<std::string>* out) {
  switch (j.type()) {
    case util::Json::Type::String: {
      auto toks = tokenize(j.as_string());
      out->insert(out->end(), toks.begin(), toks.end());
      break;
    }
    case util::Json::Type::Int:
      out->push_back(std::to_string(j.as_int()));
      break;
    case util::Json::Type::Array:
      for (const auto& v : j.as_array()) tokenize_json_rec(v, out);
      break;
    case util::Json::Type::Object:
      for (const auto& [k, v] : j.as_object()) tokenize_json_rec(v, out);
      break;
    default:
      break;  // bool/double/null don't contribute search terms
  }
}

/// Render a JSON leaf as the comparison string used by field filters.
std::string leaf_to_string(const util::Json& j) {
  switch (j.type()) {
    case util::Json::Type::String: return j.as_string();
    case util::Json::Type::Int: return std::to_string(j.as_int());
    case util::Json::Type::Bool: return j.as_bool() ? "true" : "false";
    case util::Json::Type::Double: return j.dump();
    default: return j.dump();
  }
}
}  // namespace

std::vector<std::string> tokenize_json(const util::Json& doc) {
  std::vector<std::string> out;
  tokenize_json_rec(doc, &out);
  return out;
}

void Index::ingest(Document doc) {
  auto it = docs_.find(doc.id);
  if (it != docs_.end()) {
    unindex_document(it->second);
    it->second = std::move(doc);
    index_document(it->second);
    return;
  }
  ingest_order_.push_back(doc.id);
  auto [inserted, ok] = docs_.emplace(doc.id, std::move(doc));
  index_document(inserted->second);
}

util::Status Index::remove(const DocId& id) {
  auto it = docs_.find(id);
  if (it == docs_.end()) return util::Status::err("no document " + id, "not_found");
  unindex_document(it->second);
  docs_.erase(it);
  ingest_order_.erase(
      std::remove(ingest_order_.begin(), ingest_order_.end(), id),
      ingest_order_.end());
  return util::Status::ok();
}

void Index::index_document(const Document& doc) {
  for (const auto& term : tokenize_json(doc.content)) {
    inverted_[term][doc.id] += 1;
  }
}

void Index::unindex_document(const Document& doc) {
  for (const auto& term : tokenize_json(doc.content)) {
    auto it = inverted_.find(term);
    if (it == inverted_.end()) continue;
    auto dit = it->second.find(doc.id);
    if (dit == it->second.end()) continue;
    if (--dit->second == 0) it->second.erase(dit);
    if (it->second.empty()) inverted_.erase(it);
  }
}

bool Index::visible(const Document& doc, const auth::Identity& caller) const {
  if (doc.visible_to.empty()) return true;  // public record
  return !caller.empty() && doc.visible_to.count(caller) > 0;
}

std::vector<Hit> Index::search(const Query& query,
                               const auth::Identity& caller) const {
  // Candidate scoring: TF-IDF over the free-text terms; documents must match
  // every term (AND). With no text, every visible document is a candidate.
  std::map<DocId, double> scores;
  auto terms = tokenize(query.text);
  if (terms.empty()) {
    for (const auto& [id, doc] : docs_) scores[id] = 1.0;
  } else {
    bool first = true;
    const double n_docs = static_cast<double>(std::max<size_t>(docs_.size(), 1));
    for (const auto& term : terms) {
      auto it = inverted_.find(term);
      if (it == inverted_.end()) return {};  // AND semantics: no match at all
      double idf = std::log(1.0 + n_docs / static_cast<double>(it->second.size()));
      std::map<DocId, double> next;
      for (const auto& [doc_id, tf] : it->second) {
        double contrib = (1.0 + std::log(static_cast<double>(tf))) * idf;
        if (first) {
          next[doc_id] = contrib;
        } else {
          auto sit = scores.find(doc_id);
          if (sit != scores.end()) next[doc_id] = sit->second + contrib;
        }
      }
      scores.swap(next);
      first = false;
      if (scores.empty()) return {};
    }
  }

  std::vector<Hit> hits;
  for (const auto& [id, score] : scores) {
    const Document& doc = docs_.at(id);
    if (!visible(doc, caller)) continue;

    bool keep = true;
    for (const auto& [path, want] : query.field_filters) {
      const util::Json& v = doc.content.at_path(path);
      if (v.is_array()) {
        // Arrays match if any element equals the wanted value.
        bool any = false;
        for (const auto& el : v.as_array()) {
          if (leaf_to_string(el) == want) {
            any = true;
            break;
          }
        }
        keep = any;
      } else {
        keep = leaf_to_string(v) == want;
      }
      if (!keep) break;
    }
    if (!keep) continue;

    if (!query.date_field.empty()) {
      const util::Json& v = doc.content.at_path(query.date_field);
      int64_t when = 0;
      if (!v.is_string() || !util::parse_iso8601(v.as_string(), &when)) continue;
      if (query.date_from_unix && when < *query.date_from_unix) continue;
      if (query.date_to_unix && when > *query.date_to_unix) continue;
    }

    hits.push_back(Hit{id, score});
  }

  std::sort(hits.begin(), hits.end(), [](const Hit& a, const Hit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  });
  if (hits.size() > query.limit) hits.resize(query.limit);
  return hits;
}

util::Result<const Document*> Index::get(const DocId& id,
                                         const auth::Identity& caller) const {
  using R = util::Result<const Document*>;
  auto it = docs_.find(id);
  if (it == docs_.end()) return R::err("no document " + id, "not_found");
  if (!visible(it->second, caller)) {
    return R::err("document " + id + " not visible to caller", "denied");
  }
  return R::ok(&it->second);
}

std::map<std::string, size_t> Index::facet(const std::string& dotted_path,
                                           const auth::Identity& caller) const {
  std::map<std::string, size_t> out;
  for (const auto& [id, doc] : docs_) {
    if (!visible(doc, caller)) continue;
    const util::Json& v = doc.content.at_path(dotted_path);
    if (v.is_null()) continue;
    out[leaf_to_string(v)] += 1;
  }
  return out;
}

std::vector<const Document*> Index::snapshot() const {
  std::vector<const Document*> out;
  out.reserve(ingest_order_.size());
  for (const auto& id : ingest_order_) {
    auto it = docs_.find(id);
    if (it != docs_.end()) out.push_back(&it->second);
  }
  return out;
}

uint64_t Index::fingerprint() const {
  util::Crc64 crc;
  // docs_ is keyed by id, so iteration order is already canonical.
  for (const auto& [id, doc] : docs_) {
    crc.update(id.data(), id.size());
    std::string content = doc.content.dump();
    crc.update(content.data(), content.size());
  }
  return crc.value();
}

std::vector<DocId> Index::all_ids(const auth::Identity& caller) const {
  std::vector<DocId> out;
  for (const auto& id : ingest_order_) {
    auto it = docs_.find(id);
    if (it != docs_.end() && visible(it->second, caller)) out.push_back(id);
  }
  return out;
}

}  // namespace pico::search

#pragma once
// Sharded run-state storage for the flow orchestrator, built for the
// million-flow control plane: run records live behind N lock-striped shards
// (hash of the run id picks the stripe), each record is heap-pinned by a
// unique_ptr so the engine-thread hot path can hold raw Run* across events
// without ever re-hashing, and every record embeds a seqlock-published
// RunStatusCell that portal pollers on other threads read lock-free.
//
// Threading contract: all *mutations* (emplace, field writes, cell publishes)
// happen on the sim engine thread. find()/ids_in_order()/size() are safe from
// any thread (shard mutex, briefly). RunStatusCell reads are wait-free for
// readers and never block the writer; a poller resolves the cell pointer once
// via find() and then polls with no locks at all.
#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <new>
#include <string>
#include <unordered_map>
#include <vector>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace pico::flow {

/// Seqlock-published status snapshot of one run: a packed state/step word for
/// the single-load fast path plus the hot timing fields. All fields are
/// individual atomics (no torn reads even mid-write); the sequence counter
/// only guards cross-field consistency of the wider snapshot.
class RunStatusCell {
 public:
  struct Snapshot {
    uint8_t state = 0;       ///< RunState as its underlying integer
    uint32_t current_step = 0;
    int64_t submitted_ns = 0;
    int64_t finished_ns = 0;
  };

  /// Writer side (engine thread only). Publishes a consistent snapshot.
  void publish(uint8_t state, uint32_t current_step, int64_t submitted_ns,
               int64_t finished_ns) {
    uint32_t s = seq_.load(std::memory_order_relaxed);
    seq_.store(s + 1, std::memory_order_relaxed);  // odd: write in progress
    std::atomic_thread_fence(std::memory_order_release);
    submitted_ns_.store(submitted_ns, std::memory_order_relaxed);
    finished_ns_.store(finished_ns, std::memory_order_relaxed);
    word_.store(pack(state, current_step), std::memory_order_relaxed);
    seq_.store(s + 2, std::memory_order_release);
  }

  /// Single-load fast path: state + current step only, always coherent
  /// (they live in one 64-bit word).
  uint64_t word() const { return word_.load(std::memory_order_acquire); }
  static uint8_t state_of(uint64_t word) {
    return static_cast<uint8_t>(word & 0xFF);
  }
  static uint32_t step_of(uint64_t word) {
    return static_cast<uint32_t>(word >> 8);
  }

  /// Full snapshot via seqlock retry loop. Wait-free in practice: the writer
  /// publishes a handful of times over a run's whole lifetime.
  Snapshot read() const {
    for (;;) {
      uint32_t s1 = seq_.load(std::memory_order_acquire);
      Snapshot out;
      uint64_t w = word_.load(std::memory_order_relaxed);
      out.submitted_ns = submitted_ns_.load(std::memory_order_relaxed);
      out.finished_ns = finished_ns_.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      uint32_t s2 = seq_.load(std::memory_order_relaxed);
      if (s1 == s2 && (s1 & 1u) == 0) {
        out.state = state_of(w);
        out.current_step = step_of(w);
        return out;
      }
    }
  }

 private:
  static uint64_t pack(uint8_t state, uint32_t step) {
    return (static_cast<uint64_t>(step) << 8) | state;
  }
  std::atomic<uint32_t> seq_{0};
  std::atomic<uint64_t> word_{0};
  std::atomic<int64_t> submitted_ns_{0};
  std::atomic<int64_t> finished_ns_{0};
};

/// Lock-striped map of run id -> slab-pinned RunT. RunT must expose a
/// std::string `id` member (used by ids_in_order()). Records are never
/// erased: a settled run's record stays addressable for the service's
/// lifetime, which is what lets scheduled events capture raw Run* safely.
///
/// Records are placement-new'd into 2 MiB slab chunks (advised toward
/// transparent huge pages on Linux) instead of individual heap allocations:
/// at 10^5-10^6 runs the dominant per-event cost is the cold dereference of
/// the fired event's run record, and per-record allocation makes every one
/// of those a TLB miss on top of the cache miss. One huge page covers
/// ~2 MiB of contiguous records.
///
/// ids_in_order() returns insertion order. Run ids are "run-%06llu", so this
/// matches the lexicographic order the previous std::map-backed store
/// produced for the format's natural range (up to 999999 runs per service).
template <class RunT>
class ShardedRunStore {
 public:
  static constexpr size_t kShards = 64;

  ShardedRunStore() = default;
  ShardedRunStore(const ShardedRunStore&) = delete;
  ShardedRunStore& operator=(const ShardedRunStore&) = delete;

  ~ShardedRunStore() {
    for (Chunk& c : chunks_) {
      RunT* base = reinterpret_cast<RunT*>(c.mem);
      for (size_t i = 0; i < c.used; ++i) base[i].~RunT();
      std::free(c.mem);
    }
  }

  /// Create the record for `id`. Returns the pinned pointer (stable until
  /// the store dies). Pre-existing ids are a caller bug (ids are minted from
  /// a monotonic counter); the existing record is returned in that case.
  RunT* emplace(const std::string& id) {
    Shard& shard = shards_[shard_of(id)];
    RunT* out;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      auto [it, inserted] = shard.runs.try_emplace(id);
      if (!inserted) return it->second;
      it->second = allocate();
      out = it->second;
    }
    {
      std::lock_guard<std::mutex> lock(order_mu_);
      order_.push_back(out);
    }
    size_.fetch_add(1, std::memory_order_relaxed);
    return out;
  }

  RunT* find(const std::string& id) {
    Shard& shard = shards_[shard_of(id)];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.runs.find(id);
    return it == shard.runs.end() ? nullptr : it->second;
  }
  const RunT* find(const std::string& id) const {
    return const_cast<ShardedRunStore*>(this)->find(id);
  }

  size_t size() const { return size_.load(std::memory_order_relaxed); }

  std::vector<std::string> ids_in_order() const {
    std::lock_guard<std::mutex> lock(order_mu_);
    std::vector<std::string> out;
    out.reserve(order_.size());
    for (const RunT* r : order_) out.push_back(r->id);
    return out;
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, RunT*> runs;  ///< non-owning; slab owns
  };
  struct Chunk {
    void* mem = nullptr;
    size_t used = 0;  ///< records constructed in this chunk
  };

  static constexpr size_t kChunkBytes = size_t{2} << 20;  // one huge page
  static constexpr size_t per_chunk() {
    return kChunkBytes / sizeof(RunT) ? kChunkBytes / sizeof(RunT) : 1;
  }

  /// Engine-thread only (same contract as emplace). Called under a shard
  /// lock; slab_mu_ orders allocation against the destructor sweep.
  RunT* allocate() {
    std::lock_guard<std::mutex> lock(slab_mu_);
    if (chunks_.empty() || chunks_.back().used == per_chunk()) {
      void* mem = nullptr;
      size_t bytes = std::max(kChunkBytes, sizeof(RunT));
      if (posix_memalign(&mem, kChunkBytes, bytes) != 0) {
        throw std::bad_alloc();
      }
#if defined(__linux__) && defined(MADV_HUGEPAGE)
      madvise(mem, bytes, MADV_HUGEPAGE);
#endif
      chunks_.push_back(Chunk{mem, 0});
    }
    Chunk& c = chunks_.back();
    RunT* r = new (reinterpret_cast<RunT*>(c.mem) + c.used) RunT();
    ++c.used;
    return r;
  }

  static size_t shard_of(const std::string& id) {
    return std::hash<std::string>{}(id) & (kShards - 1);
  }

  std::array<Shard, kShards> shards_;
  mutable std::mutex order_mu_;
  std::vector<RunT*> order_;  ///< insertion order, for ids_in_order()
  std::mutex slab_mu_;
  std::vector<Chunk> chunks_;
  std::atomic<size_t> size_{0};
};

}  // namespace pico::flow

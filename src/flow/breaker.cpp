#include "flow/breaker.hpp"

#include <algorithm>

namespace pico::flow {

std::string CircuitBreaker::state_name(State s) {
  switch (s) {
    case State::Closed: return "closed";
    case State::Open: return "open";
    case State::HalfOpen: return "half-open";
  }
  return "?";
}

CircuitBreaker::State CircuitBreaker::state(sim::SimTime now) const {
  if (state_ == State::Open && now >= open_until_) return State::HalfOpen;
  return state_;
}

void CircuitBreaker::transition(State to, sim::SimTime at) {
  if (state_ == to) return;
  State from = state_;
  state_ = to;
  if (observer_) observer_(from, to, at);
}

void CircuitBreaker::commit_decay(sim::SimTime now) {
  if (state_ == State::Open && now >= open_until_) {
    transition(State::HalfOpen, open_until_);
  }
}

double CircuitBreaker::retry_after_s(sim::SimTime now) {
  if (!config_.enabled) return 0.0;
  switch (state(now)) {
    case State::Closed:
      return 0.0;
    case State::Open:
      return std::max(0.0, (open_until_ - now).seconds());
    case State::HalfOpen:
      commit_decay(now);
      if (probe_in_flight_) {
        // Someone else is probing; callers wait roughly another cooldown so
        // they re-check after the probe has had time to resolve.
        return config_.cooldown_s;
      }
      probe_in_flight_ = true;
      return 0.0;
  }
  return 0.0;
}

double CircuitBreaker::peek_retry_after_s(sim::SimTime now) const {
  if (!config_.enabled) return 0.0;
  switch (state(now)) {
    case State::Closed:
      return 0.0;
    case State::Open:
      return std::max(0.0, (open_until_ - now).seconds());
    case State::HalfOpen:
      return probe_in_flight_ ? config_.cooldown_s : 0.0;
  }
  return 0.0;
}

void CircuitBreaker::record_success(sim::SimTime now) {
  commit_decay(now);
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
  transition(State::Closed, now);
}

void CircuitBreaker::record_failure(sim::SimTime now) {
  if (!config_.enabled) return;
  commit_decay(now);
  probe_in_flight_ = false;
  ++consecutive_failures_;
  State s = state(now);
  bool should_trip = s == State::HalfOpen ||
                     (s == State::Closed &&
                      consecutive_failures_ >= config_.failure_threshold);
  if (should_trip) {
    open_until_ = now + sim::Duration::from_seconds(config_.cooldown_s);
    transition(State::Open, now);
    ++trips_;
  }
}

}  // namespace pico::flow

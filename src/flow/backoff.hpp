#pragma once
// Polling backoff policies. The paper attributes its large orchestration
// overhead (49.2% of median hyperspectral flow runtime) to "an exponential
// polling backoff policy that starts at 1 second and doubles up to 10
// minutes" — implemented here as the default. Alternative policies feed the
// A1 ablation bench ("which we are working to improve").
#include <string>

#include "util/rng.hpp"

namespace pico::flow {

struct BackoffPolicy {
  enum class Kind { Exponential, Fixed, Linear, JitteredExponential };

  Kind kind = Kind::Exponential;
  double initial_s = 1.0;   ///< first poll interval
  double factor = 2.0;      ///< exponential multiplier
  double cap_s = 600.0;     ///< 10-minute ceiling (paper)
  double increment_s = 2.0; ///< linear policy step
  double jitter_frac = 0.25;///< +/- fraction for the jittered policy

  /// Interval before poll number `attempt` (0-based). Jittered draws from rng.
  double interval_s(int attempt, util::Rng& rng) const;

  /// Deterministic variant: the jitter factor is a hash of (salt, attempt)
  /// instead of a draw from a shared RNG stream. Two flows polling
  /// concurrently cannot perturb each other's backoff sequences, so a
  /// flow's poll schedule replays identically however the campaign around
  /// it interleaves.
  double interval_s(int attempt, uint64_t salt) const;

  std::string describe() const;

  /// The paper's production policy: 1 s start, doubling, 600 s cap.
  static BackoffPolicy paper_default();
  /// Event-era fallback poller: jittered doubling with a tight cap so a lost
  /// completion notification is discovered within ~cap_s seconds instead of
  /// the paper's 10 minutes. Used by flow::Service as the reconcile policy
  /// when completion callbacks are the primary signal.
  static BackoffPolicy adaptive(double cap_s = 30.0);
  static BackoffPolicy fixed(double interval_s);
  static BackoffPolicy linear(double initial_s, double increment_s,
                              double cap_s);
  static BackoffPolicy jittered(double initial_s, double factor, double cap_s,
                                double jitter_frac);

 private:
  double base_s(int attempt) const;
};

}  // namespace pico::flow

#include "flow/service.hpp"

#include <algorithm>
#include <cassert>

#include "util/crc64.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace pico::flow {
namespace {
util::Logger& logger() {
  static util::Logger kLogger("flow");
  return kLogger;
}
}  // namespace

std::string run_state_name(RunState s) {
  switch (s) {
    case RunState::Pending: return "PENDING";
    case RunState::Active: return "ACTIVE";
    case RunState::Succeeded: return "SUCCEEDED";
    case RunState::Failed: return "FAILED";
  }
  return "?";
}

std::string completion_mode_name(CompletionMode m) {
  switch (m) {
    case CompletionMode::Polling: return "polling";
    case CompletionMode::Events: return "events";
  }
  return "?";
}

double RunTiming::active_union_s() const {
  // Merge the per-step service intervals on the wall clock. Serialized runs
  // reduce to the same per-step durations summed in the same order as
  // active_s(), so the two agree bit for bit when nothing overlaps.
  std::vector<std::pair<int64_t, int64_t>> iv;
  for (const auto& s : steps) {
    if (s.service_completed.ns > s.service_started.ns) {
      iv.emplace_back(s.service_started.ns, s.service_completed.ns);
    }
  }
  std::sort(iv.begin(), iv.end());
  double total = 0;
  int64_t lo = 0, hi = 0;
  bool open = false;
  for (const auto& [a, b] : iv) {
    if (open && a <= hi) {
      hi = std::max(hi, b);
      continue;
    }
    if (open) total += (sim::SimTime{hi} - sim::SimTime{lo}).seconds();
    lo = a;
    hi = b;
    open = true;
  }
  if (open) total += (sim::SimTime{hi} - sim::SimTime{lo}).seconds();
  return total;
}

FlowService::FlowService(sim::Engine* engine, auth::AuthService* auth,
                         FlowServiceConfig config, uint64_t seed,
                         sim::Trace* trace)
    : engine_(engine),
      auth_(auth),
      config_(config),
      rng_(seed),
      seed_(seed),
      trace_(trace) {}

void FlowService::register_provider(ActionProvider* provider) {
  std::string name = provider->name();
  auto it = provider_ids_.find(name);
  if (it != provider_ids_.end()) {
    providers_[it->second] = provider;
    return;
  }
  uint16_t pid = static_cast<uint16_t>(providers_.size());
  provider_ids_.emplace(std::move(name), pid);
  providers_.push_back(provider);
  provider_names_.push_back(provider->name());
  breakers_.push_back(nullptr);
}

void FlowService::set_telemetry(telemetry::Telemetry* telemetry) {
  telemetry_ = telemetry;
}

void FlowService::flight_event(const RunId& id, util::LogLevel level,
                               std::string name, util::Json attrs) {
  if (!telemetry_) return;
  telemetry_->flight.record(id, level, "flow", std::move(name),
                            engine_->now(), std::move(attrs));
}

void FlowService::set_notification_loss_prob(double prob) {
  notification_loss_prob_ = std::max(0.0, std::min(1.0, prob));
}

const BackoffPolicy& FlowService::active_poll_policy() const {
  return config_.completion_mode == CompletionMode::Events
             ? config_.reconcile_backoff
             : config_.backoff;
}

telemetry::Labels FlowService::provider_labels(
    const std::string& provider) const {
  telemetry::Labels labels{{"provider", provider}};
  if (!site_.empty()) labels["site"] = site_;
  return labels;
}

void FlowService::on_breaker_transition(const std::string& provider,
                                        CircuitBreaker::State from,
                                        CircuitBreaker::State to,
                                        sim::SimTime at) {
  if (!telemetry_) return;
  std::string to_name = to == CircuitBreaker::State::Open        ? "open"
                        : to == CircuitBreaker::State::HalfOpen ? "half_open"
                                                                : "closed";
  telemetry::Labels to_labels = provider_labels(provider);
  to_labels["to"] = to_name;
  telemetry_->metrics
      .counter("flow_breaker_transitions_total",
               "Circuit breaker state transitions by provider and new state",
               to_labels)
      .inc();
  // Live breaker position for the health plane's provider score. Site-
  // qualified when federated so one facility's open breaker never shadows a
  // healthy peer's provider of the same name.
  telemetry_->metrics
      .gauge("flow_breaker_open",
             "Breaker position by provider: 0 closed, 0.5 half-open, 1 open",
             provider_labels(provider))
      .set(to == CircuitBreaker::State::Open       ? 1.0
           : to == CircuitBreaker::State::HalfOpen ? 0.5
                                                   : 0.0);
  flight_event(active_run_, util::LogLevel::Warn, "breaker-" + to_name,
               util::Json::object({
                   {"provider", provider},
                   {"from", CircuitBreaker::state_name(from)},
               }));
  if (active_step_span_ != 0) {
    telemetry_->tracer.event(
        active_step_span_, "breaker-" + to_name, at,
        util::Json::object({
            {"provider", provider},
            {"from", CircuitBreaker::state_name(from)},
            {"to", CircuitBreaker::state_name(to)},
        }));
  }
}

double FlowService::jittered(double base) {
  double f = config_.latency_jitter_frac;
  return std::max(0.05, base * rng_.uniform(1.0 - f, 1.0 + f));
}

void FlowService::publish_status(Run& run) {
  run.cell.publish(static_cast<uint8_t>(run.info.state),
                   static_cast<uint32_t>(run.info.current_step),
                   run.timing.submitted.ns, run.timing.finished.ns);
}

util::Result<RunId> FlowService::start(const FlowDefinition& definition,
                                       util::Json input,
                                       const auth::Token& token,
                                       const std::string& label) {
  return start(std::make_shared<const FlowDefinition>(definition),
               std::move(input), token, label);
}

util::Result<RunId> FlowService::start(
    std::shared_ptr<const FlowDefinition> definition_ptr, util::Json input,
    const auth::Token& token, const std::string& label) {
  return start_internal(std::move(definition_ptr), std::move(input), token,
                        label, nullptr);
}

util::Result<RunId> FlowService::resume(
    std::shared_ptr<const FlowDefinition> definition_ptr,
    RunCheckpoint checkpoint, const auth::Token& token,
    const std::string& label) {
  using R = util::Result<RunId>;
  if (!definition_ptr) return R::err("resume needs a definition", "invalid");
  if (!checkpoint.flow.empty() && checkpoint.flow != definition_ptr->name) {
    return R::err("checkpoint is for flow '" + checkpoint.flow +
                      "', not '" + definition_ptr->name + "'",
                  "invalid");
  }
  if (checkpoint.start_step > definition_ptr->steps.size()) {
    return R::err("checkpoint start_step beyond definition", "invalid");
  }
  util::Json input = std::move(checkpoint.input);
  return start_internal(std::move(definition_ptr), std::move(input), token,
                        label, &checkpoint);
}

util::Result<RunCheckpoint> FlowService::checkpoint(const RunId& id) const {
  using R = util::Result<RunCheckpoint>;
  const Run* run = runs_.find(id);
  if (!run) return R::err("unknown run " + id, "not_found");
  RunCheckpoint cp;
  cp.flow = run->def ? run->def->name : "";
  cp.start_step = run->info.current_step;
  cp.input = run->info.input;
  cp.step_outputs = run->info.step_outputs;
  return R::ok(std::move(cp));
}

util::Result<RunId> FlowService::start_internal(
    std::shared_ptr<const FlowDefinition> definition_ptr, util::Json input,
    const auth::Token& token, const std::string& label,
    const RunCheckpoint* resume_from) {
  using R = util::Result<RunId>;
  const FlowDefinition& definition = *definition_ptr;
  auto who = auth_->validate(token, "flows");
  if (!who) return R::err(who.error());
  if (definition.steps.empty()) return R::err("flow has no steps", "invalid");
  for (const auto& step : definition.steps) {
    if (!provider_ids_.count(step.provider)) {
      return R::err("unknown provider: " + step.provider, "not_found");
    }
  }

  // Equivalent to util::format("run-%06llu", n) without the varargs
  // vsnprintf round trip; ids mint once per start on the campaign hot path.
  uint64_t seq = next_run_++;
  char idbuf[28] = "run-";
  size_t idlen = 4;
  {
    char digits[20];
    size_t nd = 0;
    uint64_t v = seq;
    do {
      digits[nd++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v);
    for (size_t pad = nd; pad < 6; ++pad) idbuf[idlen++] = '0';
    while (nd) idbuf[idlen++] = digits[--nd];
  }
  RunId id(idbuf, idlen);
  Run* run = runs_.emplace(id);
  run->id = id;
  run->svc = this;
  run->def = std::move(definition_ptr);
  run->step_pids.reserve(definition.steps.size());
  for (const auto& step : definition.steps) {
    run->step_pids.push_back(provider_ids_.find(step.provider)->second);
  }
  run->info.label = label.empty() ? id : label;
  run->info.input = std::move(input);
  run->timing.steps.reserve(definition.steps.size());
  run->timing.submitted = engine_->now();
  run->token = token;
  run->backoff_salt = util::crc64(id) ^ seed_;
  if (resume_from) {
    // Continue a peer's checkpoint: completed steps become resolved outputs
    // and zero-duration timing placeholders (dispatch indexes timing.steps by
    // current_step), dispatch starts at start_step. Epoch, salt, retry
    // counters, and breakers above are already this site's fresh state.
    run->info.current_step = resume_from->start_step;
    run->info.step_outputs = resume_from->step_outputs;
    for (size_t i = 0; i < resume_from->start_step; ++i) {
      StepTiming skipped;
      skipped.name = definition.steps[i].name;
      run->timing.steps.push_back(std::move(skipped));
    }
  }
  if (telemetry_) {
    // Parent comes from the tracer context: the campaign scope when driven by
    // a campaign, else root.
    run->run_span = telemetry_->tracer.open("flow", id);
  }
  publish_status(*run);
  active_count_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry_) {
    telemetry_->flight.open(id, engine_->now());
    flight_event(id, util::LogLevel::Info, "submitted",
                 util::Json::object({
                     {"flow", definition.name},
                     {"label", run->info.label},
                     {"steps", definition.steps.size()},
                 }));
    telemetry_->metrics
        .gauge("flow_active_runs", "Flow runs submitted but not yet settled")
        .add(1.0);
    if (resume_from) {
      flight_event(id, util::LogLevel::Info, "resumed-from-checkpoint",
                   util::Json::object({
                       {"start_step", resume_from->start_step},
                       {"steps_skipped", resume_from->start_step},
                   }));
      telemetry_->metrics
          .counter("flow_runs_resumed_total",
                   "Runs launched from a peer facility's checkpoint")
          .inc();
    }
  }

  Run* r = run;
  engine_->post_after(
      sim::Duration::from_seconds(jittered(config_.start_latency_s)), [r] {
        if (r->info.state != RunState::Pending) {
          return;  // cancelled before the service picked it up
        }
        r->info.state = RunState::Active;
        r->svc->publish_status(*r);
        r->svc->dispatch_step(*r);
      });
  logger().debug("%s started (%s, %zu steps)", id.c_str(),
                 definition.name.c_str(), definition.steps.size());
  return R::ok(id);
}

util::Json FlowService::resolve_params(
    const util::Json& params, const util::Json& input,
    const std::map<std::string, util::Json>& steps) {
  using util::Json;
  switch (params.type()) {
    case Json::Type::String: {
      const std::string& s = params.as_string();
      if (s == "$.input") return input;
      if (util::starts_with(s, "$.input.")) {
        return input.at_path(s.substr(8));
      }
      if (util::starts_with(s, "$.steps.")) {
        std::string rest = s.substr(8);
        size_t dot = rest.find('.');
        std::string step = dot == std::string::npos ? rest : rest.substr(0, dot);
        auto it = steps.find(step);
        if (it == steps.end()) return Json();
        if (dot == std::string::npos) return it->second;
        return it->second.at_path(rest.substr(dot + 1));
      }
      return params;
    }
    case Json::Type::Array: {
      Json out = Json::array();
      for (const auto& v : params.as_array()) {
        out.push_back(resolve_params(v, input, steps));
      }
      return out;
    }
    case Json::Type::Object: {
      Json out = Json::object();
      for (const auto& [k, v] : params.as_object()) {
        out[k] = resolve_params(v, input, steps);
      }
      return out;
    }
    default:
      return params;
  }
}

void FlowService::dispatch_step(Run& run) {
  if (run.info.state != RunState::Active) return;  // cancelled/settled
  if (run.info.current_step >= run.definition().steps.size()) {
    finish_run(run);
    return;
  }
  const ActionState& step = run.definition().steps[run.info.current_step];
  uint16_t pid = run.step_pids[run.info.current_step];
  run.cur_pid = pid;  // hot mirror: polls skip the step_pids heap array
  ActionProvider* provider = providers_[pid];

  util::Json resolved =
      resolve_params(step.params, run.info.input, run.info.step_outputs);
  // Attempt epoch rides along so idempotent providers (search ingest) can
  // report which attempt first claimed a publish and which were suppressed.
  resolved["flow_attempt_epoch"] = static_cast<int64_t>(run.epoch);

  StepTiming timing;
  timing.name = step.name;
  timing.dispatched = engine_->now();
  timing.retries = run.retries_this_step;
  if (run.timing.steps.size() <= run.info.current_step) {
    run.timing.steps.push_back(timing);
  } else {
    // Retry: keep the original dispatch time, bump the retry counter.
    run.timing.steps[run.info.current_step].retries = run.retries_this_step;
  }
  if (telemetry_ && run.step_span == 0) {
    run.step_span =
        telemetry_->tracer.open("flow", run.id + "/" + step.name, run.run_span);
  }
  if (telemetry_) {
    // Breaker-transition / flight context; only telemetry consumes it, so
    // the per-dispatch string copy is gated out of the bare hot path.
    active_step_span_ = run.step_span;
    active_run_ = run.id;
    flight_event(run.id, util::LogLevel::Info, "dispatch",
                 util::Json::object({
                     {"step", step.name},
                     {"provider", step.provider},
                     {"retry", run.retries_this_step},
                 }));
  }

  // Circuit-breaker gate: while the provider's breaker is open, fail fast —
  // the wait consumes one retry and the re-dispatch lands when the breaker
  // half-opens, so a down service sees probes instead of a retry storm.
  CircuitBreaker& breaker = breaker_for(pid);
  double open_wait = breaker.retry_after_s(engine_->now());
  if (open_wait > 0) {
    uint64_t epoch = ++run.epoch;
    if (run.retries_this_step < step.max_retries) {
      ++run.retries_this_step;
      run.timing.steps[run.info.current_step].retries = run.retries_this_step;
      if (telemetry_) {
        telemetry_->metrics
            .counter("flow_breaker_deferrals_total",
                     "Step dispatches deferred because the provider breaker "
                     "was open",
                     provider_labels(step.provider))
            .inc();
        telemetry_->tracer.event(run.step_span, "breaker-deferred",
                                 engine_->now(),
                                 util::Json::object({
                                     {"provider", step.provider},
                                     {"wait_s", open_wait},
                                     {"retry", run.retries_this_step},
                                 }));
        flight_event(run.id, util::LogLevel::Warn, "breaker-deferred",
                     util::Json::object({
                         {"provider", step.provider},
                         {"wait_s", open_wait},
                     }));
      }
      logger().debug("%s: breaker open for %s, retry %d deferred %.1fs",
                     run.id.c_str(), step.provider.c_str(),
                     run.retries_this_step, open_wait);
      Run* r = &run;
      engine_->post_after(
          sim::Duration::from_seconds(open_wait + jittered(0.5)),
          [r, epoch] {
            if (r->info.state != RunState::Active || r->epoch != epoch) return;
            r->svc->dispatch_step(*r);
          });
    } else {
      fail_run(run, "step " + step.name + ": circuit open for provider " +
                        step.provider);
    }
    return;
  }

  if (telemetry_) {
    run.attempt_span = telemetry_->tracer.open(
        "flow",
        run.id + "/" + step.name + "#" +
            std::to_string(run.retries_this_step),
        run.step_span);
    run.attempt_started = engine_->now();
  }
  util::Result<ActionHandle> handle = [&] {
    // Scope the attempt span around the provider call so the service-side
    // task (transfer/compute) parents to this attempt via tracer context,
    // and the flight subject so the service's async events (frame NACKs,
    // chunk retries) reach this run's ring.
    if (!telemetry_) return provider->start(resolved, run.token);
    telemetry::Tracer::Scope scope(telemetry_->tracer, run.attempt_span);
    telemetry::health::FlightRecorder::Scope fscope(telemetry_->flight, run.id);
    return provider->start(resolved, run.token);
  }();
  if (!handle) {
    breaker.record_failure(engine_->now());
    step_attempt_failed(run,
                        "step " + step.name + " failed to start: " +
                            handle.error().message,
                        jittered(config_.inter_step_latency_s));
    return;
  }
  run.current_handle = handle.value();
  run.poll_attempt = 0;
  run.last_progress_token.clear();
  run.subscribed = false;
  uint64_t epoch = ++run.epoch;
  Run* r = &run;

  if (config_.completion_mode == CompletionMode::Events) {
    run.subscribed = provider->subscribe(
        run.current_handle, [r, epoch] { r->svc->on_notification(*r, epoch); });
  }
  // Cut-through: when the *next* step opted into streaming and its provider
  // can hold a started action, watch this step's byte progress and
  // pre-dispatch on the first chunk landing.
  size_t next_idx = run.info.current_step + 1;
  if (next_idx < run.definition().steps.size() &&
      run.definition().steps[next_idx].streaming &&
      providers_[run.step_pids[next_idx]]->supports_held_start()) {
    provider->subscribe_progress(
        run.current_handle,
        [r, epoch](int64_t) { r->svc->on_stream_progress(*r, epoch); });
  }

  // First poll after the initial interval of the policy in force (the sparse
  // reconcile net when subscribed; the configured backoff otherwise).
  double wait =
      active_poll_policy().interval_s(0, run.backoff_salt ^ run.epoch);
  engine_->post_after(sim::Duration::from_seconds(wait),
                      [r, epoch] { r->svc->poll_step(*r, epoch); });
  if (step.timeout_s > 0) {
    // Cancellable handle, not fire-and-forget: long step timeouts (hours of
    // virtual time) would otherwise outlive the run and dominate the queue.
    run.timeout_handle = engine_->schedule_after(
        sim::Duration::from_seconds(step.timeout_s),
        [r, epoch] { r->svc->timeout_step(*r, epoch); });
  }
}

void FlowService::poll_step(Run& run, uint64_t epoch) {
  if (run.info.state != RunState::Active) return;
  if (run.epoch != epoch) return;  // attempt superseded (timeout/retry)

  ActionProvider* provider = providers_[run.cur_pid];
  ++run.cur_polls;
  if (telemetry_) {
    // Span/flight context and the poll counter matter only with telemetry
    // attached; the bare hot path skips the step-metadata load entirely.
    active_step_span_ = run.step_span;
    active_run_ = run.id;
    const ActionState& step = run.definition().steps[run.info.current_step];
    telemetry_->metrics
        .counter("flow_polls_total", "Completion polls issued by the flow "
                                     "orchestrator, by provider",
                 provider_labels(step.provider))
        .inc();
  }

  ActionPollResult poll = provider->poll(run.current_handle);
  switch (poll.status) {
    case ActionStatus::Active: {
      if (!run.subscribed && !poll.progress_token.empty() &&
          poll.progress_token != run.last_progress_token) {
        // Observed a service-side status transition: restart the backoff.
        // Subscribed attempts skip the reset — their polls are only a sparse
        // safety net behind the completion notification.
        run.last_progress_token = poll.progress_token;
        run.poll_attempt = 0;
      } else {
        ++run.poll_attempt;
      }
      double wait = active_poll_policy().interval_s(
          run.poll_attempt, run.backoff_salt ^ run.epoch);
      Run* r = &run;
      engine_->post_after(sim::Duration::from_seconds(wait),
                          [r, epoch] { r->svc->poll_step(*r, epoch); });
      return;
    }
    case ActionStatus::Failed: {
      const ActionState& step = run.definition().steps[run.info.current_step];
      active_step_span_ = run.step_span;
      active_run_ = run.id;  // breaker-transition context
      breaker_for(run.cur_pid).record_failure(engine_->now());
      step_attempt_failed(run, "step " + step.name + " failed: " + poll.error,
                          0);
      return;
    }
    case ActionStatus::Succeeded: {
      complete_step(run, std::move(poll));
      return;
    }
  }
}

void FlowService::timeout_step(Run& run, uint64_t epoch) {
  if (run.info.state != RunState::Active) return;
  if (run.epoch != epoch) return;  // attempt already settled or superseded

  const ActionState& step = run.definition().steps[run.info.current_step];
  run.flush_polls();
  run.timing.steps[run.info.current_step].timeouts += 1;
  ++total_timeouts_;
  if (telemetry_) {
    active_step_span_ = run.step_span;
    active_run_ = run.id;
  }
  if (telemetry_) {
    telemetry_->metrics
        .counter("flow_timeouts_total",
                 "Step attempts abandoned via per-step timeout, by provider",
                 provider_labels(step.provider))
        .inc();
    telemetry_->tracer.event(run.step_span, "timeout", engine_->now(),
                             util::Json::object({
                                 {"provider", step.provider},
                                 {"timeout_s", step.timeout_s},
                             }));
    flight_event(run.id, util::LogLevel::Warn, "timeout",
                 util::Json::object({
                     {"step", step.name},
                     {"provider", step.provider},
                     {"timeout_s", step.timeout_s},
                 }));
  }
  breaker_for(run.step_pids[run.info.current_step])
      .record_failure(engine_->now());
  logger().warn("%s: step %s timed out after %.1fs (attempt abandoned)",
                run.id.c_str(), step.name.c_str(), step.timeout_s);
  step_attempt_failed(
      run,
      "step " + step.name + " timed out after " +
          util::format("%.1f", step.timeout_s) + "s",
      0);
}

void FlowService::on_notification(Run& run, uint64_t epoch) {
  if (run.info.state != RunState::Active || run.epoch != epoch) return;
  const ActionState& step = run.definition().steps[run.info.current_step];
  if (telemetry_) {
    telemetry_->metrics
        .counter("flow_notifications_total",
                 "Completion notifications emitted by providers, by provider",
                 provider_labels(step.provider))
        .inc();
  }
  if (notification_loss_prob_ > 0 && rng_.chance(notification_loss_prob_)) {
    // Dropped on the wire: the reconcile poller discovers the completion.
    if (telemetry_) {
      telemetry_->metrics
          .counter("flow_notifications_lost_total",
                   "Completion notifications dropped before delivery, "
                   "by provider",
                   provider_labels(step.provider))
          .inc();
      if (run.step_span != 0) {
        telemetry_->tracer.event(run.step_span, "notification-lost",
                                 engine_->now(),
                                 util::Json::object({
                                     {"provider", step.provider},
                                 }));
        flight_event(run.id, util::LogLevel::Warn, "notification-lost",
                     util::Json::object({{"provider", step.provider}}));
      }
    }
    logger().debug("%s: completion notification lost (step %s)",
                   run.id.c_str(), step.name.c_str());
    return;
  }
  double delay = jittered(config_.notification_latency_s);
  Run* r = &run;
  engine_->post_after(
      sim::Duration::from_seconds(delay), [r, epoch, delay] {
        if (r->info.state != RunState::Active || r->epoch != epoch) return;
        ++r->timing.steps[r->info.current_step].notifications;
        FlowService* svc = r->svc;
        if (svc->telemetry_) {
          svc->telemetry_->metrics
              .histogram("flow_notification_latency_seconds",
                         "Delivery latency of consumed completion "
                         "notifications")
              .observe(delay);
        }
        // The delivered notification carries no verdict: poll once to learn
        // the outcome (this also counts toward provider poll load).
        svc->poll_step(*r, epoch);
      });
}

void FlowService::on_stream_progress(Run& run, uint64_t epoch) {
  if (run.info.state != RunState::Active || run.epoch != epoch) return;
  if (!run.pre_handle.empty()) return;  // already pre-dispatched
  size_t next_idx = run.info.current_step + 1;
  if (next_idx >= run.definition().steps.size()) return;
  const ActionState& next = run.definition().steps[next_idx];
  ActionProvider* provider = providers_[run.step_pids[next_idx]];
  if (!provider->supports_held_start()) return;

  // NOTE: "$.steps.<current>.*" references resolve to null here — the
  // current step has no output yet. Streaming steps must template from
  // "$.input.*" only (definition_io validates this).
  util::Json resolved =
      resolve_params(next.params, run.info.input, run.info.step_outputs);
  resolved["flow_attempt_epoch"] = static_cast<int64_t>(run.epoch);
  sim::SimTime t0 = engine_->now();
  uint64_t step_span = 0, attempt_span = 0;
  if (telemetry_) {
    step_span = telemetry_->tracer.open("flow", run.id + "/" + next.name,
                                        run.run_span);
    attempt_span = telemetry_->tracer.open(
        "flow", run.id + "/" + next.name + "#0", step_span);
  }
  util::Result<ActionHandle> handle = [&] {
    if (!telemetry_) return provider->start_held(resolved, run.token);
    telemetry::Tracer::Scope scope(telemetry_->tracer, attempt_span);
    telemetry::health::FlightRecorder::Scope fscope(telemetry_->flight,
                                                    run.id);
    return provider->start_held(resolved, run.token);
  }();
  if (!handle) {
    // Held start refused: fall back to serialized dispatch after the current
    // step settles. Close the speculative spans so the tree stays balanced.
    if (telemetry_) {
      telemetry_->tracer.close(attempt_span, "attempt", t0, engine_->now(),
                               util::Json::object({
                                   {"provider", next.provider},
                                   {"outcome", "held-start-failed"},
                                   {"error", handle.error().message},
                               }));
      telemetry_->tracer.close(step_span, "step-abandoned", t0, engine_->now(),
                               util::Json::object({{"step", next.name}}));
    }
    logger().debug("%s: held pre-dispatch of %s refused (%s)", run.id.c_str(),
                   next.name.c_str(), handle.error().message.c_str());
    return;
  }
  run.pre_handle = handle.value();
  run.pre_step = next_idx;
  run.pre_dispatched = t0;
  run.pre_step_span = step_span;
  run.pre_attempt_span = attempt_span;
  if (telemetry_) {
    telemetry_->metrics
        .counter("flow_stream_predispatch_total",
                 "Next-step actions pre-dispatched (held) on first-chunk "
                 "progress, by step",
                 {{"step", next.name}})
        .inc();
    if (run.step_span != 0) {
      telemetry_->tracer.event(run.step_span, "stream-predispatch", t0,
                               util::Json::object({{"next", next.name}}));
    }
  }
  logger().debug("%s: pre-dispatched %s (held) on first-chunk progress",
                 run.id.c_str(), next.name.c_str());
}

void FlowService::activate_prestarted(Run& run) {
  if (run.info.state != RunState::Active) return;
  if (run.pre_handle.empty() || run.pre_step != run.info.current_step) {
    dispatch_step(run);  // pre-dispatch evaporated: serialized fallback
    return;
  }
  const ActionState& step = run.definition().steps[run.info.current_step];
  ActionProvider* provider = providers_[run.step_pids[run.info.current_step]];

  StepTiming timing;
  timing.name = step.name;
  timing.dispatched = run.pre_dispatched;
  timing.streamed = true;
  if (run.timing.steps.size() <= run.info.current_step) {
    run.timing.steps.push_back(timing);
  }
  // Adopt the speculative spans as the live step/attempt spans.
  run.step_span = run.pre_step_span;
  run.attempt_span = run.pre_attempt_span;
  run.attempt_started = run.pre_dispatched;
  active_step_span_ = run.step_span;
  run.current_handle = run.pre_handle;
  run.pre_handle.clear();
  run.pre_step_span = 0;
  run.pre_attempt_span = 0;
  run.poll_attempt = 0;
  run.last_progress_token.clear();
  run.subscribed = false;
  uint64_t epoch = ++run.epoch;
  Run* r = &run;

  // Release the held action (it starts charging residual cost now, crediting
  // the overlap already elapsed), then wire up completion signaling exactly
  // like a fresh dispatch. The breaker gate is skipped: the action already
  // started successfully when it was held.
  provider->release(run.current_handle);
  if (config_.completion_mode == CompletionMode::Events) {
    run.subscribed = provider->subscribe(
        run.current_handle, [r, epoch] { r->svc->on_notification(*r, epoch); });
  }
  if (telemetry_) {
    telemetry_->metrics
        .counter("flow_streamed_steps_total",
                 "Steps activated from a cut-through pre-dispatch, by step",
                 {{"step", step.name}})
        .inc();
  }
  double wait =
      active_poll_policy().interval_s(0, run.backoff_salt ^ run.epoch);
  engine_->post_after(sim::Duration::from_seconds(wait),
                      [r, epoch] { r->svc->poll_step(*r, epoch); });
  if (step.timeout_s > 0) {
    // Cancellable handle, not fire-and-forget: long step timeouts (hours of
    // virtual time) would otherwise outlive the run and dominate the queue.
    run.timeout_handle = engine_->schedule_after(
        sim::Duration::from_seconds(step.timeout_s),
        [r, epoch] { r->svc->timeout_step(*r, epoch); });
  }
}

void FlowService::abandon_prestart(Run& run) {
  if (run.pre_handle.empty()) return;
  const ActionState& step = run.definition().steps[run.pre_step];
  // Let the held service work run to completion unobserved, like any
  // abandoned action — release frees the held resources.
  providers_[run.step_pids[run.pre_step]]->release(run.pre_handle);
  if (telemetry_) {
    if (run.pre_attempt_span != 0) {
      telemetry_->tracer.close(run.pre_attempt_span, "attempt",
                               run.pre_dispatched, engine_->now(),
                               util::Json::object({
                                   {"provider", step.provider},
                                   {"outcome", "abandoned"},
                               }));
    }
    if (run.pre_step_span != 0) {
      telemetry_->tracer.close(run.pre_step_span, "step-abandoned",
                               run.pre_dispatched, engine_->now(),
                               util::Json::object({{"step", step.name}}));
    }
  }
  run.pre_handle.clear();
  run.pre_step_span = 0;
  run.pre_attempt_span = 0;
}

void FlowService::step_attempt_failed(Run& run, const std::string& error,
                                      double retry_delay_s) {
  if (run.info.state != RunState::Active) return;
  const ActionState& step = run.definition().steps[run.info.current_step];
  run.flush_polls();
  uint64_t epoch = ++run.epoch;  // abandon the failed attempt's events
  run.timeout_handle.cancel();

  if (telemetry_) {
    active_step_span_ = run.step_span;
    active_run_ = run.id;
  }
  if (telemetry_ && run.attempt_span != 0) {
    telemetry_->tracer.close(run.attempt_span, "attempt", run.attempt_started,
                             engine_->now(),
                             util::Json::object({
                                 {"provider", step.provider},
                                 {"outcome", "failed"},
                                 {"error", error},
                             }));
    run.attempt_span = 0;
  }

  if (run.retries_this_step >= step.max_retries) {
    fail_run(run, error);
    return;
  }
  ++run.retries_this_step;
  if (telemetry_) {
    telemetry_->metrics
        .counter("flow_retries_total",
                 "Step attempt re-dispatches after failure, by provider",
                 provider_labels(step.provider))
        .inc();
    telemetry_->tracer.event(run.step_span, "retry", engine_->now(),
                             util::Json::object({
                                 {"retry", run.retries_this_step},
                                 {"error", error},
                             }));
    flight_event(run.id, util::LogLevel::Warn, "retry",
                 util::Json::object({
                     {"step", step.name},
                     {"retry", run.retries_this_step},
                     {"error", error},
                 }));
  }
  logger().debug("%s: step %s attempt failed (%s), retry %d", run.id.c_str(),
                 step.name.c_str(), error.c_str(), run.retries_this_step);
  if (retry_delay_s <= 0) {
    dispatch_step(run);
    return;
  }
  Run* r = &run;
  engine_->post_after(
      sim::Duration::from_seconds(retry_delay_s), [r, epoch] {
        if (r->info.state != RunState::Active || r->epoch != epoch) return;
        r->svc->dispatch_step(*r);
      });
}

void FlowService::complete_step(Run& run, ActionPollResult poll) {
  const ActionState& step = run.definition().steps[run.info.current_step];
  run.flush_polls();
  ++run.epoch;  // invalidate any pending timeout for this attempt
  run.timeout_handle.cancel();
  if (telemetry_) {
    active_step_span_ = run.step_span;
    active_run_ = run.id;
  }
  breaker_for(run.cur_pid).record_success(engine_->now());
  StepTiming& timing = run.timing.steps[run.info.current_step];
  timing.service_started = poll.service_started;
  timing.service_completed = poll.service_completed;
  timing.discovered = engine_->now();
  run.info.step_outputs[step.name] = std::move(poll.output);
  if (telemetry_) {
    if (run.attempt_span != 0) {
      telemetry_->tracer.close(run.attempt_span, "attempt",
                               run.attempt_started, engine_->now(),
                               util::Json::object({
                                   {"provider", step.provider},
                                   {"outcome", "ok"},
                               }));
      run.attempt_span = 0;
    }
    close_step_span(run, "step");
    telemetry_->metrics
        .histogram("flow_step_active_seconds",
                   "Service-side active time per completed step",
                   {{"step", step.name}})
        .observe(timing.active_s());
    telemetry_->metrics
        .histogram("flow_step_overhead_seconds",
                   "Orchestration overhead (dispatch->discovery minus active) "
                   "per completed step",
                   {{"step", step.name}})
        .observe(std::max(
            0.0, (timing.discovered - timing.dispatched).seconds() -
                     timing.active_s()));
    telemetry_->metrics
        .histogram("flow_discovery_lag_seconds",
                   "Poll-discovery lag between service completion and the "
                   "orchestrator observing it")
        .observe(timing.discovery_lag_s());
    flight_event(run.id, util::LogLevel::Info, "step-complete",
                 util::Json::object({
                     {"step", step.name},
                     {"active_s", timing.active_s()},
                     {"polls", timing.polls},
                 }));
  } else if (trace_) {
    trace_->add(sim::Span{"flow", "step", run.id + "/" + step.name,
                          timing.dispatched, timing.discovered,
                          util::Json::object({
                              {"active_s", timing.active_s()},
                              {"lag_s", timing.discovery_lag_s()},
                              {"polls", timing.polls},
                          })});
  }

  run.info.current_step += 1;
  run.retries_this_step = 0;
  publish_status(run);
  if (run.info.current_step >= run.definition().steps.size()) {
    finish_run(run);
  } else {
    // Events mode advances inside the notification callback instead of
    // waiting for the next scheduler tick, so the inter-step hop shrinks.
    double hop = config_.completion_mode == CompletionMode::Events
                     ? config_.event_inter_step_latency_s
                     : config_.inter_step_latency_s;
    bool streamed_next =
        !run.pre_handle.empty() && run.pre_step == run.info.current_step;
    Run* r = &run;
    engine_->post_after(sim::Duration::from_seconds(jittered(hop)),
                        [r, streamed_next] {
                          if (streamed_next) {
                            r->svc->activate_prestarted(*r);
                          } else {
                            r->svc->dispatch_step(*r);
                          }
                        });
  }
}

util::Status FlowService::cancel(const RunId& id) {
  Run* run = runs_.find(id);
  if (!run) return util::Status::err("unknown run " + id, "not_found");
  RunState state = run->info.state;
  if (state == RunState::Succeeded || state == RunState::Failed) {
    return util::Status::err("run " + id + " already settled", "state");
  }
  // Poll/dispatch callbacks check info.state and bail once it leaves Active,
  // so flipping the state here is sufficient to quiesce the run.
  fail_run(*run, "cancelled by user");
  return util::Status::ok();
}

void FlowService::fail_run(Run& run, const std::string& error) {
  run.flush_polls();
  ++run.epoch;  // abandon any scheduled poll/timeout events
  run.timeout_handle.cancel();
  run.info.state = RunState::Failed;
  run.info.error = error;
  run.timing.finished = engine_->now();
  publish_status(run);
  active_count_.fetch_sub(1, std::memory_order_relaxed);
  abandon_prestart(run);
  // Close spans before the finished callback: campaign drivers rebuild the
  // run's timing from the span tree inside that callback.
  if (telemetry_) {
    if (run.attempt_span != 0) {
      telemetry_->tracer.close(run.attempt_span, "attempt",
                               run.attempt_started, engine_->now(),
                               util::Json::object({
                                   {"outcome", "abandoned"},
                                   {"error", error},
                               }));
      run.attempt_span = 0;
    }
    close_step_span(run, "step-failed");
    close_run_span(run, "run-failed");
    telemetry_->metrics
        .counter("flow_runs_total", "Flow runs settled, by terminal state",
                 {{"state", "failed"}})
        .inc();
    telemetry_->metrics
        .gauge("flow_active_runs", "Flow runs submitted but not yet settled")
        .add(-1.0);
    // Error-level event marks the ring dump-worthy; close() delivers the
    // JSON dump to the recorder's sink.
    flight_event(run.id, util::LogLevel::Error, "run-failed",
                 util::Json::object({
                     {"error", error},
                     {"total_s", run.timing.total_s()},
                 }));
    telemetry_->flight.close(run.id, engine_->now());
  }
  logger().warn("%s failed: %s", run.id.c_str(), error.c_str());
  if (run.finished_cb) run.finished_cb(run.id, run.info);
}

void FlowService::finish_run(Run& run) {
  run.info.state = RunState::Succeeded;
  run.timing.finished = engine_->now();
  publish_status(run);
  active_count_.fetch_sub(1, std::memory_order_relaxed);
  logger().debug("%s succeeded: total %.1fs active %.1fs overhead %.1fs",
                 run.id.c_str(), run.timing.total_s(), run.timing.active_s(),
                 run.timing.overhead_s());
  if (telemetry_) {
    close_run_span(run, "run");
    telemetry_->metrics
        .counter("flow_runs_total", "Flow runs settled, by terminal state",
                 {{"state", "succeeded"}})
        .inc();
    telemetry_->metrics
        .histogram("flow_run_total_seconds",
                   "End-to-end wall time per succeeded run")
        .observe(run.timing.total_s());
    telemetry_->metrics
        .histogram("flow_run_overhead_seconds",
                   "Total orchestration overhead per succeeded run")
        .observe(run.timing.overhead_s());
    if (slow_run_threshold_s_ > 0 &&
        run.timing.total_s() > slow_run_threshold_s_) {
      telemetry_->metrics
          .counter("flow_runs_slow_total",
                   "Succeeded runs slower than the SLO completion-latency "
                   "objective")
          .inc();
      flight_event(run.id, util::LogLevel::Warn, "slo-slow",
                   util::Json::object({
                       {"total_s", run.timing.total_s()},
                       {"objective_s", slow_run_threshold_s_},
                   }));
    }
    telemetry_->metrics
        .gauge("flow_active_runs", "Flow runs submitted but not yet settled")
        .add(-1.0);
    flight_event(run.id, util::LogLevel::Info, "run-succeeded",
                 util::Json::object({
                     {"total_s", run.timing.total_s()},
                     {"overhead_s", run.timing.overhead_s()},
                 }));
    telemetry_->flight.close(run.id, engine_->now());
  } else if (trace_) {
    trace_->add(sim::Span{"flow", "run", run.id, run.timing.submitted,
                          run.timing.finished,
                          util::Json::object({
                              {"active_s", run.timing.active_s()},
                              {"overhead_s", run.timing.overhead_s()},
                              {"label", run.info.label},
                          })});
  }
  if (run.finished_cb) run.finished_cb(run.id, run.info);
}

void FlowService::close_step_span(Run& run, const std::string& category) {
  if (!telemetry_ || run.step_span == 0) return;
  uint64_t span = run.step_span;
  run.step_span = 0;
  if (active_step_span_ == span) active_step_span_ = 0;
  if (run.info.current_step >= run.timing.steps.size()) return;
  const StepTiming& t = run.timing.steps[run.info.current_step];
  sim::SimTime end = category == "step" ? t.discovered : engine_->now();
  // Every StepTiming field rides as an integer-ns attribute so RunTiming can
  // be reconstructed exactly (bit-for-bit) from the span tree.
  telemetry_->tracer.close(span, category, t.dispatched, end,
                           util::Json::object({
                               {"active_s", t.active_s()},
                               {"lag_s", t.discovery_lag_s()},
                               {"polls", t.polls},
                               {"retries", t.retries},
                               {"timeouts", t.timeouts},
                               {"notifications", t.notifications},
                               {"streamed", t.streamed ? 1 : 0},
                               {"step", t.name},
                               {"dispatched_ns", t.dispatched.ns},
                               {"service_started_ns", t.service_started.ns},
                               {"service_completed_ns", t.service_completed.ns},
                               {"discovered_ns", t.discovered.ns},
                           }));
}

void FlowService::close_run_span(Run& run, const std::string& category) {
  if (!telemetry_ || run.run_span == 0) return;
  uint64_t span = run.run_span;
  run.run_span = 0;
  telemetry_->tracer.close(span, category, run.timing.submitted,
                           run.timing.finished,
                           util::Json::object({
                               {"active_s", run.timing.active_s()},
                               {"overhead_s", run.timing.overhead_s()},
                               {"label", run.info.label},
                               {"error", run.info.error},
                               {"submitted_ns", run.timing.submitted.ns},
                               {"finished_ns", run.timing.finished.ns},
                           }));
}

const RunInfo& FlowService::info(const RunId& id) const {
  static const RunInfo kMissing = [] {
    RunInfo r;
    r.state = RunState::Failed;
    r.error = "unknown run";
    return r;
  }();
  const Run* run = runs_.find(id);
  return run ? run->info : kMissing;
}

const RunTiming& FlowService::timing(const RunId& id) const {
  static const RunTiming kMissing;
  const Run* run = runs_.find(id);
  if (!run) return kMissing;
  // Fold the hot-block poll counter in so a mid-run snapshot is exact.
  const_cast<Run*>(run)->flush_polls();
  return run->timing;
}

RunStatus FlowService::status(const RunId& id) const {
  RunStatus out;
  const Run* run = runs_.find(id);
  if (!run) return out;
  RunStatusCell::Snapshot snap = run->cell.read();
  out.known = true;
  out.state = static_cast<RunState>(snap.state);
  out.current_step = snap.current_step;
  out.submitted = sim::SimTime{snap.submitted_ns};
  out.finished = sim::SimTime{snap.finished_ns};
  return out;
}

const RunStatusCell* FlowService::status_cell(const RunId& id) const {
  const Run* run = runs_.find(id);
  return run ? &run->cell : nullptr;
}

bool timing_from_spans(const sim::Trace& trace, const RunId& id,
                       RunTiming* out) {
  const sim::Span* run = trace.find("flow", "run", id);
  if (!run) run = trace.find("flow", "run-failed", id);
  if (!run || run->span_id == 0) return false;

  RunTiming t;
  t.submitted = sim::SimTime{run->attrs.at("submitted_ns").as_int()};
  t.finished = sim::SimTime{run->attrs.at("finished_ns").as_int()};
  // Step spans close in dispatch order (the orchestrator is sequential per
  // run), so recording order is step order.
  for (const sim::Span* child : trace.children_of(run->span_id)) {
    if (child->component != "flow") continue;
    if (child->category != "step" && child->category != "step-failed") continue;
    StepTiming s;
    s.name = child->attrs.at("step").as_string();
    s.dispatched = sim::SimTime{child->attrs.at("dispatched_ns").as_int()};
    s.service_started =
        sim::SimTime{child->attrs.at("service_started_ns").as_int()};
    s.service_completed =
        sim::SimTime{child->attrs.at("service_completed_ns").as_int()};
    s.discovered = sim::SimTime{child->attrs.at("discovered_ns").as_int()};
    s.polls = static_cast<int>(child->attrs.at("polls").as_int());
    s.retries = static_cast<int>(child->attrs.at("retries").as_int());
    s.timeouts = static_cast<int>(child->attrs.at("timeouts").as_int());
    s.notifications =
        static_cast<int>(child->attrs.at("notifications").as_int());
    s.streamed = child->attrs.at("streamed").as_int() != 0;
    t.steps.push_back(std::move(s));
  }
  *out = std::move(t);
  return true;
}

void FlowService::on_finished(
    const RunId& id, std::function<void(const RunId&, const RunInfo&)> cb) {
  Run* run = runs_.find(id);
  if (!run) return;
  if (run->info.state == RunState::Succeeded ||
      run->info.state == RunState::Failed) {
    cb(id, run->info);
  } else {
    run->finished_cb = std::move(cb);
  }
}

size_t FlowService::active_runs() const {
  return active_count_.load(std::memory_order_relaxed);
}

std::vector<RunId> FlowService::all_runs() const {
  return runs_.ids_in_order();
}

CircuitBreaker& FlowService::breaker_for(uint16_t pid) {
  std::unique_ptr<CircuitBreaker>& slot = breakers_[pid];
  if (!slot) {
    slot = std::make_unique<CircuitBreaker>(config_.breaker);
    // Observer installed unconditionally; the handler no-ops when telemetry
    // is absent, so install order vs set_telemetry() does not matter.
    slot->set_observer([this, pid](CircuitBreaker::State from,
                                   CircuitBreaker::State to, sim::SimTime at) {
      on_breaker_transition(provider_names_[pid], from, to, at);
    });
  }
  return *slot;
}

std::vector<BreakerSnapshot> FlowService::breaker_snapshots() const {
  std::vector<BreakerSnapshot> out;
  out.reserve(breakers_.size());
  for (size_t pid = 0; pid < breakers_.size(); ++pid) {
    if (!breakers_[pid]) continue;
    BreakerSnapshot snap;
    snap.site = site_;
    snap.provider = provider_names_[pid];
    snap.trips = breakers_[pid]->trips();
    snap.consecutive_failures = breakers_[pid]->consecutive_failures();
    snap.state =
        CircuitBreaker::state_name(breakers_[pid]->state(engine_->now()));
    out.push_back(std::move(snap));
  }
  // Registration order is arbitrary; reports expect the old map's
  // name-sorted order.
  std::sort(out.begin(), out.end(),
            [](const BreakerSnapshot& a, const BreakerSnapshot& b) {
              return a.provider < b.provider;
            });
  return out;
}

double FlowService::breaker_retry_after_s(const std::string& provider) const {
  auto it = provider_ids_.find(provider);
  if (it == provider_ids_.end() || !breakers_[it->second]) return 0.0;
  return breakers_[it->second]->peek_retry_after_s(engine_->now());
}

}  // namespace pico::flow

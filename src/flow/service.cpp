#include "flow/service.hpp"

#include <cassert>

#include "util/log.hpp"
#include "util/strings.hpp"

namespace pico::flow {
namespace {
util::Logger& logger() {
  static util::Logger kLogger("flow");
  return kLogger;
}
}  // namespace

std::string run_state_name(RunState s) {
  switch (s) {
    case RunState::Pending: return "PENDING";
    case RunState::Active: return "ACTIVE";
    case RunState::Succeeded: return "SUCCEEDED";
    case RunState::Failed: return "FAILED";
  }
  return "?";
}

FlowService::FlowService(sim::Engine* engine, auth::AuthService* auth,
                         FlowServiceConfig config, uint64_t seed,
                         sim::Trace* trace)
    : engine_(engine),
      auth_(auth),
      config_(config),
      rng_(seed),
      trace_(trace) {}

void FlowService::register_provider(ActionProvider* provider) {
  providers_[provider->name()] = provider;
}

double FlowService::jittered(double base) {
  double f = config_.latency_jitter_frac;
  return std::max(0.05, base * rng_.uniform(1.0 - f, 1.0 + f));
}

util::Result<RunId> FlowService::start(const FlowDefinition& definition,
                                       util::Json input,
                                       const auth::Token& token,
                                       const std::string& label) {
  using R = util::Result<RunId>;
  auto who = auth_->validate(token, "flows");
  if (!who) return R::err(who.error());
  if (definition.steps.empty()) return R::err("flow has no steps", "invalid");
  for (const auto& step : definition.steps) {
    if (!providers_.count(step.provider)) {
      return R::err("unknown provider: " + step.provider, "not_found");
    }
  }

  RunId id = util::format("run-%06llu", static_cast<unsigned long long>(next_run_++));
  Run run;
  run.definition = definition;
  run.info.label = label.empty() ? id : label;
  run.info.input = std::move(input);
  run.timing.submitted = engine_->now();
  run.token = token;
  runs_[id] = std::move(run);

  engine_->schedule_after(
      sim::Duration::from_seconds(jittered(config_.start_latency_s)),
      [this, id] {
        auto it = runs_.find(id);
        if (it == runs_.end() || it->second.info.state != RunState::Pending) {
          return;  // cancelled before the service picked it up
        }
        it->second.info.state = RunState::Active;
        dispatch_step(id);
      });
  logger().debug("%s started (%s, %zu steps)", id.c_str(),
                 definition.name.c_str(), definition.steps.size());
  return R::ok(id);
}

util::Json FlowService::resolve_params(
    const util::Json& params, const util::Json& input,
    const std::map<std::string, util::Json>& steps) {
  using util::Json;
  switch (params.type()) {
    case Json::Type::String: {
      const std::string& s = params.as_string();
      if (s == "$.input") return input;
      if (util::starts_with(s, "$.input.")) {
        return input.at_path(s.substr(8));
      }
      if (util::starts_with(s, "$.steps.")) {
        std::string rest = s.substr(8);
        size_t dot = rest.find('.');
        std::string step = dot == std::string::npos ? rest : rest.substr(0, dot);
        auto it = steps.find(step);
        if (it == steps.end()) return Json();
        if (dot == std::string::npos) return it->second;
        return it->second.at_path(rest.substr(dot + 1));
      }
      return params;
    }
    case Json::Type::Array: {
      Json out = Json::array();
      for (const auto& v : params.as_array()) {
        out.push_back(resolve_params(v, input, steps));
      }
      return out;
    }
    case Json::Type::Object: {
      Json out = Json::object();
      for (const auto& [k, v] : params.as_object()) {
        out[k] = resolve_params(v, input, steps);
      }
      return out;
    }
    default:
      return params;
  }
}

void FlowService::dispatch_step(const RunId& id) {
  auto it = runs_.find(id);
  if (it == runs_.end()) return;
  Run& run = it->second;
  if (run.info.state != RunState::Active) return;  // cancelled/settled
  if (run.info.current_step >= run.definition.steps.size()) {
    finish_run(id);
    return;
  }
  const ActionState& step = run.definition.steps[run.info.current_step];
  ActionProvider* provider = providers_.at(step.provider);

  util::Json resolved =
      resolve_params(step.params, run.info.input, run.info.step_outputs);

  StepTiming timing;
  timing.name = step.name;
  timing.dispatched = engine_->now();
  timing.retries = run.retries_this_step;
  if (run.timing.steps.size() <= run.info.current_step) {
    run.timing.steps.push_back(timing);
  } else {
    // Retry: keep the original dispatch time, bump the retry counter.
    run.timing.steps[run.info.current_step].retries = run.retries_this_step;
  }

  // Circuit-breaker gate: while the provider's breaker is open, fail fast —
  // the wait consumes one retry and the re-dispatch lands when the breaker
  // half-opens, so a down service sees probes instead of a retry storm.
  CircuitBreaker& breaker = breaker_for(step.provider);
  double open_wait = breaker.retry_after_s(engine_->now());
  if (open_wait > 0) {
    uint64_t epoch = ++run.epoch;
    if (run.retries_this_step < step.max_retries) {
      ++run.retries_this_step;
      run.timing.steps[run.info.current_step].retries = run.retries_this_step;
      logger().debug("%s: breaker open for %s, retry %d deferred %.1fs",
                     id.c_str(), step.provider.c_str(), run.retries_this_step,
                     open_wait);
      engine_->schedule_after(
          sim::Duration::from_seconds(open_wait + jittered(0.5)),
          [this, id, epoch] {
            auto it2 = runs_.find(id);
            if (it2 == runs_.end() ||
                it2->second.info.state != RunState::Active ||
                it2->second.epoch != epoch) {
              return;
            }
            dispatch_step(id);
          });
    } else {
      fail_run(id, "step " + step.name + ": circuit open for provider " +
                       step.provider);
    }
    return;
  }

  auto handle = provider->start(resolved, run.token);
  if (!handle) {
    breaker.record_failure(engine_->now());
    step_attempt_failed(id,
                        "step " + step.name + " failed to start: " +
                            handle.error().message,
                        jittered(config_.inter_step_latency_s));
    return;
  }
  run.current_handle = handle.value();
  run.poll_attempt = 0;
  run.last_progress_token.clear();
  uint64_t epoch = ++run.epoch;

  // First poll after the initial backoff interval.
  double wait = config_.backoff.interval_s(0, rng_);
  engine_->schedule_after(sim::Duration::from_seconds(wait),
                          [this, id, epoch] { poll_step(id, epoch); });
  if (step.timeout_s > 0) {
    engine_->schedule_after(sim::Duration::from_seconds(step.timeout_s),
                            [this, id, epoch] { timeout_step(id, epoch); });
  }
}

void FlowService::poll_step(const RunId& id, uint64_t epoch) {
  auto it = runs_.find(id);
  if (it == runs_.end()) return;
  Run& run = it->second;
  if (run.info.state != RunState::Active) return;
  if (run.epoch != epoch) return;  // attempt superseded (timeout/retry)

  const ActionState& step = run.definition.steps[run.info.current_step];
  ActionProvider* provider = providers_.at(step.provider);
  StepTiming& timing = run.timing.steps[run.info.current_step];
  ++timing.polls;

  ActionPollResult poll = provider->poll(run.current_handle);
  switch (poll.status) {
    case ActionStatus::Active: {
      if (!poll.progress_token.empty() &&
          poll.progress_token != run.last_progress_token) {
        // Observed a service-side status transition: restart the backoff.
        run.last_progress_token = poll.progress_token;
        run.poll_attempt = 0;
      } else {
        ++run.poll_attempt;
      }
      double wait = config_.backoff.interval_s(run.poll_attempt, rng_);
      engine_->schedule_after(sim::Duration::from_seconds(wait),
                              [this, id, epoch] { poll_step(id, epoch); });
      return;
    }
    case ActionStatus::Failed: {
      breaker_for(step.provider).record_failure(engine_->now());
      step_attempt_failed(id, "step " + step.name + " failed: " + poll.error,
                          0);
      return;
    }
    case ActionStatus::Succeeded: {
      complete_step(id, poll);
      return;
    }
  }
}

void FlowService::timeout_step(const RunId& id, uint64_t epoch) {
  auto it = runs_.find(id);
  if (it == runs_.end()) return;
  Run& run = it->second;
  if (run.info.state != RunState::Active) return;
  if (run.epoch != epoch) return;  // attempt already settled or superseded

  const ActionState& step = run.definition.steps[run.info.current_step];
  run.timing.steps[run.info.current_step].timeouts += 1;
  ++total_timeouts_;
  breaker_for(step.provider).record_failure(engine_->now());
  logger().warn("%s: step %s timed out after %.1fs (attempt abandoned)",
                id.c_str(), step.name.c_str(), step.timeout_s);
  step_attempt_failed(
      id,
      "step " + step.name + " timed out after " +
          util::format("%.1f", step.timeout_s) + "s",
      0);
}

void FlowService::step_attempt_failed(const RunId& id, const std::string& error,
                                      double retry_delay_s) {
  auto it = runs_.find(id);
  if (it == runs_.end()) return;
  Run& run = it->second;
  if (run.info.state != RunState::Active) return;
  const ActionState& step = run.definition.steps[run.info.current_step];
  uint64_t epoch = ++run.epoch;  // abandon the failed attempt's events

  if (run.retries_this_step >= step.max_retries) {
    fail_run(id, error);
    return;
  }
  ++run.retries_this_step;
  logger().debug("%s: step %s attempt failed (%s), retry %d", id.c_str(),
                 step.name.c_str(), error.c_str(), run.retries_this_step);
  if (retry_delay_s <= 0) {
    dispatch_step(id);
    return;
  }
  engine_->schedule_after(
      sim::Duration::from_seconds(retry_delay_s), [this, id, epoch] {
        auto it2 = runs_.find(id);
        if (it2 == runs_.end() || it2->second.info.state != RunState::Active ||
            it2->second.epoch != epoch) {
          return;
        }
        dispatch_step(id);
      });
}

void FlowService::complete_step(const RunId& id, const ActionPollResult& poll) {
  auto it = runs_.find(id);
  if (it == runs_.end()) return;
  Run& run = it->second;
  const ActionState& step = run.definition.steps[run.info.current_step];
  ++run.epoch;  // invalidate any pending timeout for this attempt
  breaker_for(step.provider).record_success();
  StepTiming& timing = run.timing.steps[run.info.current_step];
  timing.service_started = poll.service_started;
  timing.service_completed = poll.service_completed;
  timing.discovered = engine_->now();
  run.info.step_outputs[step.name] = poll.output;
  if (trace_) {
    trace_->add(sim::Span{"flow", "step", id + "/" + step.name,
                          timing.dispatched, timing.discovered,
                          util::Json::object({
                              {"active_s", timing.active_s()},
                              {"lag_s", timing.discovery_lag_s()},
                              {"polls", timing.polls},
                          })});
  }

  run.info.current_step += 1;
  run.retries_this_step = 0;
  if (run.info.current_step >= run.definition.steps.size()) {
    finish_run(id);
  } else {
    engine_->schedule_after(
        sim::Duration::from_seconds(jittered(config_.inter_step_latency_s)),
        [this, id] { dispatch_step(id); });
  }
}

util::Status FlowService::cancel(const RunId& id) {
  auto it = runs_.find(id);
  if (it == runs_.end()) return util::Status::err("unknown run " + id, "not_found");
  RunState state = it->second.info.state;
  if (state == RunState::Succeeded || state == RunState::Failed) {
    return util::Status::err("run " + id + " already settled", "state");
  }
  // Poll/dispatch callbacks check info.state and bail once it leaves Active,
  // so flipping the state here is sufficient to quiesce the run.
  fail_run(id, "cancelled by user");
  return util::Status::ok();
}

void FlowService::fail_run(const RunId& id, const std::string& error) {
  auto it = runs_.find(id);
  if (it == runs_.end()) return;
  Run& run = it->second;
  ++run.epoch;  // abandon any scheduled poll/timeout events
  run.info.state = RunState::Failed;
  run.info.error = error;
  run.timing.finished = engine_->now();
  logger().warn("%s failed: %s", id.c_str(), error.c_str());
  if (run.finished_cb) run.finished_cb(id, run.info);
}

void FlowService::finish_run(const RunId& id) {
  auto it = runs_.find(id);
  if (it == runs_.end()) return;
  Run& run = it->second;
  run.info.state = RunState::Succeeded;
  run.timing.finished = engine_->now();
  logger().debug("%s succeeded: total %.1fs active %.1fs overhead %.1fs",
                 id.c_str(), run.timing.total_s(), run.timing.active_s(),
                 run.timing.overhead_s());
  if (trace_) {
    trace_->add(sim::Span{"flow", "run", id, run.timing.submitted,
                          run.timing.finished,
                          util::Json::object({
                              {"active_s", run.timing.active_s()},
                              {"overhead_s", run.timing.overhead_s()},
                              {"label", run.info.label},
                          })});
  }
  if (run.finished_cb) run.finished_cb(id, run.info);
}

const RunInfo& FlowService::info(const RunId& id) const {
  static const RunInfo kMissing = [] {
    RunInfo r;
    r.state = RunState::Failed;
    r.error = "unknown run";
    return r;
  }();
  auto it = runs_.find(id);
  return it == runs_.end() ? kMissing : it->second.info;
}

const RunTiming& FlowService::timing(const RunId& id) const {
  static const RunTiming kMissing;
  auto it = runs_.find(id);
  return it == runs_.end() ? kMissing : it->second.timing;
}

void FlowService::on_finished(
    const RunId& id, std::function<void(const RunId&, const RunInfo&)> cb) {
  auto it = runs_.find(id);
  if (it == runs_.end()) return;
  if (it->second.info.state == RunState::Succeeded ||
      it->second.info.state == RunState::Failed) {
    cb(id, it->second.info);
  } else {
    it->second.finished_cb = std::move(cb);
  }
}

size_t FlowService::active_runs() const {
  size_t n = 0;
  for (const auto& [id, run] : runs_) {
    if (run.info.state == RunState::Pending ||
        run.info.state == RunState::Active) {
      ++n;
    }
  }
  return n;
}

std::vector<RunId> FlowService::all_runs() const {
  std::vector<RunId> out;
  out.reserve(runs_.size());
  for (const auto& [id, run] : runs_) out.push_back(id);
  return out;
}

CircuitBreaker& FlowService::breaker_for(const std::string& provider) {
  auto it = breakers_.find(provider);
  if (it == breakers_.end()) {
    it = breakers_.emplace(provider, CircuitBreaker(config_.breaker)).first;
  }
  return it->second;
}

std::vector<BreakerSnapshot> FlowService::breaker_snapshots() const {
  std::vector<BreakerSnapshot> out;
  out.reserve(breakers_.size());
  for (const auto& [provider, breaker] : breakers_) {
    BreakerSnapshot snap;
    snap.provider = provider;
    snap.trips = breaker.trips();
    snap.consecutive_failures = breaker.consecutive_failures();
    snap.state = CircuitBreaker::state_name(breaker.state(engine_->now()));
    out.push_back(std::move(snap));
  }
  return out;
}

double FlowService::breaker_retry_after_s(const std::string& provider) const {
  auto it = breakers_.find(provider);
  if (it == breakers_.end()) return 0.0;
  return it->second.peek_retry_after_s(engine_->now());
}

}  // namespace pico::flow

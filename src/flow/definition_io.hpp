#pragma once
// Flow definition (de)serialization. Globus Flows definitions are JSON
// documents users author, upload and share; this gives PicoFlow the same
// property — the CLI and tests can load flow definitions from .json files
// instead of hard-coding them.
//
// Document shape:
//   {
//     "name": "picoprobe-hyperspectral",
//     "steps": [
//       {"name": "Transfer", "provider": "transfer", "max_retries": 2,
//        "params": { ... may contain "$.input.x" / "$.steps.S.y" ... }},
//       ...
//     ]
//   }
#include "flow/service.hpp"
#include "util/json.hpp"
#include "util/result.hpp"

namespace pico::flow {

/// Serialize a definition to its JSON document.
util::Json definition_to_json(const FlowDefinition& definition);

/// Parse and validate a definition document. Rejects documents with no
/// steps, unnamed steps, duplicate step names (step outputs are keyed by
/// name), or missing providers.
util::Result<FlowDefinition> definition_from_json(const util::Json& doc);

/// Convenience: parse from JSON text.
util::Result<FlowDefinition> definition_from_text(const std::string& text);

}  // namespace pico::flow

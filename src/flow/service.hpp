#pragma once
// Gladier/Globus-Flows-like orchestration. A flow is a serial list of action
// states executed across heterogeneous services (Transfer -> Compute ->
// Search ingest). The orchestrator starts each action through its provider,
// then *polls* for completion with a backoff policy — the cloud service
// cannot push events — and records per-step timing so the campaign reporter
// can decompose runtimes into "active" vs "overhead" exactly as the paper's
// Fig. 4 does.
//
// Parameter templating mirrors Globus Flows' state references: string values
// of the form "$.input.<path>" and "$.steps.<StepName>.<path>" are resolved
// against the flow input and prior step outputs at dispatch time.
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "auth/auth.hpp"
#include "flow/backoff.hpp"
#include "flow/breaker.hpp"
#include "flow/run_store.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "telemetry/telemetry.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace pico::flow {

using RunId = std::string;
using ActionHandle = std::string;

enum class ActionStatus { Active, Succeeded, Failed };

struct ActionPollResult {
  ActionStatus status = ActionStatus::Active;
  std::string error;
  util::Json output;                 ///< available once Succeeded
  /// Service-reported activity interval, for active-time accounting.
  sim::SimTime service_started;
  sim::SimTime service_completed;
  /// Coarse service sub-state ("PENDING", "ACTIVE", "RUNNING", ...). The
  /// orchestrator resets its polling backoff when this changes between
  /// polls, mirroring Globus Flows' behaviour of restarting the backoff on
  /// observed action status transitions — without this, a single long step
  /// would suffer unbounded discovery lag.
  std::string progress_token;
};

/// Adapter between the flow engine and a backing service (transfer, compute,
/// search ingest). Implementations live next to the services they wrap.
class ActionProvider {
 public:
  virtual ~ActionProvider() = default;
  virtual std::string name() const = 0;
  /// Begin the action; returns an opaque handle for polling.
  virtual util::Result<ActionHandle> start(const util::Json& params,
                                           const auth::Token& token) = 0;
  virtual ActionPollResult poll(const ActionHandle& handle) = 0;

  /// Push-based completion (Globus webhooks / AMQP event fan-out). Providers
  /// that can signal settlement call `callback` once, in virtual time, when
  /// the action reaches a terminal state (success OR failure — the callback
  /// carries no verdict; the orchestrator polls once to learn the outcome).
  /// Returns false when the provider has no event channel, in which case the
  /// orchestrator stays on its polling loop. Default: no event channel.
  virtual bool subscribe(const ActionHandle& handle,
                         std::function<void()> callback) {
    (void)handle;
    (void)callback;
    return false;
  }

  /// Byte-level progress events for cut-through streaming (callback receives
  /// cumulative logical bytes landed). Returns false when the provider cannot
  /// stream progress. Default: no progress channel.
  virtual bool subscribe_progress(const ActionHandle& handle,
                                  std::function<void(int64_t)> callback) {
    (void)handle;
    (void)callback;
    return false;
  }

  /// Cut-through support: a provider that can *hold* a started action (claim
  /// resources, warm the environment, then wait for release before charging
  /// the main cost) lets the orchestrator pre-dispatch the next step while
  /// the current one is still landing bytes.
  virtual bool supports_held_start() const { return false; }
  virtual util::Result<ActionHandle> start_held(const util::Json& params,
                                                const auth::Token& token) {
    (void)params;
    (void)token;
    return util::Result<ActionHandle>::err("held start not supported",
                                           "unsupported");
  }
  /// Release a held action: begin (or finish) charging its cost, crediting
  /// the overlap already elapsed while held.
  virtual void release(const ActionHandle& handle) { (void)handle; }
};

struct ActionState {
  std::string name;        ///< e.g. "Transfer", "Analyze", "Publish"
  std::string provider;    ///< registered provider name
  util::Json params;       ///< may contain "$." references
  int max_retries = 0;     ///< re-dispatch attempts after action failure
  /// Abandon the action if it has not completed this long after dispatch
  /// (0 = no timeout). A timeout consumes one retry; the in-flight service
  /// work is not recalled — as with cancel(), it completes unobserved.
  double timeout_s = 0;
  /// Cut-through streaming: pre-dispatch this step (held) as soon as the
  /// *previous* step reports byte progress, so e.g. the fp64->uint8
  /// conversion starts while the transfer is still landing chunks. Requires
  /// the previous step's provider to stream progress and this step's
  /// provider to support held starts; silently falls back to serialized
  /// dispatch otherwise. Meaningless on the first step.
  bool streaming = false;
  /// Best-effort step: the federation broker strips optional steps from a
  /// definition under brownout (load-shedding ladder rung 1) before it starts
  /// rejecting admissions. The orchestrator itself never skips them.
  bool optional = false;
};

struct FlowDefinition {
  std::string name;
  std::vector<ActionState> steps;
};

enum class RunState { Pending, Active, Succeeded, Failed };

std::string run_state_name(RunState s);

struct StepTiming {
  std::string name;
  sim::SimTime dispatched;       ///< orchestrator sent the start request
  sim::SimTime service_started;  ///< service began processing
  sim::SimTime service_completed;///< service finished (actual, virtual time)
  sim::SimTime discovered;       ///< orchestrator's poll observed completion
  int polls = 0;
  int retries = 0;
  int timeouts = 0;              ///< attempts abandoned via ActionState::timeout_s
  int notifications = 0;         ///< completion callbacks consumed
  bool streamed = false;         ///< step was pre-dispatched via cut-through

  double active_s() const {
    return (service_completed - service_started).seconds();
  }
  /// Poll-discovery lag: the paper's dominant overhead component.
  double discovery_lag_s() const {
    return (discovered - service_completed).seconds();
  }
};

struct RunTiming {
  sim::SimTime submitted;
  sim::SimTime finished;
  std::vector<StepTiming> steps;

  double total_s() const { return (finished - submitted).seconds(); }
  double active_s() const {
    double a = 0;
    for (const auto& s : steps) a += s.active_s();
    return a;
  }
  /// total - active: the paper's definition of flow orchestration overhead.
  double overhead_s() const { return total_s() - active_s(); }
  /// Union of the per-step active intervals on the wall clock. For serialized
  /// runs this equals active_s(); when steps overlap (cut-through streaming)
  /// the union is smaller, and total - union is the honest overhead.
  double active_union_s() const;
  /// Wall time saved by overlapping steps: active_s() - active_union_s().
  double overlap_s() const { return active_s() - active_union_s(); }
};

struct RunInfo {
  // `state` and `current_step` lead deliberately: every scheduled poll event
  // checks them, and the orchestrator embeds RunInfo right after the run
  // record's hot block so both land in its first cache lines. The strings
  // and JSON below are only touched on dispatch/settle.
  RunState state = RunState::Pending;
  size_t current_step = 0;
  std::string label;       ///< caller-supplied tag (e.g. source file)
  std::string error;
  util::Json input;
  std::map<std::string, util::Json> step_outputs;
};

/// How the orchestrator learns that a dispatched action settled.
enum class CompletionMode {
  /// The paper's production behaviour: poll every provider to completion
  /// with `backoff` (1 s start, doubling, 10 min cap by default).
  Polling,
  /// Subscribe to provider completion events; polling degrades to a sparse
  /// safety net (`reconcile_backoff`) that catches lost notifications and
  /// providers with no event channel.
  Events,
};

std::string completion_mode_name(CompletionMode m);

struct FlowServiceConfig {
  /// Cloud processing before the first step dispatches.
  double start_latency_s = 1.5;
  /// Orchestration hop between a discovered completion and the next dispatch:
  /// the Flows engine evaluates the state machine, persists the transition,
  /// and round-trips the next action provider — a few seconds per transition
  /// in the hosted service, and a polling-loop cost the event path replaces
  /// with `event_inter_step_latency_s`.
  double inter_step_latency_s = 2.4;
  double latency_jitter_frac = 0.3;
  BackoffPolicy backoff = BackoffPolicy::paper_default();
  /// Completion signaling. Polling (default) reproduces the paper; Events
  /// switches to push-based notifications with a polling safety net.
  CompletionMode completion_mode = CompletionMode::Polling;
  /// Webhook/AMQP delivery latency for a completion notification (jittered).
  double notification_latency_s = 0.1;
  /// Inter-step hop in Events mode: the engine advances inside the event
  /// callback instead of waiting for the next scheduler tick.
  double event_inter_step_latency_s = 0.1;
  /// Safety-net poller used in Events mode (and the "adaptive polling"
  /// mode when events are off but this policy is installed as `backoff`).
  BackoffPolicy reconcile_backoff = BackoffPolicy::adaptive();
  /// Per-provider circuit breaker (shared across all runs). While open,
  /// dispatches fail fast — each wait consumes one step retry — and the
  /// re-dispatch is deferred until the breaker half-opens, so a down service
  /// is probed instead of hammered.
  BreakerConfig breaker;
};

/// Lock-free status view of one run (see FlowService::status). `known` is
/// false for ids the service has never seen; the other fields are then
/// default. `finished` is zero until the run settles.
struct RunStatus {
  bool known = false;
  RunState state = RunState::Pending;
  uint32_t current_step = 0;
  sim::SimTime submitted;
  sim::SimTime finished;
};

/// Diagnostic view of one provider's circuit breaker. Breakers live per
/// FlowService, so `site` qualifies the key: "eagle/transfer" and
/// "peer/transfer" are independent breakers even though the provider name is
/// the same — one facility's open breaker never suppresses a healthy peer's.
struct BreakerSnapshot {
  std::string site;  ///< owning FlowService's site name ("" = unfederated)
  std::string provider;
  int trips = 0;
  int consecutive_failures = 0;
  std::string state;  ///< "closed" / "open" / "half-open"
};

/// Portable inter-step state of a run: everything a peer facility needs to
/// continue the flow from where it stopped. Completed steps are carried as
/// their outputs (the orchestrator's only inter-step state — "$.steps.X.*"
/// references resolve against them), so the resumed run starts at
/// `start_step` without re-running anything before it. Deliberately excludes
/// attempt epochs, backoff salts, retry counters, and breaker state: a
/// failover must NOT inherit the failed site's backoff/breaker history.
struct RunCheckpoint {
  std::string flow;  ///< definition name, for sanity-checking at the peer
  size_t start_step = 0;
  util::Json input;
  std::map<std::string, util::Json> step_outputs;
};

class FlowService {
 public:
  FlowService(sim::Engine* engine, auth::AuthService* auth,
              FlowServiceConfig config, uint64_t seed = 0xF10Dull,
              sim::Trace* trace = nullptr);

  /// Register an action provider under its name().
  void register_provider(ActionProvider* provider);

  /// Attach facility telemetry. With it set, every run/step/provider attempt
  /// becomes a node in the causal span tree (campaign -> run -> step ->
  /// attempt), breaker transitions and retry decisions land as span events,
  /// and the flow_* metric families are maintained. Null (the default) keeps
  /// the legacy flat trace spans so standalone use needs no setup.
  void set_telemetry(telemetry::Telemetry* telemetry);

  /// Launch a flow run. Requires scope "flows". Runs execute concurrently —
  /// the paper starts new flows while previous ones are still running.
  util::Result<RunId> start(const FlowDefinition& definition, util::Json input,
                            const auth::Token& token,
                            const std::string& label = "");

  /// Shared-definition overload: campaign drivers launching many runs of the
  /// same flow pass one immutable definition and every run shares it instead
  /// of copying ~1.5 KB of step metadata per run. The const& overload above
  /// delegates here with a one-off copy.
  util::Result<RunId> start(std::shared_ptr<const FlowDefinition> definition,
                            util::Json input, const auth::Token& token,
                            const std::string& label = "");

  /// Cross-facility failover entry point: launch a run that continues from a
  /// peer's RunCheckpoint instead of from step 0. Completed steps are seeded
  /// into step_outputs (so "$.steps.X.*" references resolve) and dispatch
  /// begins at checkpoint.start_step. The new run gets a fresh id, epoch,
  /// backoff salt, and this service's own breakers — none of the failed
  /// site's retry/backoff state crosses the boundary.
  util::Result<RunId> resume(std::shared_ptr<const FlowDefinition> definition,
                             RunCheckpoint checkpoint,
                             const auth::Token& token,
                             const std::string& label = "");

  /// Export the portable inter-step state of a run (any state — an active
  /// run checkpoints at its current step, a failed one at the step that
  /// failed). The checkpoint is safe to replay at a peer FlowService.
  util::Result<RunCheckpoint> checkpoint(const RunId& id) const;

  /// Federation identity of this orchestrator; stamps breaker snapshots and
  /// telemetry label sets so per-site series stay distinct. Empty (default)
  /// keeps the unfederated single-facility behaviour and label sets.
  void set_site(std::string site) { site_ = std::move(site); }
  const std::string& site() const { return site_; }

  const RunInfo& info(const RunId& id) const;
  const RunTiming& timing(const RunId& id) const;

  /// Point-in-time run status, readable from any thread without blocking the
  /// engine: one shard-striped lookup plus a seqlock snapshot of the run's
  /// status cell. This is the portal-polling fast path — info()/timing()
  /// return references only the engine thread may safely dereference.
  RunStatus status(const RunId& id) const;
  /// The run's status cell itself (stable for the service's lifetime), so a
  /// poller can resolve the id once and then read with no locks at all.
  /// Null for unknown ids.
  const RunStatusCell* status_cell(const RunId& id) const;

  /// Cancel an active run: no further steps dispatch, pending polls are
  /// abandoned, and the run settles as Failed with a "cancelled" error.
  /// In-flight service work (a running transfer/compute task) is not
  /// recalled — as with the real cloud services, the action simply completes
  /// unobserved. No-op for already-settled runs.
  util::Status cancel(const RunId& id);

  /// Fired (in virtual time) when the run settles. For campaign drivers.
  void on_finished(const RunId& id,
                   std::function<void(const RunId&, const RunInfo&)> cb);

  size_t active_runs() const;
  std::vector<RunId> all_runs() const;

  /// Circuit-breaker state for every provider that has dispatched at least
  /// once (robustness reporting).
  std::vector<BreakerSnapshot> breaker_snapshots() const;
  /// Seconds until the named provider's breaker would admit a dispatch
  /// (0 = closed/absent). Campaign resubmission uses this as a hint to avoid
  /// re-launching straight into an open breaker.
  double breaker_retry_after_s(const std::string& provider) const;
  /// Total step attempts abandoned via timeout, across all runs.
  uint64_t total_timeouts() const { return total_timeouts_; }

  /// Probability that a provider completion notification is dropped before
  /// delivery (fault::FaultKind::NotificationLoss sets this during chaos
  /// windows). Lost notifications are discovered by the reconcile poller.
  void set_notification_loss_prob(double prob);
  double notification_loss_prob() const { return notification_loss_prob_; }

  /// SLO hook: succeeded runs slower than this count into
  /// flow_runs_slow_total, the numerator the health plane's latency
  /// burn-rate evaluation reads from snapshots. 0 (default) disables.
  void set_slow_run_threshold(double seconds) {
    slow_run_threshold_s_ = seconds;
  }

  /// Resolve "$." references in params against input + step outputs
  /// (exposed for tests).
  static util::Json resolve_params(const util::Json& params,
                                   const util::Json& input,
                                   const std::map<std::string, util::Json>& steps);

 private:
  struct Run {
    // ---- Hot block -----------------------------------------------------
    // At 10^5+ concurrent flows every run record is a DRAM miss when its
    // event fires, so the fields a completion poll touches — the dominant
    // event class, ~12 of a typical flow's ~17 events — are packed into the
    // record's first two cache lines, together with `info.state` and
    // `info.current_step` (which RunInfo deliberately leads with). Strings,
    // JSON, timing, and spans follow: they are only touched on
    // dispatch/settle, 3x per flow instead of per poll.
    /// Backpointer for scheduled events: hot-path lambdas capture just
    /// {Run*, epoch} (16 bytes — inside libstdc++'s std::function small-buffer
    /// optimization, so polls/retries/timeouts allocate nothing).
    FlowService* svc = nullptr;
    /// Attempt generation: bumped whenever the current attempt is superseded
    /// (new dispatch, completion, timeout, failure). Scheduled poll/timeout
    /// events capture the epoch and no-op if it moved on.
    uint64_t epoch = 0;
    /// Deterministic per-run jitter seed: poll backoff is derived from
    /// (salt ^ epoch, attempt), so a run's poll schedule is a pure function
    /// of its identity and attempt history — concurrent flows never perturb
    /// each other's jitter.
    uint64_t backoff_salt = 0;
    int poll_attempt = 0;
    /// Interned provider id of the dispatched step (mirror of
    /// step_pids[current_step], kept hot so polls skip the heap array).
    uint16_t cur_pid = 0;
    /// Current attempt has a live completion subscription: polling is only
    /// the sparse reconcile safety net, never reset on token change.
    bool subscribed = false;
    /// Polls issued for the in-flight step, folded into
    /// timing.steps[current_step].polls when the attempt settles (or lazily
    /// by timing()); keeps the poll path off the StepTiming heap array.
    uint32_t cur_polls = 0;
    void flush_polls() {
      if (cur_polls == 0) return;
      if (info.current_step < timing.steps.size())
        timing.steps[info.current_step].polls += static_cast<int>(cur_polls);
      cur_polls = 0;
    }
    RunInfo info;
    ActionHandle current_handle;
    std::string last_progress_token;
    // ---- Dispatch/settle-path state (cold relative to polls) -----------
    RunId id;
    /// Seqlock-published status for lock-free portal polling.
    RunStatusCell cell;
    /// Interned provider id per step (indexes FlowService::providers_), so
    /// dispatch/poll never do a string map lookup.
    std::vector<uint16_t> step_pids;
    /// Immutable, shared with every run started from the same definition
    /// object: at 10^5-10^6 concurrent runs the per-run copy was both the
    /// dominant memory cost (~1.5 KB each) and a guaranteed cache miss per
    /// dispatch; one shared copy keeps step metadata hot.
    std::shared_ptr<const FlowDefinition> def;
    const FlowDefinition& definition() const { return *def; }
    /// Pending step-timeout event; cancelled when the attempt settles so dead
    /// timers are reclaimed by compaction instead of firing as no-ops hours
    /// of virtual time after the run finished.
    sim::EventHandle timeout_handle;
    RunTiming timing;
    auth::Token token;
    int retries_this_step = 0;
    /// Cut-through pre-dispatch of the *next* step (held at its provider
    /// until the current step settles). Empty handle = none outstanding.
    ActionHandle pre_handle;
    size_t pre_step = 0;
    sim::SimTime pre_dispatched;
    uint64_t pre_step_span = 0;
    uint64_t pre_attempt_span = 0;
    std::function<void(const RunId&, const RunInfo&)> finished_cb;
    /// Telemetry span ids (0 = none open). The run span parents step spans;
    /// each step span parents its provider-attempt spans.
    uint64_t run_span = 0;
    uint64_t step_span = 0;
    uint64_t attempt_span = 0;
    sim::SimTime attempt_started;
  };

  void dispatch_step(Run& run);
  void poll_step(Run& run, uint64_t epoch);
  void timeout_step(Run& run, uint64_t epoch);
  /// A provider completion notification fired for the current attempt.
  /// Applies notification-loss chaos, then (after jittered
  /// notification_latency_s) folds into poll_step.
  void on_notification(Run& run, uint64_t epoch);
  /// First byte-progress event from a streaming-capable step: pre-dispatch
  /// the next step held, if it opted into `streaming`.
  void on_stream_progress(Run& run, uint64_t epoch);
  /// The current step completed with a held pre-dispatch waiting: adopt the
  /// pre-started action as the new current attempt and release it.
  void activate_prestarted(Run& run);
  /// Drop an outstanding pre-dispatch (run failed/cancelled before the
  /// streamed step could activate). The held service work completes
  /// unobserved, like any abandoned action.
  void abandon_prestart(Run& run);
  void step_attempt_failed(Run& run, const std::string& error,
                           double retry_delay_s);
  void complete_step(Run& run, ActionPollResult poll);
  void fail_run(Run& run, const std::string& error);
  void finish_run(Run& run);
  /// Re-publish the run's seqlock status cell from its authoritative state.
  void publish_status(Run& run);
  double jittered(double base);
  /// Poll policy in force: the sparse reconcile net in Events mode, the
  /// configured backoff otherwise.
  const BackoffPolicy& active_poll_policy() const;
  /// Breaker for an interned provider id, created lazily on first dispatch
  /// (snapshots only cover providers that have dispatched).
  CircuitBreaker& breaker_for(uint16_t pid);
  /// Close the step span (if open) carrying the full StepTiming as integer-ns
  /// attributes, so reports can be rebuilt from the span tree alone.
  void close_step_span(Run& run, const std::string& category);
  void close_run_span(Run& run, const std::string& category);
  void on_breaker_transition(const std::string& provider,
                             CircuitBreaker::State from,
                             CircuitBreaker::State to, sim::SimTime at);
  /// Append a structured event to the run's flight ring (no-op untelemetered).
  void flight_event(const RunId& id, util::LogLevel level, std::string name,
                    util::Json attrs = {});

  /// Shared start/resume body: `resume_from` (when non-null) pre-seeds the
  /// completed steps and start offset before the first dispatch schedules.
  util::Result<RunId> start_internal(
      std::shared_ptr<const FlowDefinition> definition_ptr, util::Json input,
      const auth::Token& token, const std::string& label,
      const RunCheckpoint* resume_from);
  /// {{"provider", p}} plus {"site", site_} when federated — breaker metric
  /// series from co-scheduled facilities must not collapse into one key.
  telemetry::Labels provider_labels(const std::string& provider) const;

  sim::Engine* engine_;
  auth::AuthService* auth_;
  FlowServiceConfig config_;
  std::string site_;
  util::Rng rng_;
  uint64_t seed_;  ///< mixed into each run's deterministic backoff salt
  sim::Trace* trace_;
  telemetry::Telemetry* telemetry_ = nullptr;
  /// Step span of the run currently being advanced on this stack; breaker
  /// transition observers attach their events here. Valid because the sim
  /// engine is single-threaded. active_run_ is the matching flight-ring
  /// subject.
  uint64_t active_step_span_ = 0;
  RunId active_run_;
  double slow_run_threshold_s_ = 0;
  /// Providers interned to dense u16 ids: `providers_[pid]` is the adapter,
  /// `provider_names_[pid]` its name, `breakers_[pid]` its lazily-created
  /// circuit breaker (null until first dispatch). Re-registering a name
  /// swaps the adapter but keeps the id (and breaker history), matching the
  /// previous map-assign semantics.
  std::vector<ActionProvider*> providers_;
  std::vector<std::string> provider_names_;
  std::vector<std::unique_ptr<CircuitBreaker>> breakers_;
  std::unordered_map<std::string, uint16_t> provider_ids_;
  /// Run records, sharded by id hash; records are heap-pinned so scheduled
  /// events hold raw Run* (see Run::svc).
  ShardedRunStore<Run> runs_;
  /// Runs submitted but not yet settled, maintained incrementally so
  /// active_runs() is O(1) instead of a full-store scan.
  std::atomic<size_t> active_count_{0};
  uint64_t next_run_ = 1;
  uint64_t total_timeouts_ = 0;
  double notification_loss_prob_ = 0;
};

/// Rebuild a settled run's RunTiming purely from its closed span tree: the
/// ("flow", "run"/"run-failed") span labelled `id` plus its
/// ("flow", "step"/"step-failed") children, using the integer-ns attributes
/// the service stamps at close time. The result is bit-identical to
/// FlowService::timing() — campaign reports regenerated this way match the
/// service-side bookkeeping byte for byte. Returns false (leaving *out
/// untouched) when the run span is absent, i.e. telemetry was not attached.
/// Caller must satisfy the Trace quiescence contract (post-run reporting or
/// engine-thread callbacks with no concurrent pool writers).
bool timing_from_spans(const sim::Trace& trace, const RunId& id,
                       RunTiming* out);

}  // namespace pico::flow

#pragma once
// Gladier/Globus-Flows-like orchestration. A flow is a serial list of action
// states executed across heterogeneous services (Transfer -> Compute ->
// Search ingest). The orchestrator starts each action through its provider,
// then *polls* for completion with a backoff policy — the cloud service
// cannot push events — and records per-step timing so the campaign reporter
// can decompose runtimes into "active" vs "overhead" exactly as the paper's
// Fig. 4 does.
//
// Parameter templating mirrors Globus Flows' state references: string values
// of the form "$.input.<path>" and "$.steps.<StepName>.<path>" are resolved
// against the flow input and prior step outputs at dispatch time.
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "auth/auth.hpp"
#include "flow/backoff.hpp"
#include "flow/breaker.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "telemetry/telemetry.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace pico::flow {

using RunId = std::string;
using ActionHandle = std::string;

enum class ActionStatus { Active, Succeeded, Failed };

struct ActionPollResult {
  ActionStatus status = ActionStatus::Active;
  std::string error;
  util::Json output;                 ///< available once Succeeded
  /// Service-reported activity interval, for active-time accounting.
  sim::SimTime service_started;
  sim::SimTime service_completed;
  /// Coarse service sub-state ("PENDING", "ACTIVE", "RUNNING", ...). The
  /// orchestrator resets its polling backoff when this changes between
  /// polls, mirroring Globus Flows' behaviour of restarting the backoff on
  /// observed action status transitions — without this, a single long step
  /// would suffer unbounded discovery lag.
  std::string progress_token;
};

/// Adapter between the flow engine and a backing service (transfer, compute,
/// search ingest). Implementations live next to the services they wrap.
class ActionProvider {
 public:
  virtual ~ActionProvider() = default;
  virtual std::string name() const = 0;
  /// Begin the action; returns an opaque handle for polling.
  virtual util::Result<ActionHandle> start(const util::Json& params,
                                           const auth::Token& token) = 0;
  virtual ActionPollResult poll(const ActionHandle& handle) = 0;
};

struct ActionState {
  std::string name;        ///< e.g. "Transfer", "Analyze", "Publish"
  std::string provider;    ///< registered provider name
  util::Json params;       ///< may contain "$." references
  int max_retries = 0;     ///< re-dispatch attempts after action failure
  /// Abandon the action if it has not completed this long after dispatch
  /// (0 = no timeout). A timeout consumes one retry; the in-flight service
  /// work is not recalled — as with cancel(), it completes unobserved.
  double timeout_s = 0;
};

struct FlowDefinition {
  std::string name;
  std::vector<ActionState> steps;
};

enum class RunState { Pending, Active, Succeeded, Failed };

std::string run_state_name(RunState s);

struct StepTiming {
  std::string name;
  sim::SimTime dispatched;       ///< orchestrator sent the start request
  sim::SimTime service_started;  ///< service began processing
  sim::SimTime service_completed;///< service finished (actual, virtual time)
  sim::SimTime discovered;       ///< orchestrator's poll observed completion
  int polls = 0;
  int retries = 0;
  int timeouts = 0;              ///< attempts abandoned via ActionState::timeout_s

  double active_s() const {
    return (service_completed - service_started).seconds();
  }
  /// Poll-discovery lag: the paper's dominant overhead component.
  double discovery_lag_s() const {
    return (discovered - service_completed).seconds();
  }
};

struct RunTiming {
  sim::SimTime submitted;
  sim::SimTime finished;
  std::vector<StepTiming> steps;

  double total_s() const { return (finished - submitted).seconds(); }
  double active_s() const {
    double a = 0;
    for (const auto& s : steps) a += s.active_s();
    return a;
  }
  /// total - active: the paper's definition of flow orchestration overhead.
  double overhead_s() const { return total_s() - active_s(); }
};

struct RunInfo {
  RunState state = RunState::Pending;
  std::string label;       ///< caller-supplied tag (e.g. source file)
  std::string error;
  size_t current_step = 0;
  util::Json input;
  std::map<std::string, util::Json> step_outputs;
};

struct FlowServiceConfig {
  /// Cloud processing before the first step dispatches.
  double start_latency_s = 1.5;
  /// Orchestration hop between a discovered completion and the next dispatch.
  double inter_step_latency_s = 1.2;
  double latency_jitter_frac = 0.3;
  BackoffPolicy backoff = BackoffPolicy::paper_default();
  /// Per-provider circuit breaker (shared across all runs). While open,
  /// dispatches fail fast — each wait consumes one step retry — and the
  /// re-dispatch is deferred until the breaker half-opens, so a down service
  /// is probed instead of hammered.
  BreakerConfig breaker;
};

/// Diagnostic view of one provider's circuit breaker.
struct BreakerSnapshot {
  std::string provider;
  int trips = 0;
  int consecutive_failures = 0;
  std::string state;  ///< "closed" / "open" / "half-open"
};

class FlowService {
 public:
  FlowService(sim::Engine* engine, auth::AuthService* auth,
              FlowServiceConfig config, uint64_t seed = 0xF10Dull,
              sim::Trace* trace = nullptr);

  /// Register an action provider under its name().
  void register_provider(ActionProvider* provider);

  /// Attach facility telemetry. With it set, every run/step/provider attempt
  /// becomes a node in the causal span tree (campaign -> run -> step ->
  /// attempt), breaker transitions and retry decisions land as span events,
  /// and the flow_* metric families are maintained. Null (the default) keeps
  /// the legacy flat trace spans so standalone use needs no setup.
  void set_telemetry(telemetry::Telemetry* telemetry);

  /// Launch a flow run. Requires scope "flows". Runs execute concurrently —
  /// the paper starts new flows while previous ones are still running.
  util::Result<RunId> start(const FlowDefinition& definition, util::Json input,
                            const auth::Token& token,
                            const std::string& label = "");

  const RunInfo& info(const RunId& id) const;
  const RunTiming& timing(const RunId& id) const;

  /// Cancel an active run: no further steps dispatch, pending polls are
  /// abandoned, and the run settles as Failed with a "cancelled" error.
  /// In-flight service work (a running transfer/compute task) is not
  /// recalled — as with the real cloud services, the action simply completes
  /// unobserved. No-op for already-settled runs.
  util::Status cancel(const RunId& id);

  /// Fired (in virtual time) when the run settles. For campaign drivers.
  void on_finished(const RunId& id,
                   std::function<void(const RunId&, const RunInfo&)> cb);

  size_t active_runs() const;
  std::vector<RunId> all_runs() const;

  /// Circuit-breaker state for every provider that has dispatched at least
  /// once (robustness reporting).
  std::vector<BreakerSnapshot> breaker_snapshots() const;
  /// Seconds until the named provider's breaker would admit a dispatch
  /// (0 = closed/absent). Campaign resubmission uses this as a hint to avoid
  /// re-launching straight into an open breaker.
  double breaker_retry_after_s(const std::string& provider) const;
  /// Total step attempts abandoned via timeout, across all runs.
  uint64_t total_timeouts() const { return total_timeouts_; }

  /// Resolve "$." references in params against input + step outputs
  /// (exposed for tests).
  static util::Json resolve_params(const util::Json& params,
                                   const util::Json& input,
                                   const std::map<std::string, util::Json>& steps);

 private:
  struct Run {
    FlowDefinition definition;
    RunInfo info;
    RunTiming timing;
    auth::Token token;
    ActionHandle current_handle;
    int poll_attempt = 0;
    int retries_this_step = 0;
    std::string last_progress_token;
    /// Attempt generation: bumped whenever the current attempt is superseded
    /// (new dispatch, completion, timeout, failure). Scheduled poll/timeout
    /// events capture the epoch and no-op if it moved on.
    uint64_t epoch = 0;
    std::function<void(const RunId&, const RunInfo&)> finished_cb;
    /// Telemetry span ids (0 = none open). The run span parents step spans;
    /// each step span parents its provider-attempt spans.
    uint64_t run_span = 0;
    uint64_t step_span = 0;
    uint64_t attempt_span = 0;
    sim::SimTime attempt_started;
  };

  void dispatch_step(const RunId& id);
  void poll_step(const RunId& id, uint64_t epoch);
  void timeout_step(const RunId& id, uint64_t epoch);
  void step_attempt_failed(const RunId& id, const std::string& error,
                           double retry_delay_s);
  void complete_step(const RunId& id, const ActionPollResult& poll);
  void fail_run(const RunId& id, const std::string& error);
  void finish_run(const RunId& id);
  double jittered(double base);
  CircuitBreaker& breaker_for(const std::string& provider);
  /// Close the step span (if open) carrying the full StepTiming as integer-ns
  /// attributes, so reports can be rebuilt from the span tree alone.
  void close_step_span(Run& run, const std::string& category);
  void close_run_span(Run& run, const std::string& category);
  void on_breaker_transition(const std::string& provider,
                             CircuitBreaker::State from,
                             CircuitBreaker::State to, sim::SimTime at);

  sim::Engine* engine_;
  auth::AuthService* auth_;
  FlowServiceConfig config_;
  util::Rng rng_;
  sim::Trace* trace_;
  telemetry::Telemetry* telemetry_ = nullptr;
  /// Step span of the run currently being advanced on this stack; breaker
  /// transition observers attach their events here. Valid because the sim
  /// engine is single-threaded.
  uint64_t active_step_span_ = 0;
  std::map<std::string, ActionProvider*> providers_;
  std::map<std::string, CircuitBreaker> breakers_;
  std::map<RunId, Run> runs_;
  uint64_t next_run_ = 1;
  uint64_t total_timeouts_ = 0;
};

/// Rebuild a settled run's RunTiming purely from its closed span tree: the
/// ("flow", "run"/"run-failed") span labelled `id` plus its
/// ("flow", "step"/"step-failed") children, using the integer-ns attributes
/// the service stamps at close time. The result is bit-identical to
/// FlowService::timing() — campaign reports regenerated this way match the
/// service-side bookkeeping byte for byte. Returns false (leaving *out
/// untouched) when the run span is absent, i.e. telemetry was not attached.
/// Caller must satisfy the Trace quiescence contract (post-run reporting or
/// engine-thread callbacks with no concurrent pool writers).
bool timing_from_spans(const sim::Trace& trace, const RunId& id,
                       RunTiming* out);

}  // namespace pico::flow

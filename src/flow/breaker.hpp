#pragma once
// Per-provider circuit breaker for the flow orchestrator. When a backing
// service (Transfer, Compute, Search ingest) is down, every concurrent flow
// retries against it independently — a retry storm that wastes the retry
// budgets the flows need to survive the outage. The breaker trips after N
// consecutive failures across all runs, fails dispatches fast while open, and
// half-opens after a cooldown so a single probe discovers recovery.
#include <cstdint>
#include <functional>
#include <string>

#include "sim/time.hpp"

namespace pico::flow {

struct BreakerConfig {
  bool enabled = true;
  /// Consecutive failures (across all runs) that trip the breaker open.
  int failure_threshold = 8;
  /// How long the breaker stays open before allowing a half-open probe.
  double cooldown_s = 30.0;
};

/// State machine: Closed -> (N consecutive failures) -> Open -> (cooldown)
/// -> HalfOpen -> success closes / failure re-opens. Purely virtual-time.
class CircuitBreaker {
 public:
  enum class State { Closed, Open, HalfOpen };

  /// Observes every committed state change. `at` is the logical transition
  /// time: trips and closes happen at the triggering call's `now`, while the
  /// lazily-committed Open -> HalfOpen decay is stamped with the moment the
  /// cooldown elapsed (open_until), not the later call that observed it.
  using TransitionObserver =
      std::function<void(State from, State to, sim::SimTime at)>;

  explicit CircuitBreaker(BreakerConfig config = {}) : config_(config) {}

  void set_observer(TransitionObserver observer) {
    observer_ = std::move(observer);
  }

  /// Current state; Open lazily decays to HalfOpen once the cooldown elapses.
  State state(sim::SimTime now) const;

  /// Seconds until a dispatch may proceed: 0 when Closed, or when HalfOpen
  /// with no probe in flight. Calling this with a 0 result while HalfOpen
  /// claims the probe slot (record_success/record_failure releases it).
  double retry_after_s(sim::SimTime now);

  /// Like retry_after_s but side-effect free: never claims the probe slot.
  /// For reporting and scheduling hints.
  double peek_retry_after_s(sim::SimTime now) const;

  /// `now` stamps the resulting transition for observers; the default keeps
  /// time-agnostic callers (unit tests) compiling, at the cost of a t=0
  /// timestamp on the close event.
  void record_success(sim::SimTime now = sim::SimTime{});
  void record_failure(sim::SimTime now);

  /// Times the breaker transitioned Closed/HalfOpen -> Open.
  int trips() const { return trips_; }
  int consecutive_failures() const { return consecutive_failures_; }
  const BreakerConfig& config() const { return config_; }

  static std::string state_name(State s);

 private:
  /// Commit a state change and notify the observer. No-op if already there.
  void transition(State to, sim::SimTime at);
  /// Commit the lazy Open -> HalfOpen decay (stamped at open_until_) so the
  /// observer sees it before whatever transition follows.
  void commit_decay(sim::SimTime now);

  BreakerConfig config_;
  TransitionObserver observer_;
  State state_ = State::Closed;
  int consecutive_failures_ = 0;
  int trips_ = 0;
  bool probe_in_flight_ = false;
  sim::SimTime open_until_{};
};

}  // namespace pico::flow

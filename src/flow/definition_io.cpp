#include "flow/definition_io.hpp"

#include <set>

namespace pico::flow {

using util::Json;

Json definition_to_json(const FlowDefinition& definition) {
  Json steps = Json::array();
  for (const auto& step : definition.steps) {
    Json s = Json::object({
        {"name", step.name},
        {"provider", step.provider},
        {"max_retries", static_cast<int64_t>(step.max_retries)},
        {"timeout_s", step.timeout_s},
        {"params", step.params},
    });
    if (step.streaming) s["streaming"] = true;
    steps.push_back(std::move(s));
  }
  return Json::object({
      {"name", definition.name},
      {"steps", steps},
  });
}

util::Result<FlowDefinition> definition_from_json(const Json& doc) {
  using R = util::Result<FlowDefinition>;
  if (!doc.is_object()) return R::err("definition must be an object", "schema");

  FlowDefinition def;
  def.name = doc.at("name").as_string();
  if (def.name.empty()) return R::err("definition missing name", "schema");

  const Json& steps = doc.at("steps");
  if (!steps.is_array() || steps.size() == 0) {
    return R::err("definition needs a non-empty steps array", "schema");
  }

  std::set<std::string> seen;
  for (const auto& s : steps.as_array()) {
    ActionState step;
    step.name = s.at("name").as_string();
    if (step.name.empty()) return R::err("step missing name", "schema");
    if (!seen.insert(step.name).second) {
      return R::err("duplicate step name: " + step.name, "schema");
    }
    step.provider = s.at("provider").as_string();
    if (step.provider.empty()) {
      return R::err("step " + step.name + " missing provider", "schema");
    }
    int64_t retries = s.at("max_retries").as_int(0);
    if (retries < 0 || retries > 100) {
      return R::err("step " + step.name + " has implausible max_retries",
                    "schema");
    }
    step.max_retries = static_cast<int>(retries);
    double timeout_s = s.at("timeout_s").as_double(0.0);
    if (timeout_s < 0) {
      return R::err("step " + step.name + " has negative timeout_s", "schema");
    }
    step.timeout_s = timeout_s;
    step.streaming = s.at("streaming").as_bool(false);
    if (step.streaming && def.steps.empty()) {
      return R::err("step " + step.name +
                        ": the first step cannot stream (there is no "
                        "previous step to overlap with)",
                    "schema");
    }
    step.params = s.at("params");
    def.steps.push_back(std::move(step));
  }
  return R::ok(std::move(def));
}

util::Result<FlowDefinition> definition_from_text(const std::string& text) {
  auto doc = Json::parse(text);
  if (!doc) return util::Result<FlowDefinition>::err(doc.error());
  return definition_from_json(doc.value());
}

}  // namespace pico::flow

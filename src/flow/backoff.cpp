#include "flow/backoff.hpp"

#include <algorithm>
#include <cmath>

#include "util/strings.hpp"

namespace pico::flow {

double BackoffPolicy::interval_s(int attempt, util::Rng& rng) const {
  double base;
  switch (kind) {
    case Kind::Fixed:
      base = initial_s;
      break;
    case Kind::Linear:
      base = initial_s + increment_s * attempt;
      break;
    case Kind::Exponential:
    case Kind::JitteredExponential:
      base = initial_s * std::pow(factor, attempt);
      break;
    default:
      base = initial_s;
  }
  base = std::min(base, cap_s);
  if (kind == Kind::JitteredExponential) {
    base *= rng.uniform(1.0 - jitter_frac, 1.0 + jitter_frac);
  }
  return std::max(base, 0.01);
}

std::string BackoffPolicy::describe() const {
  switch (kind) {
    case Kind::Exponential:
      return util::format("exponential(%.1fs x%.1f cap %.0fs)", initial_s,
                          factor, cap_s);
    case Kind::Fixed:
      return util::format("fixed(%.1fs)", initial_s);
    case Kind::Linear:
      return util::format("linear(%.1fs +%.1fs cap %.0fs)", initial_s,
                          increment_s, cap_s);
    case Kind::JitteredExponential:
      return util::format("jittered-exp(%.1fs x%.1f cap %.0fs +/-%.0f%%)",
                          initial_s, factor, cap_s, jitter_frac * 100);
  }
  return "?";
}

BackoffPolicy BackoffPolicy::paper_default() { return BackoffPolicy{}; }

BackoffPolicy BackoffPolicy::adaptive(double cap_s) {
  BackoffPolicy p;
  p.kind = Kind::JitteredExponential;
  p.initial_s = 1.0;
  p.factor = 2.0;
  p.cap_s = cap_s;
  p.jitter_frac = 0.25;
  return p;
}

BackoffPolicy BackoffPolicy::fixed(double interval_s) {
  BackoffPolicy p;
  p.kind = Kind::Fixed;
  p.initial_s = interval_s;
  return p;
}

BackoffPolicy BackoffPolicy::linear(double initial_s, double increment_s,
                                    double cap_s) {
  BackoffPolicy p;
  p.kind = Kind::Linear;
  p.initial_s = initial_s;
  p.increment_s = increment_s;
  p.cap_s = cap_s;
  return p;
}

BackoffPolicy BackoffPolicy::jittered(double initial_s, double factor,
                                      double cap_s, double jitter_frac) {
  BackoffPolicy p;
  p.kind = Kind::JitteredExponential;
  p.initial_s = initial_s;
  p.factor = factor;
  p.cap_s = cap_s;
  p.jitter_frac = jitter_frac;
  return p;
}

}  // namespace pico::flow

#include "flow/backoff.hpp"

#include <algorithm>
#include <cmath>

#include "util/strings.hpp"

namespace pico::flow {

namespace {

/// SplitMix64 finalizer: a cheap, well-mixed hash for the deterministic
/// jitter variant.
uint64_t splitmix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

double BackoffPolicy::base_s(int attempt) const {
  double base;
  switch (kind) {
    case Kind::Fixed:
      base = initial_s;
      break;
    case Kind::Linear:
      base = initial_s + increment_s * attempt;
      break;
    case Kind::Exponential:
    case Kind::JitteredExponential:
      // The default policy doubles; 2^n is exact in binary floating point,
      // so ldexp gives the same bits as pow at a fraction of the cost on
      // the per-poll path.
      base = factor == 2.0 ? std::ldexp(initial_s, attempt)
                           : initial_s * std::pow(factor, attempt);
      break;
    default:
      base = initial_s;
  }
  return std::min(base, cap_s);
}

double BackoffPolicy::interval_s(int attempt, util::Rng& rng) const {
  double base = base_s(attempt);
  if (kind == Kind::JitteredExponential) {
    base *= rng.uniform(1.0 - jitter_frac, 1.0 + jitter_frac);
  }
  return std::max(base, 0.01);
}

double BackoffPolicy::interval_s(int attempt, uint64_t salt) const {
  double base = base_s(attempt);
  if (kind == Kind::JitteredExponential) {
    uint64_t h = splitmix64(salt ^ (static_cast<uint64_t>(attempt) *
                                    0xD1B54A32D192ED03ull));
    double unit = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
    base *= (1.0 - jitter_frac) + 2.0 * jitter_frac * unit;
  }
  return std::max(base, 0.01);
}

std::string BackoffPolicy::describe() const {
  switch (kind) {
    case Kind::Exponential:
      return util::format("exponential(%.1fs x%.1f cap %.0fs)", initial_s,
                          factor, cap_s);
    case Kind::Fixed:
      return util::format("fixed(%.1fs)", initial_s);
    case Kind::Linear:
      return util::format("linear(%.1fs +%.1fs cap %.0fs)", initial_s,
                          increment_s, cap_s);
    case Kind::JitteredExponential:
      return util::format("jittered-exp(%.1fs x%.1f cap %.0fs +/-%.0f%%)",
                          initial_s, factor, cap_s, jitter_frac * 100);
  }
  return "?";
}

BackoffPolicy BackoffPolicy::paper_default() { return BackoffPolicy{}; }

BackoffPolicy BackoffPolicy::adaptive(double cap_s) {
  BackoffPolicy p;
  p.kind = Kind::JitteredExponential;
  p.initial_s = 1.0;
  p.factor = 2.0;
  p.cap_s = cap_s;
  p.jitter_frac = 0.25;
  return p;
}

BackoffPolicy BackoffPolicy::fixed(double interval_s) {
  BackoffPolicy p;
  p.kind = Kind::Fixed;
  p.initial_s = interval_s;
  return p;
}

BackoffPolicy BackoffPolicy::linear(double initial_s, double increment_s,
                                    double cap_s) {
  BackoffPolicy p;
  p.kind = Kind::Linear;
  p.initial_s = initial_s;
  p.increment_s = increment_s;
  p.cap_s = cap_s;
  return p;
}

BackoffPolicy BackoffPolicy::jittered(double initial_s, double factor,
                                      double cap_s, double jitter_frac) {
  BackoffPolicy p;
  p.kind = Kind::JitteredExponential;
  p.initial_s = initial_s;
  p.factor = factor;
  p.cap_s = cap_s;
  p.jitter_frac = jitter_frac;
  return p;
}

}  // namespace pico::flow

#pragma once
// Globus-Compute-like (funcX) federated function-as-a-service. Users register
// functions; endpoints on remote clusters execute them; the service routes
// tasks and returns results. The endpoint provisions batch nodes through the
// PBS scheduler, keeps warm nodes for reuse (the paper's "subsequent flows
// are able to reuse nodes already provisioned"), and charges a one-time
// environment warm-up per fresh node (library caching).
//
// Functions do REAL work: the registered C++ callable runs on real data
// (EMD parsing, reductions, detection). Its *virtual* duration comes from a
// per-function cost model, so campaign timing is calibrated and fast.
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "auth/auth.hpp"
#include "hpcsim/pbs.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "telemetry/telemetry.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace pico::compute {

using FunctionId = std::string;
using EndpointId = std::string;
using TaskId = std::string;

enum class TaskState { Pending, Queued, Running, Succeeded, Failed };

std::string task_state_name(TaskState s);

/// The registered callable: JSON in, JSON out (funcX-style payloads).
using FunctionBody = std::function<util::Result<util::Json>(const util::Json&)>;

/// Virtual execution time of a call, given its arguments.
using FunctionCost = std::function<double(const util::Json&)>;

struct FunctionSpec {
  std::string name;
  FunctionBody body;
  FunctionCost cost;  ///< seconds of virtual node time
  /// Seconds of `cost` that can proceed concurrently with the upstream input
  /// still arriving (e.g. per-chunk fp64->uint8 conversion + reduction of a
  /// spatiotemporal stack). A held task released after its node sat ready for
  /// H seconds is charged cost - min(streamable, H). Unset = nothing
  /// overlaps (the whole input is needed before any work starts).
  FunctionCost streamable;
};

struct EndpointConfig {
  std::string name;
  hpcsim::PbsScheduler* scheduler = nullptr;
  int max_blocks = 4;          ///< max concurrent PBS node allocations
  double block_walltime_s = 3600.0;
  /// First-task-on-node penalty: container start + Python library caching.
  double env_warmup_s = 25.0;
  double env_warmup_jitter_s = 5.0;
  /// Idle warm nodes are released back to PBS after this long.
  double warm_idle_timeout_s = 300.0;
  /// Service-side dispatch latency per task (cloud hop).
  double dispatch_latency_s = 0.5;
  /// Fault injection: probability a node dies mid-task. The task fails, the
  /// node leaves the warm pool (its PBS allocation is released), and
  /// retrying work provisions a fresh node — the recovery path flows
  /// exercise via their per-step retry budget.
  double node_failure_prob = 0.0;
};

struct TaskInfo {
  TaskState state = TaskState::Pending;
  std::string error;
  sim::SimTime submitted, started, completed;
  bool cold_start = false;  ///< true if this task had to provision a node
};

class ComputeService {
 public:
  ComputeService(sim::Engine* engine, auth::AuthService* auth,
                 uint64_t seed = 0xFC4ull, sim::Trace* trace = nullptr);

  /// Register a function; returns its id.
  FunctionId register_function(FunctionSpec spec);

  /// Register an endpoint backed by a PBS scheduler.
  EndpointId register_endpoint(EndpointConfig config);

  /// Attach facility telemetry: task spans join the causal tree (parented to
  /// the submitting flow attempt via tracer context), node failures become
  /// span events, and compute_* metrics are maintained.
  void set_telemetry(telemetry::Telemetry* telemetry) {
    telemetry_ = telemetry;
  }

  /// Submit fn(args) to an endpoint. Requires scope "compute". With
  /// held = true the task queues and claims a node normally (environment
  /// warm-up charged on pickup), but its function cost is not charged until
  /// release() — cut-through streaming pre-dispatch uses this to overlap
  /// node provisioning and the streamable prefix of the work with an
  /// upstream transfer still in flight.
  util::Result<TaskId> submit(const EndpointId& endpoint,
                              const FunctionId& function,
                              util::Json args, const auth::Token& token,
                              bool held = false);

  /// Release a held task: begin charging its function cost, crediting
  /// min(streamable, seconds the node sat ready) of overlap already done.
  /// Releasing before the node is ready degrades to a normal full-cost
  /// execution. No-op for unknown, non-held, or already-released tasks.
  void release(const TaskId& id);

  /// Completion hook (fired in virtual time when the task settles, on every
  /// terminal path including node failure). Fires immediately if already
  /// settled.
  void on_settled(const TaskId& id, std::function<void(const TaskInfo&)> cb);

  /// Poll task state (the flow engine's view).
  TaskInfo status(const TaskId& id) const;

  /// Retrieve the function's JSON result after success.
  util::Result<util::Json> result(const TaskId& id) const;

  /// Warm nodes currently held by an endpoint (tests/diagnostics).
  size_t warm_node_count(const EndpointId& endpoint) const;

  /// Fault injection: while unavailable, submit() is rejected with code
  /// "unavailable". Already-queued and running tasks continue (an endpoint
  /// web-service outage does not kill batch jobs on the cluster).
  void set_available(bool available);
  bool available() const { return available_; }
  /// Fault injection: override an endpoint's mid-task node death probability
  /// (windowed fault-rate campaigns). No-op for unknown endpoints.
  void set_node_failure_prob(const EndpointId& endpoint, double prob);
  double node_failure_prob(const EndpointId& endpoint) const;

 private:
  struct Function {
    FunctionSpec spec;
  };
  struct WarmNode {
    hpcsim::JobId job;
    bool busy = false;
    bool warmed = false;
    sim::EventHandle idle_release;
  };
  struct Endpoint {
    EndpointConfig config;
    std::vector<WarmNode> nodes;
    std::deque<TaskId> queue;
    int pending_blocks = 0;  ///< PBS jobs requested but not yet granted
  };
  struct Task {
    EndpointId endpoint;
    FunctionId function;
    util::Json args;
    TaskInfo info;
    std::optional<util::Json> output;
    uint64_t span = 0;  ///< open telemetry span (0 = none)
    /// Held-start (cut-through) state.
    bool held = false;
    bool released = false;
    bool node_ready = false;    ///< node claimed + warmed, awaiting release
    sim::SimTime ready_at;
    hpcsim::JobId node_job;     ///< node claimed by a held task
    std::function<void(const TaskInfo&)> settled_cb;
    /// Flight-recorder subject (the owning flow run) captured at submit().
    std::string flight_subject;
  };

  void pump_endpoint(const EndpointId& eid);
  void run_task_on_node(const EndpointId& eid, size_t node_index,
                        const TaskId& tid);
  /// Charge the execution (warm-up already handled by the caller): compute
  /// the virtual duration, run the real body, schedule settlement. With
  /// credit_overlap the streamable overlap credit replaces the warm-up base.
  void begin_execution(const EndpointId& eid, const TaskId& tid,
                       const hpcsim::JobId& job, double warmup_s,
                       bool credit_overlap);
  void maybe_grow(const EndpointId& eid);
  void schedule_idle_release(const EndpointId& eid, size_t node_index);

  sim::Engine* engine_;
  auth::AuthService* auth_;
  util::Rng rng_;
  sim::Trace* trace_;
  telemetry::Telemetry* telemetry_ = nullptr;
  std::map<FunctionId, Function> functions_;
  std::map<EndpointId, Endpoint> endpoints_;
  std::map<TaskId, Task> tasks_;
  uint64_t next_task_ = 1;
  bool available_ = true;
};

}  // namespace pico::compute

#include "compute/service.hpp"

#include <algorithm>
#include <cassert>

#include "util/log.hpp"
#include "util/strings.hpp"

namespace pico::compute {
namespace {
util::Logger& logger() {
  static util::Logger kLogger("compute");
  return kLogger;
}
}  // namespace

std::string task_state_name(TaskState s) {
  switch (s) {
    case TaskState::Pending: return "PENDING";
    case TaskState::Queued: return "QUEUED";
    case TaskState::Running: return "RUNNING";
    case TaskState::Succeeded: return "SUCCEEDED";
    case TaskState::Failed: return "FAILED";
  }
  return "?";
}

ComputeService::ComputeService(sim::Engine* engine, auth::AuthService* auth,
                               uint64_t seed, sim::Trace* trace)
    : engine_(engine), auth_(auth), rng_(seed), trace_(trace) {}

FunctionId ComputeService::register_function(FunctionSpec spec) {
  FunctionId id = "fn-" + spec.name;
  functions_[id] = Function{std::move(spec)};
  return id;
}

EndpointId ComputeService::register_endpoint(EndpointConfig config) {
  assert(config.scheduler != nullptr);
  EndpointId id = "ep-" + config.name;
  Endpoint ep;
  ep.config = std::move(config);
  endpoints_[id] = std::move(ep);
  return id;
}

util::Result<TaskId> ComputeService::submit(const EndpointId& endpoint,
                                            const FunctionId& function,
                                            util::Json args,
                                            const auth::Token& token,
                                            bool held) {
  using R = util::Result<TaskId>;
  if (!available_) {
    return R::err("compute service unavailable", "unavailable");
  }
  auto who = auth_->validate(token, "compute");
  if (!who) return R::err(who.error());
  if (!endpoints_.count(endpoint)) {
    return R::err("unknown endpoint: " + endpoint, "not_found");
  }
  if (!functions_.count(function)) {
    return R::err("unknown function: " + function, "not_found");
  }

  TaskId id = util::format("ctask-%06llu",
                           static_cast<unsigned long long>(next_task_++));
  Task task;
  task.endpoint = endpoint;
  task.function = function;
  task.args = std::move(args);
  task.held = held;
  task.info.submitted = engine_->now();
  if (telemetry_) {
    // Context parent: the flow attempt span scoped around provider->start().
    task.span = telemetry_->tracer.open("compute", id);
    task.flight_subject = telemetry_->flight.current();
    if (!task.flight_subject.empty()) {
      telemetry_->flight.record(
          task.flight_subject, util::LogLevel::Info, "compute",
          "compute-submit", engine_->now(),
          util::Json::object({{"task", id},
                              {"endpoint", endpoint},
                              {"function", function},
                              {"held", held}}));
    }
  }
  tasks_[id] = std::move(task);

  // Cloud dispatch hop, then the task joins the endpoint queue.
  double latency = endpoints_.at(endpoint).config.dispatch_latency_s;
  engine_->schedule_after(sim::Duration::from_seconds(latency), [this, id] {
    auto it = tasks_.find(id);
    if (it == tasks_.end()) return;
    it->second.info.state = TaskState::Queued;
    endpoints_.at(it->second.endpoint).queue.push_back(id);
    pump_endpoint(it->second.endpoint);
  });
  return R::ok(id);
}

void ComputeService::pump_endpoint(const EndpointId& eid) {
  Endpoint& ep = endpoints_.at(eid);
  // Hand queued tasks to idle warm nodes.
  while (!ep.queue.empty()) {
    size_t idle = ep.nodes.size();
    for (size_t i = 0; i < ep.nodes.size(); ++i) {
      if (!ep.nodes[i].busy) {
        idle = i;
        break;
      }
    }
    if (idle == ep.nodes.size()) break;
    TaskId tid = ep.queue.front();
    ep.queue.pop_front();
    run_task_on_node(eid, idle, tid);
  }
  maybe_grow(eid);
}

void ComputeService::maybe_grow(const EndpointId& eid) {
  Endpoint& ep = endpoints_.at(eid);
  int held = static_cast<int>(ep.nodes.size()) + ep.pending_blocks;
  if (ep.queue.empty() || held >= ep.config.max_blocks) return;

  ep.pending_blocks += 1;
  hpcsim::JobRequest req;
  req.nodes = 1;
  req.walltime_s = ep.config.block_walltime_s;
  req.on_start = [this, eid](const hpcsim::JobId& job,
                             const std::vector<hpcsim::NodeId>&) {
    Endpoint& e = endpoints_.at(eid);
    e.pending_blocks -= 1;
    WarmNode node;
    node.job = job;
    e.nodes.push_back(std::move(node));
    logger().debug("%s: node granted (%s), warm pool now %zu", eid.c_str(),
                   job.c_str(), e.nodes.size());
    pump_endpoint(eid);
  };
  req.on_expire = [this, eid](const hpcsim::JobId& job) {
    Endpoint& e = endpoints_.at(eid);
    for (auto it = e.nodes.begin(); it != e.nodes.end(); ++it) {
      if (it->job == job && !it->busy) {
        e.nodes.erase(it);
        break;
      }
    }
  };
  ep.config.scheduler->submit(std::move(req));
}

void ComputeService::run_task_on_node(const EndpointId& eid, size_t node_index,
                                      const TaskId& tid) {
  Endpoint& ep = endpoints_.at(eid);
  WarmNode& node = ep.nodes[node_index];
  node.busy = true;
  node.idle_release.cancel();

  Task& task = tasks_.at(tid);
  task.info.state = TaskState::Running;
  task.info.started = engine_->now();
  task.info.cold_start = !node.warmed;

  // Environment warm-up charged on pickup (library caching), before either
  // execution path.
  double warmup = 0;
  if (!node.warmed) {
    warmup += std::max(0.0, rng_.normal(ep.config.env_warmup_s,
                                        ep.config.env_warmup_jitter_s));
  }

  if (task.held && !task.released) {
    // Held pickup: claim the node and charge the warm-up, then wait for
    // release() before charging the function cost.
    task.node_job = node.job;
    const TaskId tid_copy = tid;
    engine_->schedule_after(
        sim::Duration::from_seconds(warmup), [this, eid, tid_copy] {
          auto tit = tasks_.find(tid_copy);
          if (tit == tasks_.end()) return;
          Task& t = tit->second;
          t.node_ready = true;
          t.ready_at = engine_->now();
          if (t.released) {
            // release() arrived while the node was still warming: execute
            // now with no overlap credit.
            begin_execution(eid, tid_copy, t.node_job, 0.0, true);
          }
        });
    return;
  }

  begin_execution(eid, tid, node.job, warmup, false);
}

void ComputeService::begin_execution(const EndpointId& eid, const TaskId& tid,
                                     const hpcsim::JobId& job, double warmup_s,
                                     bool credit_overlap) {
  Endpoint& ep = endpoints_.at(eid);
  Task& task = tasks_.at(tid);
  const Function& fn = functions_.at(task.function);

  // Virtual duration: the warm-up base plus the function's cost, minus any
  // streamable overlap already performed while the task was held.
  double cost = std::max(0.0, fn.spec.cost ? fn.spec.cost(task.args) : 1.0);
  double duration = warmup_s + cost;
  if (credit_overlap) {
    double streamable =
        fn.spec.streamable ? fn.spec.streamable(task.args) : 0.0;
    streamable = std::min(std::max(0.0, streamable), cost);
    double held_s =
        std::max(0.0, (engine_->now() - task.ready_at).seconds());
    double credit = std::min(streamable, held_s);
    duration = warmup_s + cost - credit;
    if (telemetry_) {
      telemetry_->metrics
          .histogram("compute_streamed_credit_seconds",
                     "Function cost already covered by streamed overlap at "
                     "release time")
          .observe(credit);
    }
  }

  // Fault injection: the node dies partway through the task.
  bool node_died =
      ep.config.node_failure_prob > 0 && rng_.chance(ep.config.node_failure_prob);
  if (node_died) {
    duration *= rng_.uniform(0.1, 0.9);  // died somewhere mid-execution
  }

  // Execute the real function body now; expose its result at virtual
  // completion time. (Single-threaded engine: ordering is deterministic.)
  auto result = node_died
                    ? util::Result<util::Json>::err(
                          "node failure during execution", "node_failure")
                    : (fn.spec.body ? fn.spec.body(task.args)
                                    : util::Result<util::Json>::ok(util::Json()));

  const hpcsim::JobId job_for_log = job;
  engine_->schedule_after(
      sim::Duration::from_seconds(duration),
      [this, eid, tid, job_for_log, node_died, result = std::move(result)] {
        auto tit = tasks_.find(tid);
        if (tit == tasks_.end()) return;
        Task& t = tit->second;
        t.info.completed = engine_->now();
        if (result) {
          t.info.state = TaskState::Succeeded;
          t.output = result.value();
        } else {
          t.info.state = TaskState::Failed;
          t.info.error = result.error().message;
        }
        if (node_died) {
          // Drop the dead node: release its allocation and forget it.
          Endpoint& e = endpoints_.at(eid);
          for (auto it = e.nodes.begin(); it != e.nodes.end(); ++it) {
            if (it->job == job_for_log) {
              it->idle_release.cancel();
              e.config.scheduler->release(job_for_log);
              e.nodes.erase(it);
              break;
            }
          }
          logger().warn("%s: node %s failed mid-task", eid.c_str(),
                        job_for_log.c_str());
          if (telemetry_) {
            telemetry_->tracer.event(t.span, "node-failure", t.info.completed,
                                     util::Json::object({{"job", job_for_log}}));
            telemetry_->tracer.close(t.span, "node-failure", t.info.started,
                                     t.info.completed, {});
            t.span = 0;
            telemetry_->metrics
                .counter("compute_node_failures_total",
                         "Warm nodes lost to injected mid-task failures")
                .inc();
            telemetry_->metrics
                .counter("compute_tasks_total",
                         "Compute tasks by terminal state",
                         {{"state", "node_failure"}})
                .inc();
            if (!t.flight_subject.empty()) {
              telemetry_->flight.record(
                  t.flight_subject, util::LogLevel::Warn, "compute",
                  "node-failure", engine_->now(),
                  util::Json::object({{"task", tid}, {"job", job_for_log}}));
            }
          } else if (trace_) {
            trace_->add(sim::Span{"compute", "node-failure", tid,
                                  t.info.started, t.info.completed, {}});
          }
          pump_endpoint(eid);
          if (t.settled_cb) t.settled_cb(t.info);
          return;
        }
        if (telemetry_) {
          telemetry_->tracer.close(
              t.span, result ? "active" : "failed", t.info.started,
              t.info.completed,
              util::Json::object({{"function", t.function},
                                  {"cold_start", t.info.cold_start}}));
          t.span = 0;
          telemetry_->metrics
              .counter("compute_tasks_total",
                       "Compute tasks by terminal state",
                       {{"state", result ? "succeeded" : "failed"}})
              .inc();
          if (t.info.cold_start) {
            telemetry_->metrics
                .counter("compute_cold_starts_total",
                         "Tasks that had to provision/warm a fresh node")
                .inc();
          }
          telemetry_->metrics
              .histogram("compute_task_active_seconds",
                         "Service-side execution time per compute task")
              .observe((t.info.completed - t.info.started).seconds());
        } else if (trace_) {
          trace_->add(sim::Span{
              "compute", result ? "active" : "failed", tid, t.info.started,
              t.info.completed,
              util::Json::object({{"function", t.function},
                                  {"cold_start", t.info.cold_start}})});
        }

        // Free the node and mark it warmed (libraries now cached).
        Endpoint& e = endpoints_.at(eid);
        for (size_t i = 0; i < e.nodes.size(); ++i) {
          if (e.nodes[i].job == job_for_log) {
            e.nodes[i].busy = false;
            e.nodes[i].warmed = true;
            schedule_idle_release(eid, i);
            break;
          }
        }
        pump_endpoint(eid);
        if (t.settled_cb) t.settled_cb(t.info);
      });
}

void ComputeService::release(const TaskId& id) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return;
  Task& task = it->second;
  if (!task.held || task.released) return;
  task.released = true;
  if (task.info.state == TaskState::Succeeded ||
      task.info.state == TaskState::Failed) {
    return;
  }
  if (task.node_ready) {
    begin_execution(task.endpoint, id, task.node_job, 0.0, true);
  }
  // Not yet picked up (queued) or still warming: the pickup/warm-up path
  // sees released == true and begins execution itself.
}

void ComputeService::on_settled(const TaskId& id,
                                std::function<void(const TaskInfo&)> cb) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return;
  if (it->second.info.state == TaskState::Succeeded ||
      it->second.info.state == TaskState::Failed) {
    cb(it->second.info);
  } else {
    it->second.settled_cb = std::move(cb);
  }
}

void ComputeService::schedule_idle_release(const EndpointId& eid,
                                           size_t node_index) {
  Endpoint& ep = endpoints_.at(eid);
  WarmNode& node = ep.nodes[node_index];
  const hpcsim::JobId job = node.job;
  node.idle_release = engine_->schedule_after(
      sim::Duration::from_seconds(ep.config.warm_idle_timeout_s),
      [this, eid, job] {
        Endpoint& e = endpoints_.at(eid);
        for (auto it = e.nodes.begin(); it != e.nodes.end(); ++it) {
          if (it->job == job) {
            if (it->busy) return;  // raced with a new task; keep it
            e.config.scheduler->release(job);
            e.nodes.erase(it);
            logger().debug("%s: released idle node %s", eid.c_str(),
                           job.c_str());
            return;
          }
        }
      });
}

TaskInfo ComputeService::status(const TaskId& id) const {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) {
    TaskInfo info;
    info.state = TaskState::Failed;
    info.error = "unknown task";
    return info;
  }
  return it->second.info;
}

util::Result<util::Json> ComputeService::result(const TaskId& id) const {
  using R = util::Result<util::Json>;
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return R::err("unknown task " + id, "not_found");
  if (it->second.info.state == TaskState::Failed) {
    return R::err(it->second.info.error, "failed");
  }
  if (!it->second.output.has_value()) {
    return R::err("task " + id + " not finished", "state");
  }
  return R::ok(*it->second.output);
}

size_t ComputeService::warm_node_count(const EndpointId& endpoint) const {
  auto it = endpoints_.find(endpoint);
  return it == endpoints_.end() ? 0 : it->second.nodes.size();
}

void ComputeService::set_available(bool available) { available_ = available; }

void ComputeService::set_node_failure_prob(const EndpointId& endpoint,
                                           double prob) {
  auto it = endpoints_.find(endpoint);
  if (it == endpoints_.end()) return;
  it->second.config.node_failure_prob = prob;
}

double ComputeService::node_failure_prob(const EndpointId& endpoint) const {
  auto it = endpoints_.find(endpoint);
  return it == endpoints_.end() ? 0.0 : it->second.config.node_failure_prob;
}

}  // namespace pico::compute
